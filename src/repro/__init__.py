"""Reproduction of *Applicability of Quantum Computing on Database Query
Optimization* (Schönberger, SIGMOD 2022).

The package is organised as a stack of substrates with the paper's two
query-optimization studies on top:

``repro.qubo``
    Quadratic unconstrained binary optimization models (QUBO/Ising duality),
    a symbolic expression builder and an exact brute-force solver.
``repro.linprog``
    Mixed/binary integer linear programming: modelling, standard-form
    conversion with slack discretization, and a branch-and-bound solver.
``repro.gate``
    A gate-model quantum computing substrate: circuits, a statevector
    simulator, IBM-Q-style heavy-hex coupling maps and a transpiler that
    performs layout, swap routing and basis translation.
``repro.variational``
    Hybrid quantum-classical algorithms: VQE and QAOA with classical
    optimizers, plus a ``MinimumEigenOptimizer`` front end for QUBOs.
``repro.annealing``
    A quantum-annealing substrate: Chimera/Pegasus topology generators, a
    minorminer-style heuristic embedder, simulated annealing samplers and
    Ocean-style composites.
``repro.mqo``
    Multi query optimization: problem model, QUBO formulation (paper
    Sec. 5.1) and solvers.
``repro.joinorder``
    Join ordering: query graphs, the C_out cost model, the MILP → BILP →
    QUBO pipeline (paper Sec. 6.1) and classical baselines.
``repro.analysis``
    Qubit-count formulas (Sec. 6.3.1), circuit-depth studies and the
    coherence-time thresholds (Eqs. 37/55).
``repro.hybrid``
    Qbsolv-style decomposing solver and the unified solver registry
    spanning classical, annealing and gate-model paths.
``repro.service``
    Deadline-aware optimization serving: fallback chains over the
    solver registry, admission control, caches and metrics.
``repro.experiments``
    One module per paper table/figure, reproducing its rows/series.
"""

__version__ = "1.0.0"

from repro.qubo import BinaryQuadraticModel, Vartype

__all__ = ["BinaryQuadraticModel", "Vartype", "__version__"]
