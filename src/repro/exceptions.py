"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything the package raises with a single ``except`` clause while
still being able to discriminate on the specific failure mode.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ModelError(ReproError):
    """An optimization model (QUBO, BQM, MILP, ...) was built or used
    inconsistently — e.g. referencing an unknown variable or adding a
    constraint with a malformed sense."""


class VariableError(ModelError):
    """A variable name is unknown, duplicated, or of the wrong type."""


class SolverError(ReproError):
    """A solver failed to produce a solution (infeasible model, iteration
    limit, numerical failure in the LP relaxation, ...)."""


class InfeasibleError(SolverError):
    """The model was proven infeasible."""


class WorkerCrashError(SolverError):
    """A process-pool worker died while a request was routed to it and
    the request could not be (re-)placed on a live worker.  Requests
    abandoned this way were never solved — retrying them on a healthy
    pool is safe because solve seeds derive from request content."""


class CircuitError(ReproError):
    """A quantum circuit was constructed or manipulated inconsistently —
    e.g. a gate applied to an out-of-range qubit or duplicate qubits."""


class TranspilerError(ReproError):
    """Transpilation failed — e.g. the circuit needs more qubits than the
    target coupling map provides."""


class BackendError(ReproError):
    """A backend cannot run the requested job (too many qubits, unknown
    basis gate, ...)."""


class EmbeddingError(ReproError):
    """No minor embedding could be found for a source graph onto the
    target hardware topology."""


class ProblemError(ReproError):
    """A query-optimization problem instance is malformed — e.g. an MQO
    plan referencing an unknown query, or a join predicate referencing an
    unknown relation."""


class ConfigurationError(ReproError):
    """A runtime configuration knob (environment variable, CLI flag,
    harness parameter) holds an invalid value — e.g. a non-integer
    ``REPRO_BENCH_SAMPLES`` or a worker count below one."""


class SqlError(ConfigurationError):
    """A SQL query string could not be turned into an optimization
    problem.  Derives from :class:`ConfigurationError` because query
    text is user input: the CLI and service report it as a bad request,
    not an internal failure."""


class SqlSyntaxError(SqlError):
    """The query text is not in the supported SQL subset — a lexing
    failure, a malformed clause, or an unsupported construct (outer
    joins, ``OR``, subqueries, ...)."""


class SqlSemanticError(SqlError):
    """The query parsed but does not name a solvable problem — an
    unknown table or column, a duplicate alias, an ambiguous column
    reference, or a cross product the join-graph extraction rejects."""


class VerificationError(ReproError):
    """The differential-verification harness (:mod:`repro.verify`)
    detected an invariant violation — a solver disagreeing with the
    exact oracle, an encoding that fails its round-trip, or a decoded
    plan inconsistent with its raw bitstring."""
