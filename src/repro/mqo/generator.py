"""MQO instance generators.

Two sources of instances:

* :func:`paper_example_problem` — the worked example of paper
  Tables 1 and 2 (3 queries, 8 plans, 5 savings; locally-optimal cost
  26 vs. global optimum 21);
* :func:`random_mqo_problem` — randomized instances of the classes the
  paper simulates (Sec. 5.3.2): a fixed number of plans per query
  (PPQ), uniform plan costs, and savings drawn between plans of
  *different* queries with a configurable density.  The PPQ parameter
  controls the quadratic-term count through the E_M constraint clique
  per query, exactly the effect Figure 8 varies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ProblemError
from repro.mqo.problem import MqoProblem, Plan, Saving


def paper_example_problem() -> MqoProblem:
    """The example MQO instance of paper Tables 1 and 2."""
    plans = (
        Plan(1, 1, 10.0),
        Plan(2, 1, 12.0),
        Plan(3, 1, 15.0),
        Plan(4, 2, 9.0),
        Plan(5, 2, 16.0),
        Plan(6, 3, 7.0),
        Plan(7, 3, 12.0),
        Plan(8, 3, 9.0),
    )
    savings = (
        Saving(2, 4, 4.0),
        Saving(2, 8, 5.0),
        Saving(3, 4, 6.0),
        Saving(5, 7, 7.0),
        Saving(5, 8, 3.0),
    )
    return MqoProblem(plans=plans, savings=savings)


def random_mqo_problem(
    num_queries: int,
    plans_per_query: int,
    cost_range: tuple = (5.0, 25.0),
    savings_density: float = 0.25,
    savings_fraction: tuple = (0.1, 0.5),
    seed: Optional[int] = None,
) -> MqoProblem:
    """Generate a random MQO instance.

    Parameters
    ----------
    num_queries, plans_per_query:
        Problem shape; total plans = ``num_queries * plans_per_query``.
    cost_range:
        Uniform range for plan execution costs.
    savings_density:
        Probability that a pair of plans *from different queries*
        shares a subexpression.
    savings_fraction:
        A realised saving is uniform in this fraction of the cheaper
        plan's cost (savings never exceed the cost they offset).
    seed:
        Reproducibility.
    """
    if num_queries < 1 or plans_per_query < 1:
        raise ProblemError("need at least one query and one plan per query")
    if not 0.0 <= savings_density <= 1.0:
        raise ProblemError("savings_density must be a probability")
    rng = np.random.default_rng(seed)

    plans = []
    plan_id = 1
    for q in range(1, num_queries + 1):
        for _ in range(plans_per_query):
            cost = float(rng.uniform(*cost_range))
            plans.append(Plan(plan_id, q, cost))
            plan_id += 1

    savings = []
    for i, a in enumerate(plans):
        for b in plans[i + 1:]:
            if a.query_id == b.query_id:
                continue
            if rng.random() < savings_density:
                fraction = float(rng.uniform(*savings_fraction))
                amount = fraction * min(a.cost, b.cost)
                if amount > 0:
                    savings.append(Saving(a.plan_id, b.plan_id, amount))
    return MqoProblem(plans=tuple(plans), savings=tuple(savings))
