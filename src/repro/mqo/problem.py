"""The multi query optimization problem model (paper Sec. 4.1).

An MQO instance consists of queries ``Q``, alternative plans ``P`` with
``P = ∪_q P_q``, per-plan execution costs ``c_p`` and pairwise savings
``s_{p1,p2} > 0`` realised when both plans execute and share a
subexpression.  A valid solution selects *exactly one* plan per query;
its cost is Eq. 25:

.. math:: c_e = \\sum_{p \\in P_e} c_p
          - \\sum_{\\{p1,p2\\} \\subseteq P_e} s_{p1,p2}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.exceptions import ProblemError


@dataclass(frozen=True)
class Plan:
    """One alternative execution plan for a query."""

    plan_id: int
    query_id: int
    cost: float

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ProblemError(f"plan {self.plan_id} has negative cost")


@dataclass(frozen=True)
class Saving:
    """Cost saving realised when both plans are executed together."""

    plan_a: int
    plan_b: int
    amount: float

    def __post_init__(self) -> None:
        if self.plan_a == self.plan_b:
            raise ProblemError("a saving needs two distinct plans")
        if self.amount <= 0:
            raise ProblemError("savings must be strictly positive")

    @property
    def key(self) -> FrozenSet[int]:
        return frozenset((self.plan_a, self.plan_b))


@dataclass(frozen=True)
class MqoProblem:
    """An MQO instance."""

    plans: Tuple[Plan, ...]
    savings: Tuple[Saving, ...] = ()

    def __post_init__(self) -> None:
        ids = [p.plan_id for p in self.plans]
        if len(set(ids)) != len(ids):
            raise ProblemError("duplicate plan ids")
        known = set(ids)
        seen_pairs = set()
        for s in self.savings:
            if s.plan_a not in known or s.plan_b not in known:
                raise ProblemError(f"saving references unknown plan: {s}")
            if s.key in seen_pairs:
                raise ProblemError(f"duplicate saving for plans {sorted(s.key)}")
            seen_pairs.add(s.key)
        for q, plans in self.plans_by_query().items():
            if not plans:
                raise ProblemError(f"query {q} has no plans")

    # ------------------------------------------------------------------
    @property
    def num_plans(self) -> int:
        """Total plans — the qubit count of the QUBO encoding (Sec. 5.3.1)."""
        return len(self.plans)

    @property
    def num_queries(self) -> int:
        return len({p.query_id for p in self.plans})

    @property
    def query_ids(self) -> Tuple[int, ...]:
        seen: List[int] = []
        for p in self.plans:
            if p.query_id not in seen:
                seen.append(p.query_id)
        return tuple(seen)

    def plans_by_query(self) -> Dict[int, Tuple[Plan, ...]]:
        """The sets ``P_q`` keyed by query id."""
        grouped: Dict[int, List[Plan]] = {}
        for p in self.plans:
            grouped.setdefault(p.query_id, []).append(p)
        return {q: tuple(ps) for q, ps in grouped.items()}

    def plan(self, plan_id: int) -> Plan:
        for p in self.plans:
            if p.plan_id == plan_id:
                return p
        raise ProblemError(f"unknown plan id {plan_id}")

    def max_plan_cost(self) -> float:
        """``max_p c_p`` — used for the penalty weight ω_L (Eq. 34)."""
        return max(p.cost for p in self.plans)

    def max_savings_of_any_plan(self) -> float:
        """``max_p1 Σ_p2 s_{p1,p2}`` — used for ω_M (Eq. 35)."""
        totals: Dict[int, float] = {}
        for s in self.savings:
            totals[s.plan_a] = totals.get(s.plan_a, 0.0) + s.amount
            totals[s.plan_b] = totals.get(s.plan_b, 0.0) + s.amount
        return max(totals.values(), default=0.0)

    def saving_between(self, plan_a: int, plan_b: int) -> float:
        key = frozenset((plan_a, plan_b))
        for s in self.savings:
            if s.key == key:
                return s.amount
        return 0.0

    # ------------------------------------------------------------------
    def is_valid_selection(self, selected: Iterable[int]) -> bool:
        """Exactly one plan per query?"""
        selected = set(selected)
        by_query = self.plans_by_query()
        for q, plans in by_query.items():
            if sum(1 for p in plans if p.plan_id in selected) != 1:
                return False
        # no stray ids
        known = {p.plan_id for p in self.plans}
        return selected <= known

    def execution_cost(self, selected: Iterable[int]) -> float:
        """Accumulated cost of a selection (Eq. 25).

        Raises on invalid selections — use :meth:`is_valid_selection`
        to pre-check solver output.
        """
        selected = set(selected)
        if not self.is_valid_selection(selected):
            raise ProblemError(f"invalid plan selection {sorted(selected)}")
        cost = sum(p.cost for p in self.plans if p.plan_id in selected)
        for s in self.savings:
            if s.plan_a in selected and s.plan_b in selected:
                cost -= s.amount
        return cost


@dataclass(frozen=True)
class MqoSolution:
    """A solved MQO instance."""

    problem: MqoProblem
    selected_plans: Tuple[int, ...]
    cost: float
    method: str = ""
    #: True when the selection satisfies one-plan-per-query
    valid: bool = True

    @classmethod
    def from_selection(
        cls, problem: MqoProblem, selected: Iterable[int], method: str = ""
    ) -> "MqoSolution":
        selected = tuple(sorted(selected))
        valid = problem.is_valid_selection(selected)
        cost = problem.execution_cost(selected) if valid else float("inf")
        return cls(
            problem=problem,
            selected_plans=selected,
            cost=cost,
            method=method,
            valid=valid,
        )
