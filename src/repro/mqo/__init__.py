"""Multi query optimization (paper Secs. 4.1 and 5).

The MQO problem: given a batch of queries, each with several
alternative execution plans and pairwise cost savings from shared
subexpressions, pick exactly one plan per query minimising total cost
(Eq. 25).  This package provides the problem model, the QUBO
formulation of [Trummer & Koch 2016] used by the paper (Eqs. 29–35),
random instance generators matching the paper's experimental classes,
and classical + quantum solvers.
"""

from repro.mqo.problem import MqoProblem, MqoSolution, Plan, Saving
from repro.mqo.generator import random_mqo_problem, paper_example_problem
from repro.mqo.qubo import MqoQuboBuilder, mqo_to_bqm
from repro.mqo.solvers import (
    repair_selection,
    solve_exhaustive,
    solve_greedy_local,
    solve_genetic,
    solve_with_annealer,
    solve_with_minimum_eigen,
    solve_with_solver,
)

__all__ = [
    "MqoProblem",
    "MqoSolution",
    "Plan",
    "Saving",
    "random_mqo_problem",
    "paper_example_problem",
    "MqoQuboBuilder",
    "mqo_to_bqm",
    "repair_selection",
    "solve_exhaustive",
    "solve_greedy_local",
    "solve_genetic",
    "solve_with_annealer",
    "solve_with_minimum_eigen",
    "solve_with_solver",
]
