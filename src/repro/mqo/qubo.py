"""QUBO formulation of MQO (paper Sec. 5.1, after [Trummer & Koch 2016]).

The energy formula (Eq. 29) is

.. math:: E = \\omega_L E_L + \\omega_M E_M + E_C + E_S

with

* :math:`E_L = -\\sum_p X_p` — rewards selecting plans (Eq. 30);
* :math:`E_M = \\sum_q \\sum_{\\{p1,p2\\} \\subseteq P_q} X_{p1} X_{p2}`
  — penalises selecting two plans of the same query (Eq. 31);
* :math:`E_C = \\sum_p c_p X_p` — execution costs (Eq. 32);
* :math:`E_S = -\\sum_{\\{p1,p2\\}} s_{p1,p2} X_{p1} X_{p2}` — savings
  (Eq. 33);

and penalty weights satisfying ``ω_L > max_p c_p`` (Eq. 34) and
``ω_M > ω_L + max_p1 Σ_p2 s_{p1,p2}`` (Eq. 35), which make every
energy-minimising assignment select exactly one plan per query.

One binary variable (qubit) per plan; the E_M cliques and E_S pairs
are the quadratic terms whose count drives the QAOA depth in Fig. 8.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict

from repro.mqo.problem import MqoProblem, MqoSolution
from repro.qubo.bqm import BinaryQuadraticModel
from repro.qubo.expression import BinaryExpression, BinaryVariable, Constant


def variable_name(plan_id: int) -> str:
    """QUBO variable naming convention: ``x<plan_id>``."""
    return f"x{plan_id}"


@dataclass
class MqoQuboBuilder:
    """Builds the four-term energy formula for an MQO instance.

    The default weights are the smallest values strictly satisfying
    Eqs. 34–35 (with margin 1), matching the paper's requirement that
    invalid solutions always cost more than any valid one.
    """

    problem: MqoProblem
    weight_margin: float = 1.0

    # ------------------------------------------------------------------
    def weight_l(self) -> float:
        """ω_L > max_p c_p (Eq. 34)."""
        return self.problem.max_plan_cost() + self.weight_margin

    def weight_m(self) -> float:
        """ω_M > ω_L + max_p1 Σ_p2 s (Eq. 35)."""
        return self.weight_l() + self.problem.max_savings_of_any_plan() + self.weight_margin

    # ------------------------------------------------------------------
    def term_el(self) -> BinaryExpression:
        """E_L (Eq. 30): reward each selected plan."""
        expr = Constant(0.0)
        for p in self.problem.plans:
            expr = expr - BinaryVariable(variable_name(p.plan_id))
        return expr

    def term_em(self) -> BinaryExpression:
        """E_M (Eq. 31): clique penalty within each query's plan set."""
        expr = Constant(0.0)
        for _, plans in sorted(self.problem.plans_by_query().items()):
            for a, b in itertools.combinations(plans, 2):
                expr = expr + (
                    BinaryVariable(variable_name(a.plan_id))
                    * BinaryVariable(variable_name(b.plan_id))
                )
        return expr

    def term_ec(self) -> BinaryExpression:
        """E_C (Eq. 32): plan execution costs."""
        expr = Constant(0.0)
        for p in self.problem.plans:
            expr = expr + p.cost * BinaryVariable(variable_name(p.plan_id))
        return expr

    def term_es(self) -> BinaryExpression:
        """E_S (Eq. 33): subexpression-sharing savings."""
        expr = Constant(0.0)
        for s in self.problem.savings:
            expr = expr - s.amount * (
                BinaryVariable(variable_name(s.plan_a))
                * BinaryVariable(variable_name(s.plan_b))
            )
        return expr

    # ------------------------------------------------------------------
    def energy_expression(self) -> BinaryExpression:
        """The full energy formula E (Eq. 29)."""
        return (
            self.weight_l() * self.term_el()
            + self.weight_m() * self.term_em()
            + self.term_ec()
            + self.term_es()
        )

    def build(self) -> BinaryQuadraticModel:
        """Compile the energy formula into a BQM.

        Every plan variable is registered even if its biases cancel, so
        the qubit count always equals the plan count (Sec. 5.3.1).
        """
        bqm = self.energy_expression().compile()
        for p in self.problem.plans:
            bqm.add_linear(variable_name(p.plan_id), 0.0)
        return bqm

    # ------------------------------------------------------------------
    def decode(self, sample: Dict[str, int], method: str = "") -> MqoSolution:
        """Interpret a binary sample as a plan selection."""
        selected = tuple(
            p.plan_id
            for p in self.problem.plans
            if sample.get(variable_name(p.plan_id), 0) == 1
        )
        return MqoSolution.from_selection(self.problem, selected, method=method)


def mqo_to_bqm(problem: MqoProblem) -> BinaryQuadraticModel:
    """Convenience wrapper: MQO instance → QUBO model."""
    return MqoQuboBuilder(problem).build()


def quadratic_term_count(problem: MqoProblem) -> int:
    """Closed-form number of quadratic terms of the MQO QUBO.

    E_M contributes ``C(|P_q|, 2)`` per query, E_S one per saving;
    a saving between same-query plans would coincide with an E_M term,
    but savings are only defined across queries, so the counts add.
    """
    per_query = sum(
        len(plans) * (len(plans) - 1) // 2
        for plans in problem.plans_by_query().values()
    )
    return per_query + len(problem.savings)
