"""Solvers for MQO instances — classical baselines and quantum paths.

Classical baselines (the comparison points of [Trummer & Koch 2016]):

* :func:`solve_greedy_local` — pick each query's cheapest plan,
  ignoring savings (the "locally optimal" strategy of the paper's
  Sec. 4.1 example);
* :func:`solve_exhaustive` — enumerate the ``∏|P_q|`` selections;
* :func:`solve_genetic` — the genetic-algorithm baseline of
  [Bayir et al. 2006]: one gene per query, tournament selection,
  uniform crossover and per-gene mutation.

Quantum paths (via the QUBO of Sec. 5.1):

* :func:`solve_with_minimum_eigen` — VQE/QAOA/exact eigensolver on a
  gate-model simulator;
* :func:`solve_with_annealer` — simulated annealing (optionally
  topology-restricted through the Ocean-style composites);
* :func:`solve_with_solver` — any solver from the unified registry
  (:mod:`repro.hybrid.registry`), with optional selection repair.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from repro.exceptions import SolverError
from repro.annealing.simulated_annealing import SimulatedAnnealingSampler
from repro.mqo.problem import MqoProblem, MqoSolution
from repro.mqo.qubo import MqoQuboBuilder
from repro.variational.minimum_eigen import MinimumEigenOptimizer


def solve_greedy_local(problem: MqoProblem) -> MqoSolution:
    """Cheapest plan per query, savings ignored."""
    selected = [
        min(plans, key=lambda p: p.cost).plan_id
        for plans in problem.plans_by_query().values()
    ]
    return MqoSolution.from_selection(problem, selected, method="greedy-local")


def solve_exhaustive(problem: MqoProblem, max_combinations: int = 2_000_000) -> MqoSolution:
    """Enumerate every valid selection; guaranteed optimal."""
    groups = list(problem.plans_by_query().values())
    total = 1
    for g in groups:
        total *= len(g)
    if total > max_combinations:
        raise SolverError(
            f"{total} combinations exceed the exhaustive limit {max_combinations}"
        )
    best: Optional[MqoSolution] = None
    for combo in itertools.product(*groups):
        selection = [p.plan_id for p in combo]
        cost = problem.execution_cost(selection)
        if best is None or cost < best.cost:
            best = MqoSolution(
                problem=problem,
                selected_plans=tuple(sorted(selection)),
                cost=cost,
                method="exhaustive",
            )
    assert best is not None  # groups is non-empty by construction
    return best


def solve_genetic(
    problem: MqoProblem,
    population_size: int = 60,
    generations: int = 120,
    mutation_rate: float = 0.05,
    tournament: int = 3,
    seed: Optional[int] = None,
) -> MqoSolution:
    """Genetic-algorithm baseline ([Bayir et al. 2006] style).

    A chromosome assigns one plan index per query, so every individual
    is valid by construction and fitness is the exact Eq. 25 cost.
    """
    rng = np.random.default_rng(seed)
    groups = list(problem.plans_by_query().values())
    sizes = np.array([len(g) for g in groups])

    def cost_of(chromosome: np.ndarray) -> float:
        selection = [groups[q][chromosome[q]].plan_id for q in range(len(groups))]
        return problem.execution_cost(selection)

    population = np.stack(
        [rng.integers(0, sizes) for _ in range(population_size)]
    )
    costs = np.array([cost_of(ind) for ind in population])

    for _ in range(generations):
        children = []
        for _ in range(population_size):
            # tournament selection of two parents
            picks = rng.integers(0, population_size, size=(2, tournament))
            parents = [
                population[picks[i][np.argmin(costs[picks[i]])]] for i in range(2)
            ]
            mask = rng.random(len(groups)) < 0.5
            child = np.where(mask, parents[0], parents[1])
            mutate = rng.random(len(groups)) < mutation_rate
            if mutate.any():
                child = child.copy()
                child[mutate] = rng.integers(0, sizes)[mutate]
            children.append(child)
        children = np.stack(children)
        child_costs = np.array([cost_of(ind) for ind in children])
        merged = np.concatenate([population, children])
        merged_costs = np.concatenate([costs, child_costs])
        order = np.argsort(merged_costs)[:population_size]
        population, costs = merged[order], merged_costs[order]

    best = population[int(np.argmin(costs))]
    selection = [groups[q][best[q]].plan_id for q in range(len(groups))]
    return MqoSolution.from_selection(problem, selection, method="genetic")


def solve_with_minimum_eigen(
    problem: MqoProblem,
    solver,
    max_qubits: int = 32,
) -> MqoSolution:
    """Solve via the QUBO + a gate-model eigensolver (VQE/QAOA/exact)."""
    builder = MqoQuboBuilder(problem)
    bqm = builder.build()
    optimizer = MinimumEigenOptimizer(solver, max_qubits=max_qubits)
    result = optimizer.solve(bqm)
    # prefer the best *valid* candidate among all measured samples —
    # candidates arrive in measurement order, so rank by energy first
    # or a high-energy valid sample would shadow the optimum
    ranked = sorted(
        [(result.sample, result.fval)] + list(result.candidates),
        key=lambda item: item[1],
    )
    for sample, _ in ranked:
        solution = builder.decode(sample, method=type(solver).__name__.lower())
        if solution.valid:
            return solution
    return builder.decode(result.sample, method=type(solver).__name__.lower())


def repair_selection(problem: MqoProblem, selected) -> list:
    """Project a (possibly invalid) selection onto one plan per query.

    Queries with exactly one selected plan keep it; over-covered
    queries keep their cheapest selected plan; uncovered queries get
    their locally cheapest plan.  Valid selections pass through
    unchanged.
    """
    selected_set = set(selected)
    repaired = []
    for plans in problem.plans_by_query().values():
        hits = [p for p in plans if p.plan_id in selected_set]
        pool = hits if hits else list(plans)
        repaired.append(min(pool, key=lambda p: (p.cost, p.plan_id)).plan_id)
    return repaired


def solve_with_solver(
    problem: MqoProblem,
    solver,
    seed: Optional[int] = None,
    repair: bool = True,
) -> MqoSolution:
    """Solve via the QUBO + any registry :class:`~repro.hybrid.Solver`.

    Routes the instance through ``solver.solve(bqm, seed=…)`` (hybrid,
    tabu, sa, genetic, … — anything from
    :func:`repro.hybrid.make_solver`) and decodes the best sample.
    With ``repair=True`` (default) an invalid sample is projected back
    to one plan per query via :func:`repair_selection` instead of
    being returned invalid.
    """
    builder = MqoQuboBuilder(problem)
    bqm = builder.build()
    result = solver.solve(bqm, seed=seed)
    solution = builder.decode(result.sample, method=result.solver)
    if solution.valid or not repair:
        return solution
    repaired = repair_selection(problem, solution.selected_plans)
    return MqoSolution.from_selection(
        problem, repaired, method=f"{result.solver}+repair"
    )


def solve_with_annealer(
    problem: MqoProblem,
    sampler: Optional[SimulatedAnnealingSampler] = None,
    num_reads: int = 50,
    seed: Optional[int] = None,
) -> MqoSolution:
    """Solve via the QUBO + (simulated) annealing.

    Pass an :class:`~repro.annealing.composites.EmbeddingComposite` as
    ``sampler`` to include topology restrictions and minor embedding.
    """
    builder = MqoQuboBuilder(problem)
    bqm = builder.build()
    sampler = sampler or SimulatedAnnealingSampler(seed=seed)
    sample_set = sampler.sample(bqm, num_reads=num_reads)
    for record in sample_set:
        solution = builder.decode(record.sample, method="annealing")
        if solution.valid:
            return solution
    return builder.decode(sample_set.first.sample, method="annealing")
