"""Drive a replay stream through a scheduler and measure the tail.

:func:`run_replay` is the measurement loop of the replay harness: it
pulls requests from a (lazy) stream, keeps at most ``max_in_flight`` of
them admitted at once, optionally paces submissions to an open-loop
arrival rate, and records what production dashboards would: client-side
latency percentiles, result-cache and coalescing hit rates, admission
rejections, and deadline misses.

The in-flight window serves two purposes.  It bounds memory — the
harness never holds more than ``max_in_flight`` outstanding futures, so
a 10^6-request stream replays in constant space — and it models a
client population: with a rate it is a cap on concurrency; without one
it *is* the closed-loop concurrency level.

Latency is measured from submission to completion on the client side
(queueing included), in a reservoir sized to keep nearest-rank
percentiles exact for runs up to ``histogram_capacity`` requests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from threading import Lock, Semaphore
from typing import Callable, Dict, Iterable, Optional

from repro.exceptions import ConfigurationError
from repro.service.core import SchedulerBase
from repro.service.metrics import Histogram
from repro.service.request import OptimizationRequest

__all__ = ["ReplayReport", "run_replay"]


@dataclass
class ReplayReport:
    """What one replay run observed, JSON-ready via :meth:`to_dict`."""

    backend: str
    workers: int
    requests: int = 0
    ok: int = 0
    rejected: int = 0
    deadline_missed: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    offered_rate: Optional[float] = None
    latency_ms: Dict[str, float] = field(default_factory=dict)
    cache: Dict[str, float] = field(default_factory=dict)
    coalesce: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.requests if self.requests else 0.0

    @property
    def deadline_miss_rate(self) -> float:
        """Misses among *served* requests (rejections never ran)."""
        served = self.requests - self.rejected - self.errors
        return self.deadline_missed / served if served > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "requests": self.requests,
            "ok": self.ok,
            "rejected": self.rejected,
            "deadline_missed": self.deadline_missed,
            "errors": self.errors,
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "offered_rate": self.offered_rate,
            "rejection_rate": self.rejection_rate,
            "deadline_miss_rate": self.deadline_miss_rate,
            "latency_ms": dict(self.latency_ms),
            "cache": dict(self.cache),
            "coalesce": dict(self.coalesce),
        }


def _rate_section(counters: Dict[str, int], hits_key: str, misses_key: str) -> Dict[str, float]:
    hits = int(counters.get(hits_key, 0))
    misses = int(counters.get(misses_key, 0))
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": (hits / lookups) if lookups else 0.0,
    }


def run_replay(
    scheduler: SchedulerBase,
    stream: Iterable[OptimizationRequest],
    rate: Optional[float] = None,
    max_in_flight: int = 256,
    histogram_capacity: int = 200_000,
    progress: Optional[Callable[[int], None]] = None,
    progress_every: int = 100_000,
) -> ReplayReport:
    """Replay ``stream`` through ``scheduler``; returns the report.

    ``rate`` (requests/second) paces submissions open-loop: request
    ``i`` is offered no earlier than ``start + i / rate``, and if the
    serving side cannot keep up the in-flight window fills and
    admission control (the scheduler's ``queue_limit``) does its job.
    Without a rate the harness submits as fast as the window allows
    (closed loop at concurrency ``max_in_flight``).

    ``progress`` (called with the submission count every
    ``progress_every`` requests) lets the CLI narrate long runs.
    """
    if max_in_flight < 1:
        raise ConfigurationError("max_in_flight must be at least 1")
    if rate is not None and rate <= 0:
        raise ConfigurationError("arrival rate must be positive")

    window = Semaphore(max_in_flight)
    lock = Lock()
    latency = Histogram(capacity=histogram_capacity)
    report = ReplayReport(
        backend=scheduler.backend, workers=scheduler.workers, offered_rate=rate
    )

    def _complete(submitted_at: float, future) -> None:
        elapsed_ms = (time.perf_counter() - submitted_at) * 1000.0
        with lock:
            latency.record(elapsed_ms)
            exc = future.exception()
            if exc is not None:
                report.errors += 1
            else:
                result = future.result()
                if result.status == "rejected":
                    report.rejected += 1
                elif result.deadline_exceeded:
                    report.deadline_missed += 1
                    if result.status == "ok":
                        report.ok += 1
                elif result.status == "ok":
                    report.ok += 1
        window.release()

    start = time.perf_counter()
    submitted = 0
    for request in stream:
        window.acquire()
        if rate is not None:
            target = start + submitted / rate
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        submitted_at = time.perf_counter()
        future = scheduler.submit(request)
        future.add_done_callback(
            lambda f, t=submitted_at: _complete(t, f)
        )
        submitted += 1
        if progress is not None and submitted % max(1, progress_every) == 0:
            progress(submitted)

    # drain: reclaiming the whole window means every callback has run
    for _ in range(max_in_flight):
        window.acquire()
    report.wall_seconds = time.perf_counter() - start
    report.requests = submitted
    report.latency_ms = latency.snapshot()

    stats = scheduler.stats()
    counters = stats.get("counters", {})
    report.cache = _rate_section(counters, "cache.result_hits", "cache.result_misses")
    scheduler_section = stats.get("scheduler", {})
    coalesce = scheduler_section.get("coalesce", {})
    report.coalesce = {
        "hits": int(coalesce.get("hits", 0)),
        "misses": int(coalesce.get("misses", 0)),
        "hit_rate": float(coalesce.get("hit_rate", 0.0)),
    }
    return report
