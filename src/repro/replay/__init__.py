"""Workload replay: Zipfian request streams at production-like traffic.

The serving stack (thread scheduler, process pool, coalescing,
admission control, deadline chains) was benchmarked on workloads of a
few hundred requests; this package proves it at 10^5–10^6.  A replay
run streams Zipfian-duplicated MQO/join/SQL requests — generated
lazily from derived seeds, never materialized as a list — through
either scheduler backend at a configurable arrival rate, and reports
cache/coalescing hit rates, admission rejections, deadline-miss rate,
and client-side tail latency.

Entry points: ``python -m repro replay`` (CLI),
:func:`replay_stream` + :func:`run_replay` (library), the ``replay``
experiment, and ``benchmarks/bench_replay.py`` → ``BENCH_replay.json``.
"""

from .driver import ReplayReport, run_replay
from .stream import replay_stream, zipf_cumulative

__all__ = ["ReplayReport", "replay_stream", "run_replay", "zipf_cumulative"]
