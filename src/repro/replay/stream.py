"""Lazy Zipfian request streams for production-scale replay.

Real optimizer traffic is heavy-tailed: a few hot queries dominate
while a long tail of one-off shapes trickles in.  The replay harness
models that with a Zipf(s) distribution over a finite pool of
``unique`` distinct problem *slots* — slot ``r`` (1-based popularity
rank) is drawn with probability proportional to ``1 / r**s`` — and
streams ``count`` requests drawn from that pool.

Everything derives from one root seed through the harness SHA-256
scheme: the rank draws come from a single sequential ``default_rng``
and each slot's problem is generated from its own derived seed on
first use.  Memory stays bounded by the slot pool (``unique``
request templates at most), never by ``count`` — the stream is a
generator and 10^6 requests cost no more resident memory than 10^2.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.harness import derive_seed
from repro.joinorder.generators import chain_query, cycle_query, star_query
from repro.mqo.generator import random_mqo_problem
from repro.service.chain import StageSpec
from repro.service.request import (
    KIND_JOIN_ORDER,
    KIND_MQO,
    KIND_SQL,
    OptimizationRequest,
)

__all__ = ["replay_stream", "zipf_cumulative"]

_JOIN_SHAPES = (chain_query, star_query, cycle_query)
_STREAM_SCOPE = "repro.replay.stream"
_SLOT_SCOPE = "repro.replay.slot"


def zipf_cumulative(unique: int, s: float) -> np.ndarray:
    """Cumulative probabilities of Zipf(s) over ranks ``1..unique``.

    A finite-support Zipf: rank ``r`` gets weight ``1 / r**s``,
    normalized.  ``searchsorted`` over the returned array maps a
    uniform draw to a rank in O(log unique).
    """
    if unique < 1:
        raise ConfigurationError("unique slot count must be at least 1")
    if s < 0.0:
        raise ConfigurationError("zipf exponent must be non-negative")
    weights = 1.0 / np.arange(1, unique + 1, dtype=float) ** s
    cumulative = np.cumsum(weights)
    return cumulative / cumulative[-1]


def _slot_request(
    slot: int,
    seed: int,
    deadline_ms: float,
    mqo_fraction: float,
    sql_fraction: float,
    queries_range: Tuple[int, int],
    plans_per_query_range: Tuple[int, int],
    relations_range: Tuple[int, int],
    sql_tables_range: Tuple[int, int],
    policy: Optional[Tuple[StageSpec, ...]],
    mode: str,
) -> OptimizationRequest:
    """Build slot ``slot``'s problem from its derived seed.

    Mirrors :func:`repro.service.workload.synthetic_requests`' recipe
    (SQL share first, then MQO, then a join shape) so replay traffic
    exercises the same serving paths as the bench workloads.
    """
    rng = np.random.default_rng(derive_seed(seed, _SLOT_SCOPE, {"slot": slot}))
    if float(rng.random()) < sql_fraction:
        from repro.sql import SqlQuery, generate_query, tpch_catalog

        kind = KIND_SQL
        statement = generate_query(
            seed=int(rng.integers(0, 2**31)),
            min_tables=sql_tables_range[0],
            max_tables=sql_tables_range[1],
        )
        problem = SqlQuery(sql=str(statement), catalog=tpch_catalog())
    elif float(rng.random()) < mqo_fraction:
        kind = KIND_MQO
        problem = random_mqo_problem(
            int(rng.integers(queries_range[0], queries_range[1] + 1)),
            int(rng.integers(plans_per_query_range[0], plans_per_query_range[1] + 1)),
            seed=int(rng.integers(0, 2**31)),
        )
    else:
        kind = KIND_JOIN_ORDER
        maker = _JOIN_SHAPES[int(rng.integers(0, len(_JOIN_SHAPES)))]
        problem = maker(
            int(rng.integers(relations_range[0], relations_range[1] + 1)),
            seed=int(rng.integers(0, 2**31)),
        )
    return OptimizationRequest(
        request_id=f"slot-{slot:06d}",
        kind=kind,
        problem=problem,
        deadline_ms=deadline_ms,
        seed=seed,
        policy=policy,
        mode=mode,
    )


def replay_stream(
    count: int,
    seed: int = 0,
    unique: int = 512,
    zipf_s: float = 1.1,
    deadline_ms: float = 200.0,
    mqo_fraction: float = 0.5,
    sql_fraction: float = 0.2,
    queries_range: Tuple[int, int] = (4, 8),
    plans_per_query_range: Tuple[int, int] = (2, 3),
    relations_range: Tuple[int, int] = (4, 7),
    sql_tables_range: Tuple[int, int] = (3, 6),
    policy: Optional[Sequence[StageSpec]] = None,
    mode: str = "first_valid",
) -> Iterator[OptimizationRequest]:
    """Stream ``count`` Zipfian-duplicated requests, generated lazily.

    Yields :class:`OptimizationRequest` objects one at a time; only the
    slot templates (at most ``unique`` of them, built on first hit) are
    retained.  Two streams with equal arguments are identical request
    for request, and the content of request ``i`` does not depend on
    ``count`` — replaying a prefix is replaying the same traffic.
    """
    if count < 0:
        raise ConfigurationError("request count must be non-negative")
    policy_tuple = None if policy is None else tuple(policy)
    cumulative = zipf_cumulative(unique, zipf_s)
    rng = np.random.default_rng(
        derive_seed(seed, _STREAM_SCOPE, {"unique": unique, "zipf_s": zipf_s})
    )
    slots: Dict[int, OptimizationRequest] = {}
    for index in range(count):
        slot = int(np.searchsorted(cumulative, float(rng.random()), side="right"))
        template = slots.get(slot)
        if template is None:
            template = _slot_request(
                slot, seed, deadline_ms, mqo_fraction, sql_fraction,
                queries_range, plans_per_query_range, relations_range,
                sql_tables_range, policy_tuple, mode,
            )
            slots[slot] = template
        yield template.with_id(f"replay-{index:07d}")
