"""The per-request router: deadline-aware chain order and budget split.

Given the request features and its deadline, :meth:`RoutingPolicy.decide`
asks the cost model for every candidate stage's predicted runtime and
builds the chain for *this* request:

* candidates predicted to finish within the deadline keep the static
  chain's quality order (the static chain is ordered strongest-first,
  so among feasible stages the best solver still goes first);
* candidates predicted to blow the deadline are appended as a safety
  net, cheapest first, with epsilon budget weight — they only run when
  every feasible stage failed, at which point leftover budget rolls
  forward to them anyway;
* when *nothing* is predicted to fit, the whole chain is ordered
  cheapest-first, maximizing the chance any stage answers at all.

Budget weights are the predicted runtimes bucketed to powers of two,
so each feasible stage's deadline share scales with how long it is
expected to need — while small online drifts of the model leave the
weights (and hence the routed policy key and the service's result
cache) untouched once predictions are roughly converged.

By construction the router never puts a predicted-infeasible stage
first while a predicted-feasible candidate exists — that is the
``routing-regret`` invariant the verification sweep checks, and the
``--inject router`` drift (an optimistic ``optimism < 1`` scale on the
fit test) plants exactly the bug that breaks it.

:meth:`RoutingPolicy.observe` closes the loop: every executed stage's
measured runtime and validity update the model online, and the
request-level routing metrics (prediction error per solver, regret,
deadline misses, fallthroughs) land in the service's ``Metrics`` so
multi-process serving merges them like every other counter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.routing.features import ProblemFeatures
from repro.routing.model import SolverCostModel, default_cost_model
from repro.service.chain import FALLBACK_STAGE, StageSpec, default_policy

__all__ = [
    "RoutingDecision",
    "RoutingPolicy",
    "merge_router_states",
    "routing_section",
]

#: epsilon budget weight (ms-equivalent) for safety-net stages
_MIN_STAGE_WEIGHT = 0.05


def _weight_bucket(predicted_ms: float) -> float:
    """Power-of-two bucket of a predicted runtime (budget weight).

    Buckets quantize predictions to within ±41%, so the routed policy
    — and the result-cache key derived from it — stays bit-stable
    under the small per-observation weight drift of online learning,
    while still giving slow stages proportionally bigger deadline
    shares.
    """
    clamped = min(max(predicted_ms, _MIN_STAGE_WEIGHT), 1e6)
    return float(2.0 ** round(math.log2(clamped)))


@dataclass(frozen=True)
class RoutingDecision:
    """One routed chain plus everything needed to audit it later."""

    #: the chain this request will run, weights = budget split
    policy: Tuple[StageSpec, ...]
    #: (solver, predicted runtime ms) for every candidate, decision order
    predicted_ms: Tuple[Tuple[str, float], ...]
    #: the router's belief about when the first stage completes
    predicted_completion_ms: float
    #: True when at least one candidate was predicted to fit
    feasible: bool
    deadline_ms: float
    features: ProblemFeatures

    def to_dict(self) -> Dict[str, Any]:
        return {
            "chain": [spec.solver for spec in self.policy],
            "predicted_ms": {s: round(p, 4) for s, p in self.predicted_ms},
            "predicted_completion_ms": round(self.predicted_completion_ms, 4),
            "feasible": self.feasible,
            "deadline_ms": self.deadline_ms,
        }


class RoutingPolicy:
    """Decide a chain per request; learn from what actually happened."""

    def __init__(
        self,
        candidates: Optional[Sequence[StageSpec]] = None,
        model: Optional[SolverCostModel] = None,
        optimism: float = 1.0,
        headroom: float = 0.8,
    ) -> None:
        #: candidate stages in *quality* order (strongest first); the
        #: static default chain is already ordered that way
        self.candidates: Tuple[StageSpec, ...] = (
            tuple(candidates) if candidates is not None else default_policy()
        )
        self.model = model if model is not None else default_cost_model()
        #: scale applied to predictions in the deadline-fit test only;
        #: < 1 makes the router optimistic (used by ``--inject router``
        #: to plant the bug the routing-regret invariant must catch)
        self.optimism = float(optimism)
        #: fraction of the deadline a stage may be predicted to use and
        #: still count as fitting — the slack absorbs prediction error,
        #: compile/decode overhead outside the stage clock, and leaves
        #: room for a rescue stage when the leader fails
        self.headroom = float(headroom)

    # ------------------------------------------------------------------
    def decide(self, features: ProblemFeatures, deadline_ms: float) -> RoutingDecision:
        """Pick the chain order and budget split for one request."""
        predictions = [
            (spec, self.model.predict_runtime_ms(spec.solver, features.kind, features))
            for spec in self.candidates
        ]
        fits = [
            (spec, pred)
            for spec, pred in predictions
            if pred * self.optimism <= self.headroom * deadline_ms
            # a stage that has been producing invalid plans for this
            # problem kind cannot "fit" no matter how fast it is — it
            # would just burn budget before the chain falls through
            and self.model.predict_validity(spec.solver, features.kind) >= 0.5
        ]
        if fits:
            misses = sorted(
                (entry for entry in predictions if entry not in fits),
                key=lambda entry: entry[1],
            )
            ordered = fits + misses
            feasible = True
        else:
            ordered = sorted(predictions, key=lambda entry: entry[1])
            feasible = False

        n_fits = len(fits)
        stages = tuple(
            replace(
                spec,
                weight=_weight_bucket(pred)
                if (not feasible or index < n_fits)
                else _MIN_STAGE_WEIGHT,
            )
            for index, (spec, pred) in enumerate(ordered)
        )
        return RoutingDecision(
            policy=stages,
            predicted_ms=tuple((spec.solver, pred) for spec, pred in ordered),
            predicted_completion_ms=ordered[0][1] * self.optimism,
            feasible=feasible,
            deadline_ms=float(deadline_ms),
            features=features,
        )

    # ------------------------------------------------------------------
    def observe(self, decision: RoutingDecision, outcome, metrics=None) -> None:
        """Fold one executed chain outcome back into the model.

        ``outcome`` is the :class:`repro.service.chain.ChainOutcome`
        the decision's chain produced; ``metrics`` (optional) is the
        owning service's :class:`repro.service.metrics.Metrics`, which
        receives the ``router.*`` counters and histograms so the
        process pool aggregates them for free.
        """
        kind = decision.features.kind
        predicted = dict(decision.predicted_ms)
        for entry in outcome.stage_trace:
            stage = entry.get("stage")
            if stage is None or stage == FALLBACK_STAGE:
                continue
            observed_ms = float(entry.get("seconds", 0.0)) * 1000.0
            pred = predicted.get(stage)
            if entry.get("truncated") and pred is not None and observed_ms <= pred:
                # budget-truncated run: the runtime is only a lower
                # bound, so letting it *lower* the prediction would
                # teach the model that slow stages fit tight deadlines
                continue
            self.model.observe(
                stage, kind, decision.features, observed_ms, valid=entry.get("valid")
            )
            if metrics is not None and pred is not None:
                metrics.observe(
                    f"router.prediction_error_ms.{stage}", abs(observed_ms - pred)
                )
        if metrics is None:
            return
        metrics.incr("router.requests")
        elapsed_ms = float(outcome.seconds) * 1000.0
        metrics.observe(
            "router.regret_ms",
            max(0.0, elapsed_ms - decision.predicted_completion_ms),
        )
        if outcome.deadline_exceeded:
            metrics.incr("router.deadline_miss")
        if not decision.feasible:
            metrics.incr("router.infeasible")
        if decision.policy and outcome.served_by != decision.policy[0].solver:
            metrics.incr("router.fallthrough")

    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        return self.model.state()

    def merge_state(self, state: Mapping[str, Any]) -> None:
        self.model.merge_state(state)


def routing_section(
    metrics_snapshot: Mapping[str, Any],
    model_snapshot: Optional[Mapping[str, Any]] = None,
    candidates: Iterable[str] = (),
) -> Dict[str, Any]:
    """The ``stats()["routing"]`` block from merged metrics + model.

    Shared by the single-process service and the process pool so both
    backends report the same shape: deadline-miss rate, per-solver
    prediction error, regret, and the learned model summary.
    """
    counters = metrics_snapshot.get("counters", {})
    histograms = metrics_snapshot.get("histograms", {})
    requests = counters.get("router.requests", 0)
    misses = counters.get("router.deadline_miss", 0)
    prefix = "router.prediction_error_ms."
    prediction_error: Dict[str, Any] = {
        name[len(prefix):]: hist
        for name, hist in histograms.items()
        if name.startswith(prefix)
    }
    section: Dict[str, Any] = {
        "enabled": True,
        "candidates": list(candidates),
        "requests": requests,
        "deadline_miss": misses,
        "deadline_miss_rate": (misses / requests) if requests else 0.0,
        "fallthrough": counters.get("router.fallthrough", 0),
        "infeasible": counters.get("router.infeasible", 0),
        "regret_ms": histograms.get("router.regret_ms", {"count": 0}),
        "prediction_error_ms": prediction_error,
    }
    if model_snapshot is not None:
        section["model"] = dict(model_snapshot)
    return section


def merge_router_states(states: Iterable[Mapping[str, Any]]) -> SolverCostModel:
    """Fold per-worker router model states into one model (pool stats)."""
    return SolverCostModel.merge_states(states)
