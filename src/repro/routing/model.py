"""Online per-solver cost model: runtime and validity predictions.

One tiny normalized-LMS regressor per ``(solver, kind)`` pair maps the
request features (:func:`repro.routing.features.extract_features`) to a
predicted runtime.  The regression runs in ``log1p(milliseconds)``
space so polynomial runtime growth is near-linear in the ``log1p``
feature inputs, and so one slow outlier cannot fling the weights —
exactly the trick the adaptive-filter literature uses for heavy-tailed
targets.

The model is *seeded* with priors calibrated from this repository's
recorded benchmarks (BENCH_service.json stage latencies: hybrid ≈ 8 ms,
tabu ≈ 2 ms, sa ≈ 1.5 ms, greedy ≈ 0.4 ms on serving-sized problems)
and *updated online* from every observed stage outcome, converging to
the deployment's true latencies within tens of requests (pinned by a
hypothesis property).  :meth:`warm_from_stats` re-seeds the bias from a
recorded ``stats()`` snapshot, so a restarted service starts from its
predecessor's measurements rather than the shipped priors.

For multi-process serving the model is **mergeable** exactly like
:class:`repro.service.metrics.Metrics`: workers ship :meth:`state`,
the parent folds them with :meth:`merge_state` (observation-count
weighted averages), so the aggregated report reflects every worker's
learning.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.routing.features import FEATURE_NAMES, ProblemFeatures

__all__ = ["DEFAULT_PRIORS", "SolverCostModel", "default_cost_model"]

#: runtime priors as (bias, log-variables slope) in log1p-ms space,
#: zeros for the remaining features; calibrated from BENCH_service.json
#: stage latencies so that on serving-sized problems (~20 variables)
#: hybrid ≻ tabu ≻ sa ≻ greedy both in cost and in predicted runtime
DEFAULT_PRIORS: Mapping[str, Tuple[float, float]] = {
    "hybrid": (-0.24, 0.80),
    "tabu": (-1.00, 0.70),
    "sa": (-1.20, 0.70),
    "greedy": (-1.20, 0.50),
    # fleet-mode hybrid: per-shard anneals plus the reconciliation pass
    # make it the costliest stage until observed runtimes say otherwise
    "fleet": (0.10, 0.85),
}

#: prior for solvers without recorded benchmarks: assume expensive, so
#: the router only prefers them once real observations justify it
_GENERIC_PRIOR: Tuple[float, float] = (0.50, 1.00)

#: validity prior: chain candidates almost always produce valid plans
#: on serving-sized problems; observations pull this per deployment
_VALIDITY_PRIOR = 0.9

#: clamp on the linear predictor, keeping expm1 finite (≈ 1e13 ms)
_Z_CLAMP = 30.0

#: wildcard kind under which warm starts apply to every problem kind
_ANY_KIND = "*"


def _prior_weights(solver: str) -> List[float]:
    bias, slope = DEFAULT_PRIORS.get(solver, _GENERIC_PRIOR)
    weights = [0.0] * len(FEATURE_NAMES)
    weights[0] = bias
    weights[1] = slope
    return weights


class SolverCostModel:
    """Mergeable online runtime/validity model over solver names.

    Thread-safe; every public method takes the internal lock, so a
    service may predict and observe from concurrent request threads.
    """

    def __init__(
        self, learning_rate: float = 0.5, validity_smoothing: float = 0.25
    ) -> None:
        self.learning_rate = float(learning_rate)
        self.validity_smoothing = float(validity_smoothing)
        self._lock = threading.Lock()
        #: key "solver|kind" → regression weights over FEATURE_NAMES
        self._weights: Dict[str, List[float]] = {}
        self._counts: Dict[str, int] = {}
        #: key "solver|kind" → EWMA of observed validity in [0, 1]
        self._validity: Dict[str, float] = {}
        self._validity_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _key(solver: str, kind: str) -> str:
        return f"{solver}|{kind}"

    def _weights_for(self, solver: str, kind: str) -> List[float]:
        """Weights for a key, cloning the wildcard warm start or prior."""
        key = self._key(solver, kind)
        weights = self._weights.get(key)
        if weights is None:
            warm = self._weights.get(self._key(solver, _ANY_KIND))
            weights = list(warm) if warm is not None else _prior_weights(solver)
            self._weights[key] = weights
            self._counts.setdefault(key, 0)
        return weights

    # ------------------------------------------------------------------
    def predict_runtime_ms(
        self, solver: str, kind: str, features: ProblemFeatures
    ) -> float:
        """Predicted wall-clock for one stage, finite and >= 0."""
        x = features.vector()
        with self._lock:
            weights = self._weights_for(solver, kind)
            z = sum(w * xi for w, xi in zip(weights, x))
        z = max(-_Z_CLAMP, min(_Z_CLAMP, z))
        return max(0.0, math.expm1(z))

    def predict_validity(self, solver: str, kind: str) -> float:
        """EWMA probability that the stage yields a valid plan."""
        with self._lock:
            return self._validity.get(self._key(solver, kind), _VALIDITY_PRIOR)

    def observe(
        self,
        solver: str,
        kind: str,
        features: ProblemFeatures,
        runtime_ms: float,
        valid: Optional[bool] = None,
    ) -> None:
        """Fold one observed stage outcome into the model.

        Normalized LMS in log1p space: for fixed features the
        prediction error contracts by ``1 - learning_rate`` per
        observation, so repeated sightings of a workload converge
        geometrically to its true runtime.  Non-finite observations are
        ignored rather than poisoning the weights.
        """
        runtime_ms = float(runtime_ms)
        if not math.isfinite(runtime_ms) or runtime_ms < 0.0:
            return
        x = features.vector()
        target = math.log1p(runtime_ms)
        key = self._key(solver, kind)
        with self._lock:
            weights = self._weights_for(solver, kind)
            z = sum(w * xi for w, xi in zip(weights, x))
            error = target - z
            norm = sum(xi * xi for xi in x)
            gain = self.learning_rate * error / (1e-9 + norm)
            for index, xi in enumerate(x):
                weights[index] += gain * xi
            self._counts[key] = self._counts.get(key, 0) + 1
            if valid is not None:
                current = self._validity.get(key, _VALIDITY_PRIOR)
                self._validity[key] = current + self.validity_smoothing * (
                    (1.0 if valid else 0.0) - current
                )
                self._validity_counts[key] = self._validity_counts.get(key, 0) + 1

    # ------------------------------------------------------------------
    def warm_from_stats(self, stats: Mapping[str, Any]) -> int:
        """Seed biases from a recorded ``stats()`` snapshot.

        Each ``stage_seconds.<solver>`` histogram with observations
        becomes a wildcard warm start: the prior slope is kept and the
        bias is shifted so the model predicts the recorded mean latency
        for a reference serving-sized problem.  Returns the number of
        solvers warmed.
        """
        histograms = stats.get("histograms", {})
        reference = math.log1p(20.0)  # ~serving-sized problem
        warmed = 0
        with self._lock:
            for name, hist in histograms.items():
                if not name.startswith("stage_seconds."):
                    continue
                count = int(hist.get("count", 0))
                mean = hist.get("mean")
                if count <= 0 or mean is None:
                    continue
                solver = name.split(".", 1)[1]
                weights = _prior_weights(solver)
                weights[0] = math.log1p(max(0.0, float(mean) * 1000.0)) - (
                    weights[1] * reference
                )
                key = self._key(solver, _ANY_KIND)
                self._weights[key] = weights
                self._counts[key] = count
                warmed += 1
        return warmed

    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """Raw mergeable state (JSON-safe), mirroring ``Metrics.state``."""
        with self._lock:
            return {
                "runtime": {
                    key: {
                        "weights": list(weights),
                        "count": self._counts.get(key, 0),
                    }
                    for key, weights in self._weights.items()
                },
                "validity": {
                    key: {
                        "value": value,
                        "count": self._validity_counts.get(key, 0),
                    }
                    for key, value in self._validity.items()
                },
            }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Fold another model's state in (count-weighted averages)."""
        with self._lock:
            for key, entry in state.get("runtime", {}).items():
                other_w = [float(v) for v in entry.get("weights", ())]
                other_c = int(entry.get("count", 0))
                mine_w = self._weights.get(key)
                mine_c = self._counts.get(key, 0)
                if mine_w is None:
                    self._weights[key] = list(other_w)
                    self._counts[key] = other_c
                    continue
                total = mine_c + other_c
                if total <= 0:
                    continue
                self._weights[key] = [
                    (mw * mine_c + ow * other_c) / total
                    for mw, ow in zip(mine_w, other_w)
                ]
                self._counts[key] = total
            for key, entry in state.get("validity", {}).items():
                other_v = float(entry.get("value", _VALIDITY_PRIOR))
                other_c = int(entry.get("count", 0))
                mine_c = self._validity_counts.get(key, 0)
                if key not in self._validity:
                    self._validity[key] = other_v
                    self._validity_counts[key] = other_c
                    continue
                total = mine_c + other_c
                if total <= 0:
                    continue
                self._validity[key] = (
                    self._validity[key] * mine_c + other_v * other_c
                ) / total
                self._validity_counts[key] = total

    @classmethod
    def merge_states(cls, states: Iterable[Mapping[str, Any]]) -> "SolverCostModel":
        model = cls()
        for state in states:
            model.merge_state(state)
        return model

    def snapshot(self) -> Dict[str, Any]:
        """Human-oriented summary for ``stats()`` reports."""
        with self._lock:
            keys = sorted(set(self._weights) | set(self._validity))
            return {
                key: {
                    "observations": self._counts.get(key, 0),
                    "weights": [round(w, 6) for w in self._weights.get(key, [])],
                    "validity": round(
                        self._validity.get(key, _VALIDITY_PRIOR), 6
                    ),
                }
                for key in keys
            }


def default_cost_model() -> SolverCostModel:
    """A fresh model holding only the shipped benchmark priors."""
    return SolverCostModel()
