"""Deadline-aware solver routing with a learned cost model.

The serving layer's fallback chain (:mod:`repro.service.chain`) is
static: every request walks hybrid → tabu → sa → greedy.  The
real-time follow-up literature (PAPERS.md: arXiv 2601.12123,
2602.14263) frames production query optimization as the *choice*
problem instead — per request, under a latency budget, which backend
should run, and for how long?  This package is that choice:

* :mod:`~repro.routing.features` — cheap request features (QUBO size
  and density, query/plan counts, a Chimera embedding-size estimate),
  deterministic per problem fingerprint;
* :mod:`~repro.routing.model` — :class:`SolverCostModel`, an online
  normalized-LMS runtime/validity model per (solver, kind), seeded
  from recorded benchmarks and mergeable across worker processes;
* :mod:`~repro.routing.router` — :class:`RoutingPolicy`, which turns
  predictions + deadline into a chain order and per-stage budget
  split, and feeds observed outcomes back into the model.

Routing is **off by default**: construct the service with
``OptimizationService(routing=RoutingPolicy())`` (or
``ServiceConfig(routing=True)`` / ``--route`` on the CLI) to enable
it.  With routing off, serving is bit-identical to the static chain.
"""

from __future__ import annotations

from repro.routing.features import FEATURE_NAMES, ProblemFeatures, extract_features
from repro.routing.model import DEFAULT_PRIORS, SolverCostModel, default_cost_model
from repro.routing.router import (
    RoutingDecision,
    RoutingPolicy,
    merge_router_states,
    routing_section,
)

__all__ = [
    "DEFAULT_PRIORS",
    "FEATURE_NAMES",
    "ProblemFeatures",
    "RoutingDecision",
    "RoutingPolicy",
    "SolverCostModel",
    "default_cost_model",
    "extract_features",
    "merge_router_states",
    "routing_section",
]
