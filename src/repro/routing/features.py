"""Cheap per-request problem features for the solver router.

The router must decide a chain order *before* any solver runs, so the
only admissible features are ones derivable from the compiled problem
in microseconds: QUBO size and density, the domain shape (query/plan
or relation counts), and a closed-form estimate of how many physical
qubits a Chimera minor-embedding of the interaction graph would need
(the annealing papers' proxy for "does this fit the hardware, and how
long will a quantum-backed stage take").

Features are a pure function of the problem *content*: two adapters
with the same fingerprint produce identical :class:`ProblemFeatures`
(pinned by a hypothesis property in ``tests/test_routing.py``), which
keeps routed serving deterministic under the service's content-derived
seed contract.  Extraction is memoized on the adapter instance, so the
compilation cache amortizes it across repeated requests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List

__all__ = ["FEATURE_NAMES", "ProblemFeatures", "extract_features"]

#: order of the model's regression inputs (see :meth:`ProblemFeatures.vector`)
FEATURE_NAMES = (
    "bias",
    "log_variables",
    "log_interactions",
    "density",
    "log_variables_sq",
)

#: attribute under which extraction results memoize on adapter instances
_CACHE_ATTR = "_routing_features"


@dataclass(frozen=True)
class ProblemFeatures:
    """Everything the router may look at before picking a chain."""

    kind: str
    num_variables: int
    num_interactions: int
    #: interaction count over the complete-graph maximum, in [0, 1]
    density: float
    #: queries (MQO) or relations (join ordering / SQL)
    num_queries: int
    #: total candidate plans (MQO) or relations (join ordering / SQL)
    num_plans: int
    #: estimated physical qubits for a Chimera minor-embedding
    embedding_qubits: int

    def vector(self) -> List[float]:
        """Regression inputs, ordered as :data:`FEATURE_NAMES`.

        Counts enter as ``log1p`` so runtime models that are polynomial
        in problem size become near-linear in feature space; the leading
        1.0 is the bias term.  The squared size term (scaled down to the
        magnitude of the other features) lets the online model bend the
        size curve for solvers that are disproportionately slow on big
        problems without disturbing what it learned on small ones.
        """
        log_vars = math.log1p(float(self.num_variables))
        return [
            1.0,
            log_vars,
            math.log1p(float(self.num_interactions)),
            float(self.density),
            log_vars * log_vars / 4.0,
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "num_variables": self.num_variables,
            "num_interactions": self.num_interactions,
            "density": self.density,
            "num_queries": self.num_queries,
            "num_plans": self.num_plans,
            "embedding_qubits": self.embedding_qubits,
        }


def _embedding_qubits_estimate(num_variables: int, num_interactions: int) -> int:
    """Closed-form Chimera embedding-size estimate.

    A logical variable of degree ``d`` needs a chain of roughly
    ``ceil(d / 4)`` physical qubits on Chimera (each cell qubit exposes
    4 inter-cell couplers), so the estimate is the variable count scaled
    by the mean chain length.  This intentionally stays a heuristic: it
    ranks problems by embedding pressure without paying for an actual
    minor-embedding search on the request path.
    """
    if num_variables <= 0:
        return 0
    mean_degree = 2.0 * num_interactions / num_variables
    mean_chain = max(1.0, math.ceil(mean_degree / 4.0))
    return int(math.ceil(num_variables * mean_chain))


def extract_features(adapter) -> ProblemFeatures:
    """Features of one problem adapter (memoized on the instance).

    Works for any adapter honouring the service protocol
    (:mod:`repro.service.problems`): the BQM supplies size and density,
    and the domain shape comes from ``adapter.problem`` (MQO) or
    ``adapter.graph`` (join ordering, including the SQL front door).
    """
    cached = getattr(adapter, _CACHE_ATTR, None)
    if cached is not None:
        return cached
    bqm = adapter.bqm()
    n = int(bqm.num_variables)
    interactions = int(bqm.num_interactions)
    pairs = n * (n - 1) // 2
    density = (interactions / pairs) if pairs else 0.0

    problem = getattr(adapter, "problem", None)
    if problem is not None and hasattr(problem, "num_queries"):
        num_queries = int(problem.num_queries)
        num_plans = int(problem.num_plans)
    else:
        graph = getattr(adapter, "graph", None)
        relations = int(graph.num_relations) if graph is not None else n
        num_queries = relations
        num_plans = relations

    features = ProblemFeatures(
        kind=str(getattr(adapter, "kind", "unknown")),
        num_variables=n,
        num_interactions=interactions,
        density=float(density),
        num_queries=num_queries,
        num_plans=num_plans,
        embedding_qubits=_embedding_qubits_estimate(n, interactions),
    )
    try:
        setattr(adapter, _CACHE_ATTR, features)
    except AttributeError:  # pragma: no cover — slotted adapter
        pass
    return features
