"""Classical join-ordering algorithms (baselines).

The comparison points the literature (and paper Sec. 2) establishes:

* :func:`solve_exhaustive` — all ``n!`` left-deep orders (ground truth
  on tiny instances, e.g. paper Table 3);
* :func:`solve_dp_left_deep` — Selinger-style dynamic programming over
  relation subsets, optimal for C_out in ``O(2^n · n)``;
* :func:`solve_greedy` — minimum-intermediate-result greedy (GOO-style);
* :func:`solve_genetic` — permutation GA ([Steinbrunn et al. 1997]'s
  genetic family);
* :func:`solve_simulated_annealing` — swap-neighbourhood annealing
  (the randomized family of the same survey).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SolverError
from repro.joinorder.cost import cout_cost, join_result_cardinality
from repro.joinorder.query_graph import QueryGraph


@dataclass(frozen=True)
class JoinOrderResult:
    """A solved join-ordering instance."""

    order: Tuple[str, ...]
    cost: float
    method: str = ""

    def __post_init__(self) -> None:
        if not self.order:
            raise SolverError("empty join order")


def solve_exhaustive(graph: QueryGraph, max_relations: int = 9) -> JoinOrderResult:
    """Try every permutation (``n!`` — tiny instances only)."""
    if graph.num_relations > max_relations:
        raise SolverError(
            f"exhaustive search over {graph.num_relations}! permutations refused"
        )
    best_order: Optional[Tuple[str, ...]] = None
    best_cost = math.inf
    for perm in itertools.permutations(graph.relation_names):
        # orders that only differ in the first two relations tie under
        # C_out; canonicalise to skip half the work
        if perm[0] > perm[1]:
            continue
        cost = cout_cost(graph, perm)
        if cost < best_cost:
            best_cost, best_order = cost, perm
    assert best_order is not None
    return JoinOrderResult(order=best_order, cost=best_cost, method="exhaustive")


def solve_dp_left_deep(graph: QueryGraph, max_relations: int = 22) -> JoinOrderResult:
    """Optimal left-deep order by dynamic programming over subsets.

    State: the set of already-joined relations; since C_out depends on
    the sequence of intermediate *sets* only, the optimal extension of
    a set is independent of its internal order (principle of
    optimality for left-deep trees).
    """
    n = graph.num_relations
    if n > max_relations:
        raise SolverError(f"DP over 2^{n} subsets refused (limit {max_relations})")
    names = graph.relation_names

    # best[mask] = (cost of joining the mask's relations, predecessor mask)
    best_cost = {0: 0.0}
    parent: dict = {}
    full = (1 << n) - 1

    # seed with singletons (no cost: scanning the first relation is free
    # under C_out, which counts join results only)
    for i in range(n):
        best_cost[1 << i] = 0.0
        parent[1 << i] = (0, i)

    card_cache = {}

    def result_card(mask: int) -> float:
        if mask not in card_cache:
            members = [names[i] for i in range(n) if mask & (1 << i)]
            card_cache[mask] = join_result_cardinality(graph, members)
        return card_cache[mask]

    for mask in range(1, full + 1):
        if mask not in best_cost or bin(mask).count("1") < 1:
            continue
        base = best_cost[mask]
        for i in range(n):
            bit = 1 << i
            if mask & bit:
                continue
            new_mask = mask | bit
            cost = base + result_card(new_mask)
            if cost < best_cost.get(new_mask, math.inf):
                best_cost[new_mask] = cost
                parent[new_mask] = (mask, i)

    order: List[str] = []
    mask = full
    while mask:
        prev, i = parent[mask]
        order.append(names[i])
        mask = prev
    order.reverse()
    return JoinOrderResult(
        order=tuple(order), cost=best_cost[full], method="dp-left-deep"
    )


def solve_greedy(graph: QueryGraph) -> JoinOrderResult:
    """Greedily extend with the relation minimising the next result."""
    names = list(graph.relation_names)
    # try every starting relation (cheap) and keep the best
    best: Optional[JoinOrderResult] = None
    for start in names:
        order = [start]
        remaining = [n for n in names if n != start]
        while remaining:
            next_rel = min(
                remaining,
                key=lambda r: join_result_cardinality(graph, order + [r]),
            )
            order.append(next_rel)
            remaining.remove(next_rel)
        cost = cout_cost(graph, order)
        if best is None or cost < best.cost:
            best = JoinOrderResult(order=tuple(order), cost=cost, method="greedy")
    assert best is not None
    return best


def solve_genetic(
    graph: QueryGraph,
    population_size: int = 80,
    generations: int = 150,
    mutation_rate: float = 0.25,
    tournament: int = 3,
    seed: Optional[int] = None,
) -> JoinOrderResult:
    """Permutation genetic algorithm with order crossover (OX1)."""
    rng = np.random.default_rng(seed)
    names = list(graph.relation_names)
    n = len(names)

    def cost_of(perm: Sequence[int]) -> float:
        return cout_cost(graph, [names[i] for i in perm])

    population = [list(rng.permutation(n)) for _ in range(population_size)]
    costs = [cost_of(p) for p in population]

    def order_crossover(a: List[int], b: List[int]) -> List[int]:
        lo, hi = sorted(rng.integers(0, n, size=2))
        child = [-1] * n
        child[lo:hi + 1] = a[lo:hi + 1]
        fill = [g for g in b if g not in set(child[lo:hi + 1])]
        it = iter(fill)
        for i in range(n):
            if child[i] < 0:
                child[i] = next(it)
        return child

    for _ in range(generations):
        children = []
        for _ in range(population_size):
            picks = rng.integers(0, population_size, size=(2, tournament))
            parents = []
            for row in picks:
                best_idx = min(row, key=lambda i: costs[i])
                parents.append(population[best_idx])
            child = order_crossover(parents[0], parents[1])
            if rng.random() < mutation_rate:
                i, j = rng.integers(0, n, size=2)
                child[i], child[j] = child[j], child[i]
            children.append(child)
        child_costs = [cost_of(c) for c in children]
        merged = population + children
        merged_costs = costs + child_costs
        ranked = sorted(range(len(merged)), key=lambda i: merged_costs[i])
        population = [merged[i] for i in ranked[:population_size]]
        costs = [merged_costs[i] for i in ranked[:population_size]]

    best = population[int(np.argmin(costs))]
    return JoinOrderResult(
        order=tuple(names[i] for i in best), cost=min(costs), method="genetic"
    )


def solve_simulated_annealing(
    graph: QueryGraph,
    num_steps: int = 4000,
    initial_temperature: Optional[float] = None,
    seed: Optional[int] = None,
) -> JoinOrderResult:
    """Swap-neighbourhood simulated annealing over permutations."""
    rng = np.random.default_rng(seed)
    names = list(graph.relation_names)
    n = len(names)

    current = list(rng.permutation(n))
    current_cost = cout_cost(graph, [names[i] for i in current])
    best, best_cost = list(current), current_cost

    temperature = initial_temperature or max(current_cost, 1.0)
    cooling = (1e-6) ** (1.0 / max(num_steps, 1))

    for _ in range(num_steps):
        i, j = rng.integers(0, n, size=2)
        if i == j:
            continue
        candidate = list(current)
        candidate[i], candidate[j] = candidate[j], candidate[i]
        cost = cout_cost(graph, [names[k] for k in candidate])
        delta = cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12)):
            current, current_cost = candidate, cost
            if cost < best_cost:
                best, best_cost = list(candidate), cost
        temperature *= cooling

    return JoinOrderResult(
        order=tuple(names[i] for i in best),
        cost=best_cost,
        method="simulated-annealing",
    )
