"""End-to-end quantum pipeline for join ordering (paper Fig. 10).

Ties the transformation chain together:

    query graph → MILP → BILP (slack discretization) → QUBO → solver

and decodes solver samples back into join orders.  The
:class:`PipelineReport` carries the resource quantities the paper's
evaluation tracks — logical qubit counts by category (Sec. 6.3.1/2)
and the number of quadratic QUBO terms (Sec. 6.3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.exceptions import SolverError
from repro.annealing.simulated_annealing import SimulatedAnnealingSampler
from repro.joinorder.bilp import JoinOrderBilp, build_join_order_bilp
from repro.joinorder.classical import JoinOrderResult
from repro.joinorder.cost import cout_cost
from repro.joinorder.milp import JoinOrderMilp
from repro.joinorder.query_graph import QueryGraph
from repro.joinorder.qubo import bilp_to_bqm
from repro.qubo.bqm import BinaryQuadraticModel
from repro.variational.minimum_eigen import MinimumEigenOptimizer


@dataclass
class PipelineReport:
    """Resource summary of a built pipeline."""

    num_relations: int
    num_predicates: int
    num_thresholds: int
    omega: float
    variable_counts: Dict[str, int] = field(default_factory=dict)
    num_quadratic_terms: int = 0

    @property
    def num_qubits(self) -> int:
        """Logical qubits = total binary variables."""
        return self.variable_counts.get("n", 0)


class JoinOrderQuantumPipeline:
    """Builds and solves the quantum formulation of a join order query.

    Parameters
    ----------
    graph:
        The query graph.
    thresholds:
        Ascending cardinality thresholds; default is a single threshold
        at the geometric mean of the achievable cardinality range
        (useful for demos; real studies pass explicit lists).
    precision_exponent:
        ``p`` in ``ω = 0.1^p``.
    prune_thresholds:
        Drop unreachable ``cto`` variables (Sec. 6.2.2).
    log_base:
        Base of the logarithmic encoding.
    """

    def __init__(
        self,
        graph: QueryGraph,
        thresholds: Optional[Sequence[float]] = None,
        precision_exponent: int = 0,
        prune_thresholds: bool = True,
        log_base: float = 10.0,
    ) -> None:
        self.graph = graph
        if thresholds is None:
            max_card = max(r.cardinality for r in graph.relations)
            thresholds = [max_card]
        self.milp_builder = JoinOrderMilp(
            graph=graph,
            thresholds=list(thresholds),
            prune_thresholds=prune_thresholds,
            log_base=log_base,
            precision_omega=0.1 ** precision_exponent,
        )
        self.precision_exponent = precision_exponent
        self._bilp: Optional[JoinOrderBilp] = None
        self._bqm: Optional[BinaryQuadraticModel] = None

    # ------------------------------------------------------------------
    @property
    def bilp(self) -> JoinOrderBilp:
        """The (lazily built) equality BILP."""
        if self._bilp is None:
            self._bilp = build_join_order_bilp(
                self.milp_builder, self.precision_exponent
            )
        return self._bilp

    @property
    def bqm(self) -> BinaryQuadraticModel:
        """The (lazily built) QUBO."""
        if self._bqm is None:
            self._bqm = bilp_to_bqm(self.bilp)
        return self._bqm

    def report(self) -> PipelineReport:
        """Resource counts for the instance."""
        return PipelineReport(
            num_relations=self.graph.num_relations,
            num_predicates=self.graph.num_predicates,
            num_thresholds=len(self.milp_builder.thresholds),
            omega=self.bilp.omega,
            variable_counts=self.bilp.variable_counts(),
            num_quadratic_terms=self.bqm.num_interactions,
        )

    # ------------------------------------------------------------------
    def decode_sample(self, sample: Dict[str, int], method: str = "") -> JoinOrderResult:
        """Binary sample → join order with its true C_out cost."""
        order = self.bilp.decode_order(sample)
        return JoinOrderResult(
            order=order, cost=cout_cost(self.graph, order), method=method
        )

    def solve_with_annealer(
        self,
        sampler: Optional[SimulatedAnnealingSampler] = None,
        num_reads: int = 100,
        seed: Optional[int] = None,
    ) -> JoinOrderResult:
        """Sample the QUBO with (simulated) annealing; decode the best
        sample that encodes a *valid* join order."""
        sampler = sampler or SimulatedAnnealingSampler(num_sweeps=400, seed=seed)
        sample_set = sampler.sample(self.bqm, num_reads=num_reads)
        return self._best_valid(
            (record.sample for record in sample_set), method="annealing"
        )

    def solve_with_minimum_eigen(self, solver, max_qubits: int = 32) -> JoinOrderResult:
        """Solve via a gate-model eigensolver (VQE/QAOA/exact)."""
        optimizer = MinimumEigenOptimizer(solver, max_qubits=max_qubits)
        result = optimizer.solve(self.bqm)
        samples = [result.sample] + [s for s, _ in result.candidates]
        return self._best_valid(samples, method=type(solver).__name__.lower())

    def _best_valid(self, samples, method: str) -> JoinOrderResult:
        best: Optional[JoinOrderResult] = None
        attempts = 0
        for sample in samples:
            attempts += 1
            try:
                decoded = self.decode_sample(sample, method=method)
            except Exception:
                continue
            if best is None or decoded.cost < best.cost:
                best = decoded
        if best is None:
            raise SolverError(
                f"none of the {attempts} samples decoded to a valid join order"
            )
        return best
