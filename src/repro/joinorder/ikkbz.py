"""IKKBZ: polynomial-time optimal left-deep orders for tree queries.

The paper's related work ([10], Moerkotte's *Building Query Compilers*)
classifies join-ordering algorithms; IKKBZ (Ibaraki & Kameda 1984,
Krishnamurthy, Boral & Zaniolo 1986) is the classic polynomial
counterpoint to the exponential approaches the quantum pipeline is
benchmarked against: for **acyclic (tree) query graphs** and an ASI
cost function — which C_out is, because in a tree the only selectivity
applied when a relation joins a connected prefix is its parent edge's —
it finds the optimal *connected* left-deep order in
:math:`O(n^2 \\log n)`.

Algorithm sketch (per rooting of the query tree):

1. every non-root relation ``i`` becomes a module with size factor
   ``T_i = f_i · |R_i|``, cost ``C_i = T_i`` and rank
   ``(T_i − 1)/C_i``;
2. each subtree is recursively flattened into a rank-ascending chain;
   a precedence conflict (parent rank above a child's) is resolved by
   merging the two modules into a compound
   (``T = T_a T_b``, ``C = C_a + T_a C_b``);
3. sibling chains are merged by ascending rank;
4. the best of all rootings wins.

Connected orders only — cross products are never taken (the standard
IKKBZ restriction).  On tree graphs where the global optimum is a
connected order (the usual case), IKKBZ matches the exponential DP;
tests verify exact agreement against brute force over connected
orders.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.exceptions import ProblemError
from repro.joinorder.classical import JoinOrderResult
from repro.joinorder.cost import cout_cost
from repro.joinorder.query_graph import QueryGraph


@dataclass
class _Module:
    """A (possibly compound) chain element."""

    relations: Tuple[str, ...]
    t: float  # size factor
    c: float  # cost factor

    @property
    def rank(self) -> float:
        if self.c == 0:
            return -math.inf
        return (self.t - 1.0) / self.c


def _combine(a: _Module, b: _Module) -> _Module:
    """Merge ``a`` followed by ``b`` into one module (ASI algebra)."""
    return _Module(
        relations=a.relations + b.relations,
        t=a.t * b.t,
        c=a.c + a.t * b.c,
    )


def _normalize(sequence: List[_Module]) -> List[_Module]:
    """Resolve precedence conflicts: merge while ranks decrease."""
    stack: List[_Module] = []
    for module in sequence:
        stack.append(module)
        while len(stack) >= 2 and stack[-2].rank > stack[-1].rank + 1e-15:
            b = stack.pop()
            a = stack.pop()
            stack.append(_combine(a, b))
    return stack


def _merge_chains(chains: List[List[_Module]]) -> List[_Module]:
    """Merge rank-ascending chains into one rank-ascending chain."""
    heap: List[Tuple[float, int, int]] = []
    for idx, chain in enumerate(chains):
        if chain:
            heapq.heappush(heap, (chain[0].rank, idx, 0))
    merged: List[_Module] = []
    while heap:
        _, idx, pos = heapq.heappop(heap)
        merged.append(chains[idx][pos])
        if pos + 1 < len(chains[idx]):
            heapq.heappush(heap, (chains[idx][pos + 1].rank, idx, pos + 1))
    return merged


def solve_ikkbz(graph: QueryGraph) -> JoinOrderResult:
    """Optimal connected left-deep order for an acyclic query graph.

    Raises
    ------
    ProblemError
        If the predicate graph is not a connected tree (IKKBZ's
        applicability condition).
    """
    g = nx.Graph()
    g.add_nodes_from(graph.relation_names)
    g.add_edges_from((p.first, p.second) for p in graph.predicates)
    if not nx.is_connected(g):
        raise ProblemError("IKKBZ requires a connected predicate graph")
    if g.number_of_edges() != graph.num_relations - 1:
        raise ProblemError("IKKBZ requires an acyclic (tree) query graph")

    best_order: Optional[Tuple[str, ...]] = None
    best_cost = math.inf
    for root in graph.relation_names:
        order = _solve_for_root(graph, g, root)
        cost = cout_cost(graph, order)
        if cost < best_cost:
            best_cost = cost
            best_order = order
    assert best_order is not None
    return JoinOrderResult(order=best_order, cost=best_cost, method="ikkbz")


def _solve_for_root(graph: QueryGraph, tree: nx.Graph, root: str) -> Tuple[str, ...]:
    """The IKKBZ chain for one rooting of the precedence tree."""
    parent: Dict[str, Optional[str]] = {root: None}
    children: Dict[str, List[str]] = {r: [] for r in graph.relation_names}
    for node in nx.bfs_tree(tree, root):
        for nbr in tree.neighbors(node):
            if nbr not in parent:
                parent[nbr] = node
                children[node].append(nbr)

    def module_of(relation: str) -> _Module:
        selectivity = graph.selectivity(relation, parent[relation])
        t = selectivity * graph.cardinality(relation)
        return _Module(relations=(relation,), t=t, c=t)

    def chain_below(node: str) -> List[_Module]:
        """Rank-ascending chain of ``node``'s strict descendants."""
        child_chains: List[List[_Module]] = []
        for child in children[node]:
            sequence = [module_of(child)] + chain_below(child)
            child_chains.append(_normalize(sequence))
        return _merge_chains(child_chains)

    flattened: List[str] = [root]
    for module in chain_below(root):
        flattened.extend(module.relations)
    return tuple(flattened)


def connected_orders_bruteforce(graph: QueryGraph) -> JoinOrderResult:
    """Exact minimum over *connected* left-deep orders (test reference).

    Exponential; intended for ≤ 8 relations.
    """
    if graph.num_relations > 8:
        raise ProblemError("brute force over connected orders refused")
    g = nx.Graph()
    g.add_nodes_from(graph.relation_names)
    g.add_edges_from((p.first, p.second) for p in graph.predicates)

    best: Optional[Tuple[str, ...]] = None
    best_cost = math.inf

    def extend(order: List[str], remaining: set) -> None:
        nonlocal best, best_cost
        if not remaining:
            cost = cout_cost(graph, order)
            if cost < best_cost:
                best_cost = cost
                best = tuple(order)
            return
        frontier = {
            r for r in remaining if any(g.has_edge(r, o) for o in order)
        }
        for r in sorted(frontier):
            order.append(r)
            remaining.discard(r)
            extend(order, remaining)
            remaining.add(r)
            order.pop()

    for start in graph.relation_names:
        others = set(graph.relation_names) - {start}
        extend([start], others)
    if best is None:
        raise ProblemError("no connected order exists (disconnected graph)")
    return JoinOrderResult(order=best, cost=best_cost, method="connected-bruteforce")
