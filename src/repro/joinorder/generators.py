"""Query-graph generators for tests, examples and benchmarks.

Covers the classic query-graph shapes of the join-ordering literature
(chain, star, cycle, clique), a randomized generator with configurable
predicate counts (the ``P = J / 2J / 3J`` classes of paper Figs. 11
and 14), and the worked examples from the paper:

* :func:`paper_example_graph` — Fig. 6 / Table 3 (R, S, T);
* :func:`uniform_query` — the all-cardinality-10 instances used for
  the scaling studies (Secs. 6.3.2–6.3.4).
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ProblemError
from repro.joinorder.query_graph import Predicate, QueryGraph, Relation


def _relation_names(count: int) -> Tuple[str, ...]:
    return tuple(f"R{i}" for i in range(count))


def paper_example_graph() -> QueryGraph:
    """The 3-relation example of paper Fig. 6 / Table 3.

    ``|R| = 10``, ``|S| = |T| = 1000``, ``f_RS = 0.1``, ``f_ST = 0.05``;
    the optimal left-deep order is ``(R ⋈ S) ⋈ T`` with cost 51,000.
    """
    return QueryGraph(
        relations=(
            Relation("R", 10),
            Relation("S", 1000),
            Relation("T", 1000),
        ),
        predicates=(
            Predicate("R", "S", 0.1),
            Predicate("S", "T", 0.05),
        ),
    )


def milp_example_graph() -> QueryGraph:
    """The 3-relation example of paper Sec. 6.1.2 (A, B, C).

    All cardinalities 10, one predicate A—B with selectivity 0.1;
    used with a single threshold value of 10.
    """
    return QueryGraph(
        relations=(Relation("A", 10), Relation("B", 10), Relation("C", 10)),
        predicates=(Predicate("A", "B", 0.1),),
    )


def uniform_query(
    num_relations: int,
    num_predicates: int,
    cardinality: float = 10.0,
    selectivity: float = 0.5,
    seed: Optional[int] = None,
) -> QueryGraph:
    """Uniform-cardinality instances of the paper's scaling studies.

    All relations share one cardinality; ``num_predicates`` edges are
    chosen as a spanning chain first (keeping the graph connected while
    ``P >= J``) and then random extra edges, all with one selectivity.
    """
    names = _relation_names(num_relations)
    joins = num_relations - 1
    max_predicates = num_relations * (num_relations - 1) // 2
    if num_predicates > max_predicates:
        raise ProblemError(
            f"{num_predicates} predicates exceed the {max_predicates} "
            f"possible pairs of {num_relations} relations"
        )
    rng = np.random.default_rng(seed)
    edges = []
    if num_predicates >= joins:
        edges.extend((names[i], names[i + 1]) for i in range(joins))
        extra = [
            (a, b)
            for a, b in itertools.combinations(names, 2)
            if (a, b) not in set(edges)
        ]
        picks = rng.choice(len(extra), size=num_predicates - joins, replace=False)
        edges.extend(extra[int(i)] for i in picks)
    else:
        pairs = list(itertools.combinations(names, 2))
        picks = rng.choice(len(pairs), size=num_predicates, replace=False)
        edges.extend(pairs[int(i)] for i in picks)
    return QueryGraph(
        relations=tuple(Relation(n, cardinality) for n in names),
        predicates=tuple(Predicate(a, b, selectivity) for a, b in edges),
    )


def chain_query(
    num_relations: int,
    cardinality_range: Tuple[float, float] = (10.0, 1000.0),
    selectivity_range: Tuple[float, float] = (0.01, 0.5),
    seed: Optional[int] = None,
) -> QueryGraph:
    """A chain query: R0 — R1 — ... — Rn-1."""
    rng = np.random.default_rng(seed)
    names = _relation_names(num_relations)
    relations = tuple(
        Relation(n, float(np.round(rng.uniform(*cardinality_range)))) for n in names
    )
    predicates = tuple(
        Predicate(names[i], names[i + 1], float(rng.uniform(*selectivity_range)))
        for i in range(num_relations - 1)
    )
    return QueryGraph(relations, predicates)


def star_query(
    num_relations: int,
    fact_cardinality: float = 100_000.0,
    dimension_range: Tuple[float, float] = (10.0, 1000.0),
    selectivity_range: Tuple[float, float] = (0.001, 0.1),
    seed: Optional[int] = None,
) -> QueryGraph:
    """A star query: a fact table joined with n-1 dimensions."""
    rng = np.random.default_rng(seed)
    names = _relation_names(num_relations)
    relations = [Relation(names[0], fact_cardinality)]
    relations += [
        Relation(n, float(np.round(rng.uniform(*dimension_range))))
        for n in names[1:]
    ]
    predicates = tuple(
        Predicate(names[0], n, float(rng.uniform(*selectivity_range)))
        for n in names[1:]
    )
    return QueryGraph(tuple(relations), predicates)


def cycle_query(
    num_relations: int,
    cardinality_range: Tuple[float, float] = (10.0, 1000.0),
    selectivity_range: Tuple[float, float] = (0.01, 0.5),
    seed: Optional[int] = None,
) -> QueryGraph:
    """A cycle query: a chain closed back to the first relation."""
    rng = np.random.default_rng(seed)
    base = chain_query(num_relations, cardinality_range, selectivity_range, seed)
    closing = Predicate(
        base.relation_names[-1],
        base.relation_names[0],
        float(rng.uniform(*selectivity_range)),
    )
    return QueryGraph(base.relations, base.predicates + (closing,))


def clique_query(
    num_relations: int,
    cardinality_range: Tuple[float, float] = (10.0, 1000.0),
    selectivity_range: Tuple[float, float] = (0.01, 0.5),
    seed: Optional[int] = None,
) -> QueryGraph:
    """A clique query: predicates between every relation pair."""
    rng = np.random.default_rng(seed)
    names = _relation_names(num_relations)
    relations = tuple(
        Relation(n, float(np.round(rng.uniform(*cardinality_range)))) for n in names
    )
    predicates = tuple(
        Predicate(a, b, float(rng.uniform(*selectivity_range)))
        for a, b in itertools.combinations(names, 2)
    )
    return QueryGraph(relations, predicates)


def random_query(
    num_relations: int,
    num_predicates: Optional[int] = None,
    cardinality_range: Tuple[float, float] = (10.0, 10_000.0),
    selectivity_range: Tuple[float, float] = (0.001, 0.5),
    seed: Optional[int] = None,
) -> QueryGraph:
    """A connected random query graph.

    ``num_predicates`` defaults to the number of joins (the paper's
    practical lower bound ``P = J``); a random spanning tree keeps the
    predicate graph connected, extra predicates land on random pairs.
    """
    rng = np.random.default_rng(seed)
    names = _relation_names(num_relations)
    joins = num_relations - 1
    num_predicates = joins if num_predicates is None else num_predicates
    if num_predicates < joins:
        raise ProblemError("random_query keeps graphs connected: need P >= J")
    relations = tuple(
        Relation(n, float(np.round(rng.uniform(*cardinality_range)))) for n in names
    )
    # random spanning tree (random attachment order)
    order = list(rng.permutation(num_relations))
    edges = set()
    for i in range(1, num_relations):
        j = int(rng.integers(0, i))
        a, b = sorted((names[order[i]], names[order[j]]))
        edges.add((a, b))
    remaining = [
        pair
        for pair in itertools.combinations(names, 2)
        if pair not in edges
    ]
    extra = num_predicates - len(edges)
    if extra > len(remaining):
        raise ProblemError("too many predicates for the relation count")
    for i in rng.choice(len(remaining), size=extra, replace=False):
        edges.add(remaining[int(i)])
    predicates = tuple(
        Predicate(a, b, float(rng.uniform(*selectivity_range)))
        for a, b in sorted(edges)
    )
    return QueryGraph(relations, predicates)
