"""Direct QUBO encoding of the join ordering problem (future work the
paper calls for in Sec. 7).

The paper's two-step transformation (MILP → BILP → QUBO) spends most
of its qubits on slack variables for inequality constraints.  Its
discussion explicitly asks whether "a direct conversion without first
transforming the problem into an MILP problem" could be cheaper in
qubits.  This module prototypes such an encoding:

**Variables** — a permutation matrix: ``x[r, pos] = 1`` iff relation
``r`` sits at position ``pos`` of the left-deep order.  That is
:math:`T^2` qubits — *quadratically* fewer than the two-step
encoding's :math:`O(T^2) + O(TP) + O(R \\log(1/\\omega))` slack-heavy
budget (e.g. 196 vs ~1,066 qubits at T = 14, P = J).

**Validity** — one-hot rows and columns, penalised quadratically:

.. math:: H_{valid} = A \\sum_r \\Big(1 - \\sum_{pos} x_{r,pos}\\Big)^2
                    + A \\sum_{pos} \\Big(1 - \\sum_r x_{r,pos}\\Big)^2

**Cost** — the prefix-membership indicator
:math:`\\pi_{r,k} = \\sum_{pos \\le k} x_{r,pos}` is *linear* in the
variables, so the **logarithmic** intermediate cardinality of the
length-``k`` prefix,

.. math:: lco_k = \\sum_r \\log|R_r| \\; \\pi_{r,k}
                + \\sum_{p=(a,b)} \\log f_p \\; \\pi_{a,k} \\pi_{b,k},

is quadratic — no slack variables, no thresholds.  The objective

.. math:: H_{cost} = \\sum_{k=2}^{T-1} lco_k

minimises the *sum of log-cardinalities* (the geometric mean of the
intermediate results) rather than C_out's arithmetic sum.  This is the
encoding's honest trade-off: it is exact about which relations meet
when, but optimises a log-domain surrogate of C_out.  On well-behaved
instances the two objectives agree on the optimum (validated by the
tests against the DP baseline); adversarial cardinality spreads can
make them diverge, which is why the module reports the surrogate
explicitly instead of pretending to minimise C_out.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.exceptions import ProblemError
from repro.joinorder.classical import JoinOrderResult
from repro.joinorder.cost import cout_cost
from repro.joinorder.query_graph import QueryGraph
from repro.qubo.bqm import BinaryQuadraticModel, Vartype


def variable_name(relation: str, position: int) -> str:
    """Naming convention of the permutation-matrix variables."""
    return f"x[{relation},{position}]"


@dataclass
class DirectJoinOrderQubo:
    """Builder for the direct (slack-free) join-ordering QUBO.

    Parameters
    ----------
    graph:
        The query graph.
    log_base:
        Base of the logarithmic cost encoding.
    penalty:
        One-hot constraint weight ``A``; ``None`` derives a safe value
        exceeding the largest possible objective swing.
    """

    graph: QueryGraph
    log_base: float = 10.0
    penalty: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """``T^2`` — the full permutation matrix."""
        t = self.graph.num_relations
        return t * t

    def _log(self, value: float) -> float:
        return math.log(value, self.log_base)

    def default_penalty(self) -> float:
        """A weight dominating any achievable cost change.

        The objective's magnitude is bounded by every log-cardinality
        and log-selectivity being counted in every prefix; one-hot
        violations must cost more than that entire swing.
        """
        t = self.graph.num_relations
        swing = sum(
            abs(self._log(r.cardinality)) for r in self.graph.relations
        ) * t
        swing += sum(
            abs(self._log(p.selectivity)) for p in self.graph.predicates
        ) * t
        return swing + 1.0

    # ------------------------------------------------------------------
    def build(self) -> BinaryQuadraticModel:
        """Assemble ``A·H_valid + H_cost``."""
        graph = self.graph
        names = graph.relation_names
        t = graph.num_relations
        weight = self.penalty if self.penalty is not None else self.default_penalty()

        bqm = BinaryQuadraticModel(vartype=Vartype.BINARY)
        for r in names:
            for pos in range(t):
                bqm.add_linear(variable_name(r, pos), 0.0)

        # --- H_valid: one-hot rows (relations) and columns (positions)
        def one_hot(group: Sequence[str]) -> None:
            # (1 - sum x)^2 = 1 - sum x + 2 sum_{i<j} x_i x_j  (x^2 = x)
            bqm.offset += weight
            for v in group:
                bqm.add_linear(v, -weight)
            for a, b in itertools.combinations(group, 2):
                bqm.add_quadratic(a, b, 2.0 * weight)

        for r in names:
            one_hot([variable_name(r, pos) for pos in range(t)])
        for pos in range(t):
            one_hot([variable_name(r, pos) for r in names])

        # --- H_cost: sum of log prefix cardinalities over prefixes
        # 2..T-1 (the length-T prefix is permutation-invariant).
        # prefix membership pi_{r,k} = sum_{pos <= k} x[r,pos]; the
        # relation term is linear, the predicate term quadratic.
        for k in range(2, t):  # prefix lengths 2..T-1
            positions = range(k)
            for r in graph.relations:
                coeff = self._log(r.cardinality)
                for pos in positions:
                    bqm.add_linear(variable_name(r.name, pos), coeff)
            for p in graph.predicates:
                coeff = self._log(p.selectivity)
                for pos_a in positions:
                    for pos_b in positions:
                        va = variable_name(p.first, pos_a)
                        vb = variable_name(p.second, pos_b)
                        bqm.add_quadratic(va, vb, coeff)
        return bqm

    # ------------------------------------------------------------------
    def decode(self, sample: Dict[str, int], method: str = "direct") -> JoinOrderResult:
        """Permutation matrix → join order (raises on invalid one-hots)."""
        names = self.graph.relation_names
        t = self.graph.num_relations
        order = []
        for pos in range(t):
            chosen = [
                r for r in names if sample.get(variable_name(r, pos), 0) == 1
            ]
            if len(chosen) != 1:
                raise ProblemError(
                    f"position {pos} selects {len(chosen)} relations"
                )
            order.append(chosen[0])
        self.graph.validate_permutation(order)
        return JoinOrderResult(
            order=tuple(order),
            cost=cout_cost(self.graph, order),
            method=method,
        )

    def surrogate_objective(self, order: Sequence[str]) -> float:
        """The log-domain cost the encoding actually minimises."""
        self.graph.validate_permutation(order)
        total = 0.0
        for k in range(2, self.graph.num_relations):
            prefix = order[:k]
            total += sum(self._log(self.graph.cardinality(r)) for r in prefix)
            total += sum(
                self._log(p.selectivity)
                for p in self.graph.predicates_within(prefix)
            )
        return total

    def qubit_savings_vs_two_step(self, two_step_qubits: int) -> float:
        """Fractional qubit saving against the paper's pipeline."""
        return 1.0 - self.num_qubits / two_step_qubits


def solve_direct_with_annealer(
    builder: DirectJoinOrderQubo,
    num_reads: int = 100,
    num_sweeps: int = 500,
    seed: Optional[int] = None,
) -> JoinOrderResult:
    """Sample the direct QUBO and decode the best valid permutation."""
    from repro.annealing.simulated_annealing import SimulatedAnnealingSampler

    bqm = builder.build()
    sampler = SimulatedAnnealingSampler(num_sweeps=num_sweeps, seed=seed)
    sample_set = sampler.sample(bqm, num_reads=num_reads)
    best: Optional[JoinOrderResult] = None
    for record in sample_set:
        try:
            decoded = builder.decode(record.sample)
        except ProblemError:
            continue
        if best is None or decoded.cost < best.cost:
            best = decoded
    if best is None:
        raise ProblemError("no valid permutation among the samples")
    return best
