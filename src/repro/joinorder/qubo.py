"""QUBO form of the all-equality BILP (paper Sec. 6.1.4, after
[Lucas 2014]).

.. math:: H = A H_A + B H_B, \\qquad
          H_A = \\sum_{j=1}^{m} \\Big(b_j - \\sum_i S_{ji} x_i\\Big)^2,
          \\qquad H_B = \\sum_i c_i x_i

The ground state of :math:`H` encodes the optimal valid join order:
``H_A`` penalises every constraint violation quadratically, ``H_B``
adds the (non-negative) objective.  With coefficients rounded to the
precision ω, the smallest possible violation is ω, so

.. math:: A > C / \\omega^2, \\qquad C = \\sum_i c_i

(Eqs. 43–44) guarantees no objective saving can offset a violation.

``H_A`` is the sole source of quadratic terms: one per variable pair
co-occurring in at least one constraint (the quantity of Table 4 that
drives QAOA depth and embedding difficulty, Sec. 6.3.3).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.joinorder.bilp import JoinOrderBilp
from repro.qubo.bqm import BinaryQuadraticModel, Vartype


def penalty_weight(cost_vector: np.ndarray, omega: float, margin: float = 1.0) -> float:
    """The constraint penalty ``A > C / ω²`` (Eq. 44).

    ``C = Σ c_i`` is the largest objective saving any assignment could
    realise (Eq. 43, valid because the join-ordering costs are
    non-negative).
    """
    if omega <= 0:
        raise ModelError("omega must be positive")
    if np.any(cost_vector < 0):
        raise ModelError("Eq. 43 requires a non-negative cost vector")
    total = float(np.sum(cost_vector))
    return total / (omega * omega) + margin


def bilp_matrices_to_bqm(
    s: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    order: Tuple[str, ...],
    penalty_a: float,
    weight_b: float = 1.0,
) -> BinaryQuadraticModel:
    """Assemble ``A·Σ(b_j − S_j·x)² + B·Σ c_i x_i`` as a BQM.

    Expansion per constraint row ``(b, s)``:

    ``(b − s·x)² = b² − 2b Σ s_i x_i + Σ s_i² x_i + 2 Σ_{i<k} s_i s_k x_i x_k``

    using binary idempotence ``x² = x``.
    """
    m, n = s.shape
    if b.shape != (m,) or c.shape != (n,) or len(order) != n:
        raise ModelError("inconsistent BILP matrix shapes")

    linear = np.zeros(n)
    offset = 0.0
    quad: dict = {}
    for row in range(m):
        coeffs = s[row]
        nz = np.flatnonzero(coeffs)
        rhs = b[row]
        offset += penalty_a * rhs * rhs
        linear[nz] += penalty_a * (coeffs[nz] ** 2 - 2.0 * rhs * coeffs[nz])
        for pos, i in enumerate(nz):
            ci = coeffs[i]
            for k in nz[pos + 1:]:
                key = (int(i), int(k))
                quad[key] = quad.get(key, 0.0) + 2.0 * penalty_a * ci * coeffs[k]
    linear += weight_b * c

    bqm = BinaryQuadraticModel(vartype=Vartype.BINARY, offset=offset)
    for i, name in enumerate(order):
        bqm.add_linear(name, float(linear[i]))
    for (i, k), bias in quad.items():
        if bias != 0.0:
            bqm.add_quadratic(order[i], order[k], float(bias))
    return bqm


def bilp_to_bqm(
    bilp: JoinOrderBilp,
    penalty_a: Optional[float] = None,
    weight_b: float = 1.0,
) -> BinaryQuadraticModel:
    """The full join-ordering QUBO of a BILP instance.

    ``penalty_a`` defaults to the Eq. 44 bound.
    """
    s, b, c, order = bilp.to_matrices()
    if penalty_a is None:
        penalty_a = penalty_weight(c, bilp.omega)
    return bilp_matrices_to_bqm(s, b, c, tuple(order), penalty_a, weight_b)


def quadratic_term_count(bilp: JoinOrderBilp) -> int:
    """Number of quadratic terms without building the BQM.

    One term per variable pair sharing at least one constraint — but
    pairs whose accumulated coefficient cancels exactly are dropped,
    matching :func:`bilp_to_bqm`.
    """
    return bilp_to_bqm(bilp, penalty_a=1.0).num_interactions
