"""MILP formulation of the join ordering problem (paper Sec. 6.1.2,
after [Trummer & Koch 2017]).

Variables (all binary; ``j`` indexes joins ``0..J-1``):

* ``tio[t,j]`` — relation ``t`` is in the *outer* operand of join ``j``;
* ``tii[t,j]`` — relation ``t`` is the *inner* operand of join ``j``;
* ``pao[p,j]`` — predicate ``p`` is applicable on the outer operand of
  join ``j`` (only for ``j >= 1``; for the first join the outer operand
  is a single relation, Sec. 6.2.2);
* ``cto[r,j]`` — the log-cardinality of join ``j``'s outer operand has
  reached threshold ``θ_r`` (only for ``j >= 1``, same reason).

Constraint types 1–7 follow the paper verbatim; products of
cardinalities/selectivities become sums of logarithms, and the
objective (Eq. 38) charges ``δθ_r`` whenever a threshold is crossed so
that minimising it minimises the accumulated intermediate
cardinalities.

``prune_thresholds=True`` additionally drops ``cto[r,j]`` variables
(and their type-7 constraints) when the threshold is unreachable at
join ``j`` (``mlc_j <= log θ_r``), the optimisation described in
Sec. 6.2.2 — the paper's scaling *figures* are produced with pruning
off to represent a general problem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ProblemError
from repro.linprog.model import LinearModel, quicksum
from repro.joinorder.query_graph import QueryGraph


@dataclass
class MilpStatistics:
    """Variable bookkeeping of a built model (Sec. 6.3.1 quantities)."""

    num_tio: int = 0
    num_tii: int = 0
    num_pao: int = 0
    num_cto: int = 0
    #: constraints needing a single binary slack (types 3, 5, 6)
    num_single_slack_constraints: int = 0
    #: type-7 constraints with their continuous-slack upper bound
    type7_slack_bounds: Dict[str, float] = field(default_factory=dict)

    @property
    def num_logical(self) -> int:
        """``n_log`` of Eq. 46."""
        return self.num_tio + self.num_tii + self.num_pao + self.num_cto


@dataclass
class JoinOrderMilp:
    """Builder for the join-ordering MILP.

    Parameters
    ----------
    graph:
        The query graph.
    thresholds:
        Ascending threshold values ``θ_0 < θ_1 < ...`` approximating
        intermediate cardinalities (more thresholds = finer objective,
        more qubits — the trade-off of Fig. 12).
    prune_thresholds:
        Drop unreachable ``cto`` variables (Sec. 6.2.2).
    log_base:
        Base of the logarithmic encoding (10 keeps the paper's
        examples readable; any base works).
    """

    graph: QueryGraph
    thresholds: Sequence[float]
    prune_thresholds: bool = True
    log_base: float = 10.0
    #: when set (the QUBO path), logarithmic coefficients and the
    #: type-7 right-hand sides are rounded to multiples of this
    #: precision factor ω (Sec. 6.1.4), and the big-M constant ∞ is
    #: kept at ≥ ω so activating ``cto`` always relieves its
    #: constraint.  ``None`` keeps exact coefficients (classical MILP).
    precision_omega: Optional[float] = None

    def __post_init__(self) -> None:
        thresholds = list(self.thresholds)
        if not thresholds:
            raise ProblemError("at least one threshold value is required")
        if sorted(thresholds) != thresholds or len(set(thresholds)) != len(thresholds):
            raise ProblemError("thresholds must be strictly ascending")
        if thresholds[0] <= 0:
            raise ProblemError("thresholds must be positive")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def _log(self, value: float) -> float:
        return math.log(value, self.log_base)

    def _rounded_log(self, value: float) -> float:
        """Log coefficient, snapped to the ω grid when ω is set."""
        raw = self._log(value)
        if self.precision_omega is None:
            return raw
        return round(raw / self.precision_omega) * self.precision_omega

    def delta_thetas(self) -> List[float]:
        """``δθ_r``: θ_0, θ_1-θ_0, ... (objective weights, Sec. 6.1.2)."""
        thresholds = list(self.thresholds)
        return [thresholds[0]] + [
            thresholds[r] - thresholds[r - 1] for r in range(1, len(thresholds))
        ]

    def max_log_cardinality(self, join: int) -> float:
        """``mlc_j`` (Eq. 50): the worst-case log-cardinality of the
        outer operand of (0-based) join ``j``, which holds ``j + 1``
        relations — the sum of the ``j + 1`` largest log-cardinalities."""
        logs = sorted(
            (self._log(r.cardinality) for r in self.graph.relations), reverse=True
        )
        return sum(logs[: join + 1])

    def threshold_reachable(self, r: int, join: int) -> bool:
        """Whether θ_r can be exceeded at join ``j`` (prunable if not)."""
        return self.max_log_cardinality(join) > self._log(self.thresholds[r])

    # ------------------------------------------------------------------
    # Model construction
    # ------------------------------------------------------------------
    def build(self) -> Tuple[LinearModel, MilpStatistics]:
        """Construct the MILP and report its variable statistics."""
        graph = self.graph
        names = graph.relation_names
        joins = graph.num_joins
        predicates = graph.predicates
        thresholds = list(self.thresholds)
        stats = MilpStatistics()
        model = LinearModel(name="join_order")

        tio = {}
        tii = {}
        for j in range(joins):
            for t in names:
                tio[(t, j)] = model.add_binary(f"tio[{t},{j}]")
                tii[(t, j)] = model.add_binary(f"tii[{t},{j}]")
                stats.num_tio += 1
                stats.num_tii += 1

        pao = {}
        for j in range(1, joins):
            for p_idx, _ in enumerate(predicates):
                pao[(p_idx, j)] = model.add_binary(f"pao[{p_idx},{j}]")
                stats.num_pao += 1

        cto = {}
        for j in range(1, joins):
            for r in range(len(thresholds)):
                if self.prune_thresholds and not self.threshold_reachable(r, j):
                    continue
                cto[(r, j)] = model.add_binary(f"cto[{r},{j}]")
                stats.num_cto += 1

        # objective (Eq. 38): min Σ_r Σ_j cto[r,j] * δθ_r
        deltas = self.delta_thetas()
        model.set_objective(
            quicksum(
                deltas[r] * cto[(r, j)] for (r, j) in cto
            )
        )

        # type 1: exactly one relation in the first join's outer operand
        model.add_constraint(
            quicksum(tio[(t, 0)] for t in names).eq(1), name="t1"
        )
        # type 2: exactly one inner relation per join
        for j in range(joins):
            model.add_constraint(
                quicksum(tii[(t, j)] for t in names).eq(1), name=f"t2[{j}]"
            )
        # type 3: a relation is not both operands of the same join
        for j in range(joins):
            for t in names:
                model.add_constraint(
                    tio[(t, j)] + tii[(t, j)] <= 1, name=f"t3[{t},{j}]"
                )
                stats.num_single_slack_constraints += 1
        # type 4: relations accumulate into subsequent outer operands
        for j in range(1, joins):
            for t in names:
                model.add_constraint(
                    (tio[(t, j)] - tii[(t, j - 1)] - tio[(t, j - 1)]).eq(0),
                    name=f"t4[{t},{j}]",
                )
        # types 5 and 6: a predicate applies only when both its
        # relations are in the outer operand
        for (p_idx, j), var in pao.items():
            predicate = predicates[p_idx]
            model.add_constraint(
                var - tio[(predicate.first, j)] <= 0, name=f"t5[{p_idx},{j}]"
            )
            model.add_constraint(
                var - tio[(predicate.second, j)] <= 0, name=f"t6[{p_idx},{j}]"
            )
            stats.num_single_slack_constraints += 2
        # type 7: threshold indicators track the outer log-cardinality
        for (r, j), var in cto.items():
            log_theta = self._rounded_log(thresholds[r])
            infinity = max(self.max_log_cardinality(j) - log_theta, 0.0)
            if self.precision_omega is not None:
                # snap ∞ *up* to the ω grid with a floor of ω, so the
                # coefficient stays on-grid and activating cto always
                # relieves the constraint (a zero ∞ would strand valid
                # solutions in infeasibility)
                omega = self.precision_omega
                infinity = max(math.ceil(infinity / omega) * omega, omega)
            lco = quicksum(
                self._rounded_log(graph.cardinality(t)) * tio[(t, j)] for t in names
            ) + quicksum(
                self._rounded_log(predicates[p_idx].selectivity) * pao[(p_idx, j)]
                for (p_idx, jj) in pao
                if jj == j
            )
            name = f"t7[{r},{j}]"
            model.add_constraint(
                (lco - infinity * var) <= log_theta, name=name
            )
            # slack upper bound C_rj = log θ_r + ∞_rj (Eq. 48); with the
            # minimal ∞ this is exactly mlc_j.  Assumes lco ≥ 0, i.e.
            # intermediate cardinalities of at least one tuple — the
            # same assumption the paper's bound makes.
            stats.type7_slack_bounds[name] = log_theta + infinity
        return model, stats

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode_order(self, assignment: Dict[str, float]) -> Tuple[str, ...]:
        """Recover the join order from a variable assignment.

        The permutation is the outer relation of join 0 followed by the
        inner relation of each join (Sec. 6.1.2, "Example").
        """
        names = self.graph.relation_names
        joins = self.graph.num_joins

        def chosen(prefix: str, j: int) -> str:
            picks = [
                t for t in names if round(assignment.get(f"{prefix}[{t},{j}]", 0)) == 1
            ]
            if len(picks) != 1:
                raise ProblemError(
                    f"assignment selects {len(picks)} relations for {prefix} of join {j}"
                )
            return picks[0]

        order = [chosen("tio", 0)]
        for j in range(joins):
            order.append(chosen("tii", j))
        self.graph.validate_permutation(order)
        return tuple(order)
