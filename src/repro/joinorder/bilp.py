"""BILP form of the join-ordering MILP (paper Sec. 6.1.3).

All variables of the MILP are already binary, so the only work is the
elimination of inequality constraints:

* types 3, 5, 6 have a slack range of exactly 1 → one binary slack;
* type 7's continuous slack (Eq. 39) is discretized per Eq. 40 into
  ``⌊log2(C/ω)⌋ + 1`` binaries with ``C = mlc_j`` (Eq. 48) and
  precision factor ``ω = 0.1^p``.

Coefficients are rounded to multiples of ω so the smallest possible
constraint violation is exactly ω (Sec. 6.1.4), which the QUBO penalty
weight relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.exceptions import ProblemError
from repro.linprog.model import LinearModel
from repro.linprog.standard_form import StandardFormResult, to_equality_form
from repro.joinorder.milp import JoinOrderMilp, MilpStatistics


@dataclass
class JoinOrderBilp:
    """The all-equality BILP of a join-ordering instance.

    Attributes
    ----------
    model:
        Equality-only binary program.
    omega:
        The precision factor ``ω = 0.1^p``.
    milp:
        The originating builder (for decoding).
    milp_stats:
        Variable statistics of the pre-slack model.
    standard_form:
        Slack bookkeeping from the conversion.
    """

    model: LinearModel
    omega: float
    milp: JoinOrderMilp
    milp_stats: MilpStatistics
    standard_form: StandardFormResult

    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Total binaries = required logical qubits (Sec. 6.3.1)."""
        return self.model.num_variables

    @property
    def num_logical_variables(self) -> int:
        """``n_log``: the original MILP variables."""
        return self.milp_stats.num_logical

    @property
    def num_slack_variables(self) -> int:
        """``n_bsl + n_csl``: all added slack binaries."""
        return self.standard_form.num_slack_variables

    def variable_counts(self) -> Dict[str, int]:
        """Breakdown matching Eq. 45: ``n = n_log + n_bsl + n_csl``."""
        n_csl = sum(
            len(slacks)
            for name, slacks in self.standard_form.slack_of_constraint.items()
            if name.startswith("t7")
        )
        n_bsl = self.num_slack_variables - n_csl
        return {
            "n_log": self.num_logical_variables,
            "n_bsl": n_bsl,
            "n_csl": n_csl,
            "n": self.num_variables,
        }

    def to_matrices(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[str, ...]]:
        """``(S, b, c, order)`` for the Ising transformation (Sec. 6.1.4)."""
        return self.model.to_matrices()

    def decode_order(self, assignment: Dict[str, float]) -> Tuple[str, ...]:
        """Join order from a BILP assignment (slacks ignored)."""
        return self.milp.decode_order(assignment)


def build_join_order_bilp(
    milp_builder: JoinOrderMilp,
    precision_exponent: int = 0,
) -> JoinOrderBilp:
    """MILP → BILP with discretized slacks.

    Parameters
    ----------
    milp_builder:
        A configured :class:`JoinOrderMilp`.
    precision_exponent:
        ``p`` in ``ω = 0.1^p`` (paper Sec. 6.1.3); 0 gives ω = 1.
    """
    if precision_exponent < 0:
        raise ProblemError("precision exponent must be non-negative")
    omega = 0.1 ** precision_exponent
    model, stats = milp_builder.build()
    standard = to_equality_form(
        model, omega=omega, slack_bounds=stats.type7_slack_bounds
    )
    return JoinOrderBilp(
        model=standard.model,
        omega=omega,
        milp=milp_builder,
        milp_stats=stats,
        standard_form=standard,
    )
