"""Bushy join trees: the beyond-left-deep baseline.

The paper (and the MILP model it builds on) restricts the search to
left-deep trees (Sec. 4.2).  The classic argument for that restriction
is search-space size — but it costs plan quality: bushy trees can join
two *intermediate* results and sometimes beat every left-deep order.

This module provides the exact bushy baseline via dynamic programming
over relation subsets (DPsub): for every subset the best tree is the
cheapest combination of two disjoint sub-trees, with C_out charging
each join's result cardinality once.  It quantifies what the paper's
left-deep restriction gives away (usually little on chains/stars,
more on cycles/cliques) — context for interpreting the reproduction's
quality numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.exceptions import SolverError
from repro.joinorder.cost import join_result_cardinality
from repro.joinorder.query_graph import QueryGraph

#: A join tree: either a relation name (leaf) or a pair of subtrees.
JoinTree = Union[str, Tuple["JoinTree", "JoinTree"]]


@dataclass(frozen=True)
class BushyResult:
    """An optimal bushy plan."""

    tree: JoinTree
    cost: float

    def leaves(self) -> List[str]:
        """Relations in left-to-right leaf order."""
        out: List[str] = []

        def walk(node: JoinTree) -> None:
            if isinstance(node, str):
                out.append(node)
            else:
                walk(node[0])
                walk(node[1])

        walk(self.tree)
        return out

    def render(self) -> str:
        """Parenthesised tree, e.g. ``((A ⋈ B) ⋈ (C ⋈ D))``."""

        def walk(node: JoinTree) -> str:
            if isinstance(node, str):
                return node
            return f"({walk(node[0])} ⋈ {walk(node[1])})"

        return walk(self.tree)


def solve_dp_bushy(graph: QueryGraph, max_relations: int = 16) -> BushyResult:
    """Optimal bushy tree under C_out by subset dynamic programming.

    ``O(3^n)`` subset-split enumeration; refuse beyond ``max_relations``.
    """
    n = graph.num_relations
    if n > max_relations:
        raise SolverError(f"bushy DP over 3^{n} splits refused")
    names = graph.relation_names
    full = (1 << n) - 1

    def members(mask: int) -> List[str]:
        return [names[i] for i in range(n) if mask & (1 << i)]

    card_cache: Dict[int, float] = {}

    def card(mask: int) -> float:
        if mask not in card_cache:
            card_cache[mask] = join_result_cardinality(graph, members(mask))
        return card_cache[mask]

    best_cost: Dict[int, float] = {}
    best_split: Dict[int, Tuple[int, int]] = {}
    for i in range(n):
        best_cost[1 << i] = 0.0

    # enumerate subsets in increasing popcount so sub-results exist
    masks = sorted(range(1, full + 1), key=lambda m: bin(m).count("1"))
    for mask in masks:
        if bin(mask).count("1") < 2:
            continue
        result_card = card(mask)
        best = math.inf
        split = None
        # iterate proper sub-masks; fix the lowest bit on the left
        # side to halve the symmetric enumeration
        low = mask & (-mask)
        sub = (mask - 1) & mask
        while sub:
            if sub & low:
                other = mask ^ sub
                cost = best_cost[sub] + best_cost[other] + result_card
                if cost < best:
                    best = cost
                    split = (sub, other)
            sub = (sub - 1) & mask
        best_cost[mask] = best
        best_split[mask] = split

    def build(mask: int) -> JoinTree:
        if bin(mask).count("1") == 1:
            return names[mask.bit_length() - 1]
        left, right = best_split[mask]
        return (build(left), build(right))

    return BushyResult(tree=build(full), cost=best_cost[full])


def left_deep_penalty(graph: QueryGraph) -> float:
    """How much the left-deep restriction costs on this query.

    ``optimal left-deep C_out / optimal bushy C_out`` (≥ 1; equal to 1
    when a left-deep tree is globally optimal).
    """
    from repro.joinorder.classical import solve_dp_left_deep

    left_deep = solve_dp_left_deep(graph)
    bushy = solve_dp_bushy(graph)
    if bushy.cost <= 0:
        return 1.0
    return left_deep.cost / bushy.cost
