"""The C_out cost model for left-deep join trees (paper Sec. 4.2).

For a permutation ``s`` of the relations the cost is Eq. 28:

.. math:: C(s) = \\sum_{i=2}^{n} C_{out}(|s_1...s_{i-1}|, |s_i|)
               = \\sum_{i=2}^{n} |s_1 ... s_{i-1}| \\cdot |s_i|
                 \\cdot \\prod f

i.e. the sum of the cardinalities of every intermediate (and final)
join result, where a predicate's selectivity applies to the first join
that brings both of its relations together.  Minimising C(s) minimises
intermediate result sizes, which is what the MILP objective encodes
through its threshold variables (Sec. 6.1.2).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.joinorder.query_graph import QueryGraph


def join_result_cardinality(graph: QueryGraph, names: Sequence[str]) -> float:
    """Cardinality of the join of a relation set.

    ``∏ |R_i| · ∏ f_p`` over all predicates entirely inside the set —
    the standard independence assumption behind Eq. 26.
    """
    card = 1.0
    for name in names:
        card *= graph.cardinality(name)
    for p in graph.predicates_within(names):
        card *= p.selectivity
    return card


def intermediate_cardinalities(graph: QueryGraph, order: Sequence[str]) -> List[float]:
    """Cardinalities of the outer operand after each join.

    Entry ``i`` is ``|s_1 ... s_{i+1}|`` — the result of join ``i``
    (0-based), which is the outer operand of join ``i+1``.
    """
    graph.validate_permutation(order)
    return [
        join_result_cardinality(graph, order[: i + 1])
        for i in range(1, len(order))
    ]


def cout_cost(
    graph: QueryGraph,
    order: Sequence[str],
    include_final_join: bool = True,
) -> float:
    """The C_out cost of a left-deep join order (Eq. 28).

    ``include_final_join=False`` reproduces the observation under paper
    Table 3: the last join's cost is identical for every order and can
    be dropped when comparing orders.
    """
    cards = intermediate_cardinalities(graph, order)
    if not include_final_join and len(cards) > 1:
        cards = cards[:-1]
    return float(sum(cards))
