"""Join ordering (paper Secs. 4.2 and 6) — the paper's core contribution.

Given a query graph of relations and join predicates, find the
left-deep join order minimising the ``C_out`` cost (sum of intermediate
result cardinalities, Eq. 28).  The quantum path is the paper's
two-step transformation (Fig. 10):

1. the query graph is formulated as an MILP/BILP after
   [Trummer & Koch 2017] with logarithmic cardinalities and threshold
   variables (Sec. 6.1.2), inequality constraints eliminated through
   (discretized) slack variables (Sec. 6.1.3);
2. the all-equality BILP becomes a QUBO via [Lucas 2014]'s
   :math:`H = A H_A + B H_B` with penalty :math:`A > C/\\omega^2`
   (Sec. 6.1.4), ready for gate-model or annealing solvers.
"""

from repro.joinorder.query_graph import Predicate, QueryGraph, Relation
from repro.joinorder.generators import (
    chain_query,
    clique_query,
    cycle_query,
    paper_example_graph,
    random_query,
    star_query,
    uniform_query,
)
from repro.joinorder.cost import cout_cost, intermediate_cardinalities, join_result_cardinality
from repro.joinorder.classical import (
    JoinOrderResult,
    solve_dp_left_deep,
    solve_exhaustive,
    solve_genetic,
    solve_greedy,
    solve_simulated_annealing,
)
from repro.joinorder.milp import JoinOrderMilp, MilpStatistics
from repro.joinorder.bilp import JoinOrderBilp
from repro.joinorder.qubo import bilp_to_bqm, penalty_weight
from repro.joinorder.pipeline import JoinOrderQuantumPipeline, PipelineReport
from repro.joinorder.direct_qubo import DirectJoinOrderQubo, solve_direct_with_annealer
from repro.joinorder.bushy import BushyResult, left_deep_penalty, solve_dp_bushy
from repro.joinorder.ikkbz import solve_ikkbz

__all__ = [
    "Predicate",
    "QueryGraph",
    "Relation",
    "chain_query",
    "clique_query",
    "cycle_query",
    "paper_example_graph",
    "random_query",
    "star_query",
    "uniform_query",
    "cout_cost",
    "intermediate_cardinalities",
    "join_result_cardinality",
    "JoinOrderResult",
    "solve_dp_left_deep",
    "solve_exhaustive",
    "solve_genetic",
    "solve_greedy",
    "solve_simulated_annealing",
    "JoinOrderMilp",
    "MilpStatistics",
    "JoinOrderBilp",
    "bilp_to_bqm",
    "penalty_weight",
    "JoinOrderQuantumPipeline",
    "PipelineReport",
    "DirectJoinOrderQubo",
    "solve_direct_with_annealer",
    "BushyResult",
    "left_deep_penalty",
    "solve_dp_bushy",
    "solve_ikkbz",
]
