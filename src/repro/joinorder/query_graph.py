"""Query graphs for the join ordering problem (paper Sec. 4.2).

A query graph ``G = (V, E)`` has one node per relation (with its
cardinality) and one edge per join predicate, labelled with the
predicate's selectivity (Eq. 26).  Relation pairs without a predicate
join as cross products (selectivity 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Sequence, Tuple

from repro.exceptions import ProblemError


@dataclass(frozen=True)
class Relation:
    """A base relation with its cardinality."""

    name: str
    cardinality: float

    def __post_init__(self) -> None:
        if self.cardinality < 1:
            raise ProblemError(
                f"relation {self.name!r} must have cardinality >= 1"
            )


@dataclass(frozen=True)
class Predicate:
    """A binary join predicate with its selectivity (Eq. 26)."""

    first: str
    second: str
    selectivity: float

    def __post_init__(self) -> None:
        if self.first == self.second:
            raise ProblemError("a join predicate relates two distinct relations")
        if not 0.0 < self.selectivity <= 1.0:
            raise ProblemError(
                f"selectivity must be in (0, 1], got {self.selectivity}"
            )

    @property
    def relations(self) -> FrozenSet[str]:
        return frozenset((self.first, self.second))


@dataclass(frozen=True)
class QueryGraph:
    """A join-ordering problem instance."""

    relations: Tuple[Relation, ...]
    predicates: Tuple[Predicate, ...] = ()

    def __post_init__(self) -> None:
        names = [r.name for r in self.relations]
        if len(set(names)) != len(names):
            raise ProblemError("duplicate relation names")
        if len(names) < 2:
            raise ProblemError("a join ordering problem needs >= 2 relations")
        known = set(names)
        seen_pairs = set()
        for p in self.predicates:
            if p.first not in known or p.second not in known:
                raise ProblemError(f"predicate references unknown relation: {p}")
            if p.relations in seen_pairs:
                raise ProblemError(
                    f"duplicate predicate between {sorted(p.relations)}"
                )
            seen_pairs.add(p.relations)

    # ------------------------------------------------------------------
    @property
    def num_relations(self) -> int:
        return len(self.relations)

    @property
    def num_joins(self) -> int:
        """``J = T - 1`` (paper Sec. 6.3.1)."""
        return self.num_relations - 1

    @property
    def num_predicates(self) -> int:
        return len(self.predicates)

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(r.name for r in self.relations)

    def relation(self, name: str) -> Relation:
        for r in self.relations:
            if r.name == name:
                return r
        raise ProblemError(f"unknown relation {name!r}")

    def cardinality(self, name: str) -> float:
        return self.relation(name).cardinality

    def cardinalities(self) -> Dict[str, float]:
        return {r.name: r.cardinality for r in self.relations}

    def selectivity(self, a: str, b: str) -> float:
        """Selectivity between two relations (1.0 for a cross product)."""
        key = frozenset((a, b))
        for p in self.predicates:
            if p.relations == key:
                return p.selectivity
        return 1.0

    def predicates_within(self, names: Iterable[str]) -> Tuple[Predicate, ...]:
        """Predicates whose both relations lie inside ``names``."""
        inside = set(names)
        return tuple(p for p in self.predicates if p.relations <= inside)

    def is_connected(self) -> bool:
        """Whether the predicate graph spans all relations.

        Disconnected graphs force cross products, which the paper notes
        some optimizers exclude (Sec. 6.3.2: ``P = J`` is the practical
        lower bound on predicate counts).
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.relation_names)
        g.add_edges_from((p.first, p.second) for p in self.predicates)
        return nx.is_connected(g)

    def validate_permutation(self, order: Sequence[str]) -> None:
        """Check that ``order`` is a permutation of the relations."""
        if sorted(order) != sorted(self.relation_names):
            raise ProblemError(
                f"{list(order)} is not a permutation of {list(self.relation_names)}"
            )
