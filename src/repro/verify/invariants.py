"""Reusable invariant checkers for the differential-verification harness.

Every checker is a pure predicate over repository data structures that
returns a list of :class:`Violation` records (empty = invariant holds).
The same checkers back three consumers:

* the differential runner (:mod:`repro.verify.runner`), which sweeps
  them over the seeded instance corpus;
* pytest (``tests/test_verify.py``), which asserts they pass on the
  corpus and that they *fail* when a bug is planted;
* ad-hoc debugging — each checker is importable and self-contained.

Catalog
-------
==============================  ========================================
``ising-round-trip``            ``to_ising`` → ``from_ising`` → binary
                                preserves energies exactly
``qubo-round-trip``             ``to_qubo`` → ``from_qubo`` preserves
                                energies exactly
``fix-variable-conservation``   ``fix_variable`` folds the eliminated
                                variable's contribution into the offset
``matrix-energy``               dense ``x^T Q x + c`` matches
                                :meth:`BinaryQuadraticModel.energy`
``compiled-energy-consistency``  the array-compiled kernels
                                (:func:`repro.qubo.compiled.compile_bqm`)
                                agree with the dict model: vectorized
                                and bit-compatible energies row-by-row,
                                and incremental flip deltas against a
                                full recompute
``decode-cost-consistency``     decoded-plan cost ↔ raw-bitstring BQM
                                energy (MQO Eq. 29; direct join QUBO
                                surrogate objective)
``sql-plan-consistency``        the SQL front door's two cost paths
                                agree: C_out on the extracted query
                                graph equals the cost recomputed from
                                the relational-algebra tree
                                (:func:`repro.sql.cost_from_plan`)
``routing-regret``              the deadline-aware router never leads
                                with a stage whose predicted runtime
                                blows the deadline while a predicted-
                                feasible candidate exists
``shard-reconciliation``        merging independently annealed shards
                                ends with a reconciled assignment: never
                                worse than the naive concatenation, never
                                worse than a reference boundary pass, and
                                with no improving single frontier flip
``transpile-equivalence``       transpiled circuits implement the same
                                statevector (up to global phase and the
                                tracked layout permutation)
``embedding-validity``          chains are non-empty, connected,
                                disjoint, and cover every interaction
==============================  ========================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Sequence

import numpy as np

from repro.qubo.bqm import BinaryQuadraticModel, Vartype

__all__ = [
    "Violation",
    "random_assignments",
    "random_circuit",
    "check_ising_round_trip",
    "check_qubo_round_trip",
    "check_fix_variable_conservation",
    "check_matrix_energy",
    "check_compiled_energy_consistency",
    "check_mqo_decode_consistency",
    "check_join_decode_consistency",
    "check_sql_plan_consistency",
    "check_routing_feasibility",
    "check_shard_reconciliation",
    "check_transpile_equivalence",
    "check_embedding_validity",
]

#: absolute tolerance for energy comparisons (models here carry
#: coefficients well below 1e6, so 1e-6 leaves ~9 digits of slack)
ENERGY_ATOL = 1e-6
ENERGY_RTOL = 1e-9


@dataclass(frozen=True)
class Violation:
    """One invariant failure, self-describing and JSON-serializable."""

    invariant: str
    subject: str
    message: str
    details: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        """The one-line form used by CLI error output."""
        return f"invariant '{self.invariant}' violated by {self.subject}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "invariant": self.invariant,
            "subject": self.subject,
            "message": self.message,
            "details": dict(self.details),
        }


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=ENERGY_RTOL, abs_tol=ENERGY_ATOL)


def random_assignments(
    bqm: BinaryQuadraticModel, count: int, seed: int
) -> List[Dict[Hashable, int]]:
    """Deterministic random assignments plus the two constant corners."""
    lo, hi = bqm.vartype.values
    variables = list(bqm.variables)
    rng = np.random.default_rng(seed)
    samples = [dict.fromkeys(variables, lo), dict.fromkeys(variables, hi)]
    for _ in range(max(0, count - 2)):
        values = rng.choice((lo, hi), size=len(variables))
        samples.append({v: int(values[i]) for i, v in enumerate(variables)})
    return samples


# ----------------------------------------------------------------------
# QUBO encoding round-trips
# ----------------------------------------------------------------------
def check_ising_round_trip(
    bqm: BinaryQuadraticModel,
    samples: Sequence[Mapping[Hashable, int]],
    subject: str = "bqm",
    j_scale: float = 1.0,
) -> List[Violation]:
    """``to_ising`` → ``from_ising`` → original vartype preserves energy.

    ``j_scale`` exists for harness self-tests: scaling the couplings in
    transit plants the exact class of bug this invariant exists to
    catch (a dropped factor in the QUBO↔Ising substitution).
    """
    violations: List[Violation] = []
    h, j, offset = bqm.to_ising()
    if j_scale != 1.0:
        j = {pair: bias * j_scale for pair, bias in j.items()}
    spin = BinaryQuadraticModel.from_ising(h, j, offset)
    back = spin.change_vartype(bqm.vartype)
    for index, sample in enumerate(samples):
        direct = bqm.energy(sample)
        if bqm.vartype is Vartype.BINARY:
            spin_sample = {v: 2 * int(x) - 1 for v, x in sample.items()}
        else:
            spin_sample = dict(sample)
        via_spin = spin.energy(spin_sample)
        via_back = back.energy(sample)
        if not _close(direct, via_spin) or not _close(direct, via_back):
            violations.append(
                Violation(
                    invariant="ising-round-trip",
                    subject=subject,
                    message=(
                        f"energy {direct:.9g} became {via_spin:.9g} (spin) / "
                        f"{via_back:.9g} (round-trip) on sample {index}"
                    ),
                    details={
                        "sample_index": index,
                        "direct": direct,
                        "via_spin": via_spin,
                        "via_round_trip": via_back,
                    },
                )
            )
    return violations


def check_qubo_round_trip(
    bqm: BinaryQuadraticModel,
    samples: Sequence[Mapping[Hashable, int]],
    subject: str = "bqm",
) -> List[Violation]:
    """``to_qubo`` → ``from_qubo`` preserves binary energies exactly."""
    violations: List[Violation] = []
    q, offset = bqm.to_qubo()
    rebuilt = BinaryQuadraticModel.from_qubo(q, offset)
    binary = bqm.change_vartype(Vartype.BINARY)
    for index, sample in enumerate(samples):
        if bqm.vartype is Vartype.SPIN:
            sample = {v: (int(s) + 1) // 2 for v, s in sample.items()}
        direct = binary.energy(sample)
        # variables with all-zero biases may be dropped by to_qubo();
        # they contribute nothing, so restrict to rebuilt's variables
        reduced = {v: sample[v] for v in rebuilt.variables}
        via = rebuilt.energy(reduced)
        if not _close(direct, via):
            violations.append(
                Violation(
                    invariant="qubo-round-trip",
                    subject=subject,
                    message=(
                        f"energy {direct:.9g} became {via:.9g} after "
                        f"to_qubo/from_qubo on sample {index}"
                    ),
                    details={"sample_index": index, "direct": direct, "via": via},
                )
            )
    return violations


def check_fix_variable_conservation(
    bqm: BinaryQuadraticModel,
    samples: Sequence[Mapping[Hashable, int]],
    subject: str = "bqm",
) -> List[Violation]:
    """``fix_variable`` conserves ``energy(s) == energy(s | fixed)``.

    The eliminated variable's linear and incident quadratic
    contributions must be folded into the reduced model's offset and
    linear terms, so for every assignment agreeing with the fixed
    value the full and reduced energies coincide.
    """
    violations: List[Violation] = []
    for v in bqm.variables:
        for value in bqm.vartype.values:
            reduced = bqm.copy()
            reduced.fix_variable(v, value)
            for index, sample in enumerate(samples):
                full = bqm.energy({**sample, v: value})
                rest = {u: x for u, x in sample.items() if u != v}
                partial = reduced.energy(rest)
                if not _close(full, partial):
                    violations.append(
                        Violation(
                            invariant="fix-variable-conservation",
                            subject=subject,
                            message=(
                                f"fixing {v!r}={value} changed energy "
                                f"{full:.9g} -> {partial:.9g} on sample {index}"
                            ),
                            details={
                                "variable": str(v),
                                "value": value,
                                "sample_index": index,
                                "full": full,
                                "reduced": partial,
                            },
                        )
                    )
                    break  # one witness per (variable, value) is enough
    return violations


def check_matrix_energy(
    bqm: BinaryQuadraticModel,
    samples: Sequence[Mapping[Hashable, int]],
    subject: str = "bqm",
) -> List[Violation]:
    """Dense ``x^T Q x + offset`` agrees with :meth:`energy`."""
    violations: List[Violation] = []
    q, offset, order = bqm.to_numpy_matrix()
    binary = bqm.change_vartype(Vartype.BINARY)
    for index, sample in enumerate(samples):
        if bqm.vartype is Vartype.SPIN:
            sample = {v: (int(s) + 1) // 2 for v, s in sample.items()}
        x = np.array([sample[v] for v in order], dtype=float)
        dense = float(x @ q @ x) + offset
        direct = binary.energy(sample)
        if not _close(dense, direct):
            violations.append(
                Violation(
                    invariant="matrix-energy",
                    subject=subject,
                    message=(
                        f"dense matrix energy {dense:.9g} != {direct:.9g} "
                        f"on sample {index}"
                    ),
                    details={"sample_index": index, "dense": dense, "direct": direct},
                )
            )
    return violations


def check_compiled_energy_consistency(
    bqm: BinaryQuadraticModel,
    samples: Sequence[Mapping[Hashable, int]],
    subject: str = "bqm",
    drop_interaction: bool = False,
    num_flips: int = 32,
    seed: int = 0,
) -> List[Violation]:
    """The compiled kernels agree with the dict model they were built from.

    Three sub-checks over :func:`repro.qubo.compiled.compile_bqm`:

    1. vectorized ``energies(S)`` matches :meth:`BinaryQuadraticModel.energy`
       row-by-row within tolerance;
    2. ``energies_compat(S)`` matches it **bit-exactly** (that is the
       contract the seed-compatibility fixtures rely on);
    3. incremental flip deltas (``local_fields`` + ``apply_flip``) track
       a full recompute through a random flip sequence.

    ``drop_interaction`` plants the classic miscompilation bug for
    harness self-tests — the last quadratic term (or, for purely linear
    models, part of the first linear bias) is silently dropped from the
    compiled form while the dict model keeps it.
    """
    from repro.qubo.compiled import compile_bqm

    violations: List[Violation] = []
    source = bqm
    if drop_interaction:
        edges = list(bqm.interactions())
        if edges:
            quadratic = {(u, v): bias for u, v, bias in edges[:-1]}
        else:
            quadratic = {}
        linear = bqm.linear
        if not edges and linear:
            first = next(iter(linear))
            linear[first] = linear[first] + 1.0
        source = BinaryQuadraticModel(
            linear, quadratic, offset=bqm.offset, vartype=bqm.vartype
        )
    compiled = compile_bqm(source)

    states = compiled.states_matrix(samples)
    fast = compiled.energies(states)
    compat = compiled.energies_compat(states)
    for index, sample in enumerate(samples):
        direct = bqm.energy(sample)
        if not _close(float(fast[index]), direct):
            violations.append(
                Violation(
                    invariant="compiled-energy-consistency",
                    subject=subject,
                    message=(
                        f"vectorized energy {float(fast[index]):.9g} != "
                        f"dict energy {direct:.9g} on sample {index}"
                    ),
                    details={
                        "sample_index": index,
                        "compiled": float(fast[index]),
                        "direct": direct,
                        "evaluator": "energies",
                    },
                )
            )
        if float(compat[index]) != direct:
            violations.append(
                Violation(
                    invariant="compiled-energy-consistency",
                    subject=subject,
                    message=(
                        f"compat energy {float(compat[index]):.17g} is not "
                        f"bit-identical to dict energy {direct:.17g} on "
                        f"sample {index}"
                    ),
                    details={
                        "sample_index": index,
                        "compiled": float(compat[index]),
                        "direct": direct,
                        "evaluator": "energies_compat",
                    },
                )
            )

    # incremental deltas vs full recompute over a random flip walk
    if states.shape[0] and compiled.num_variables:
        rng = np.random.default_rng(seed)
        fields = compiled.local_fields(states)
        running = compiled.energies(states).copy()
        n = compiled.num_variables
        for step in range(num_flips):
            row = int(rng.integers(states.shape[0]))
            i = int(rng.integers(n))
            value = states[row, i]
            if compiled.vartype is Vartype.SPIN:
                delta = -2.0 * value * fields[row, i]
            else:
                delta = (1.0 - 2.0 * value) * fields[row, i]
            compiled.apply_flip(states, fields, row, i)
            running[row] += delta
            full = float(compiled.energies(states[row])[0])
            if not _close(float(running[row]), full):
                violations.append(
                    Violation(
                        invariant="compiled-energy-consistency",
                        subject=subject,
                        message=(
                            f"delta-energy drift after flip {step}: running "
                            f"{float(running[row]):.9g} != recomputed {full:.9g}"
                        ),
                        details={
                            "flip_index": step,
                            "row": row,
                            "variable_index": i,
                            "running": float(running[row]),
                            "recomputed": full,
                        },
                    )
                )
                break
    return violations


# ----------------------------------------------------------------------
# Decoded plan ↔ raw bitstring consistency
# ----------------------------------------------------------------------
def check_mqo_decode_consistency(
    problem,
    builder,
    bqm: BinaryQuadraticModel,
    samples: Sequence[Mapping[str, int]],
    subject: str = "mqo",
    cost_shift: float = 0.0,
) -> List[Violation]:
    """MQO: valid decodes satisfy ``E == cost − ω_L · |Q|`` (Eq. 29).

    For a one-plan-per-query selection the penalty terms vanish
    (``E_M = 0``) and the reward term is the constant ``−ω_L · |Q|``,
    so the QUBO energy of the raw bitstring and the decoded plan's
    execution cost must differ by exactly that constant.  ``cost_shift``
    plants a bug for harness self-tests.
    """
    violations: List[Violation] = []
    offset = builder.weight_l() * problem.num_queries
    for index, sample in enumerate(samples):
        solution = builder.decode(sample)
        if not solution.valid:
            continue
        energy = bqm.energy(sample)
        cost = solution.cost + cost_shift
        if not _close(energy, cost - offset):
            violations.append(
                Violation(
                    invariant="decode-cost-consistency",
                    subject=subject,
                    message=(
                        f"QUBO energy {energy:.9g} != decoded cost "
                        f"{cost:.9g} - w_L*|Q| ({offset:.9g}) on sample {index}"
                    ),
                    details={
                        "sample_index": index,
                        "energy": energy,
                        "cost": cost,
                        "reward_offset": offset,
                    },
                )
            )
    return violations


def check_join_decode_consistency(
    builder,
    bqm: BinaryQuadraticModel,
    orders: Sequence[Sequence[str]],
    subject: str = "join_order",
    cost_shift: float = 0.0,
) -> List[Violation]:
    """Direct join QUBO: a valid permutation's energy equals the
    log-domain surrogate objective the encoding minimises.

    At a valid permutation every one-hot penalty is zero, so the raw
    bitstring's energy must equal
    :meth:`DirectJoinOrderQubo.surrogate_objective` of the decoded
    order exactly.
    """
    from repro.joinorder.direct_qubo import variable_name

    violations: List[Violation] = []
    names = builder.graph.relation_names
    for index, order in enumerate(orders):
        sample = {
            variable_name(r, pos): 0
            for r in names
            for pos in range(len(names))
        }
        for pos, r in enumerate(order):
            sample[variable_name(r, pos)] = 1
        energy = bqm.energy(sample)
        surrogate = builder.surrogate_objective(list(order)) + cost_shift
        if not _close(energy, surrogate):
            violations.append(
                Violation(
                    invariant="decode-cost-consistency",
                    subject=subject,
                    message=(
                        f"QUBO energy {energy:.9g} != surrogate objective "
                        f"{surrogate:.9g} for order {' >> '.join(order)}"
                    ),
                    details={
                        "order": list(order),
                        "energy": energy,
                        "surrogate": surrogate,
                    },
                )
            )
    return violations


# ----------------------------------------------------------------------
# SQL front door: two independent cost paths must agree
# ----------------------------------------------------------------------
def check_sql_plan_consistency(
    sql_plan,
    orders: Sequence[Sequence[str]],
    subject: str = "sql",
    drift: float = 1.0,
) -> List[Violation]:
    """SQL pipeline: graph-path and algebra-path costs coincide.

    For a derived :class:`~repro.sql.SqlPlan` and any join order, the
    C_out cost computed on the *extracted query graph*
    (:func:`repro.joinorder.cost.cout_cost`) must equal the cost
    recomputed *directly from the relational-algebra tree*
    (:func:`repro.sql.cost_from_plan`) — the two paths share only the
    bound query, so any selectivity/cardinality estimator divergence
    between extraction and algebra shows up here.

    ``drift`` scales the algebra path's join selectivities and exists
    for harness self-tests: ``drift != 1.0`` simulates exactly the
    estimator-drift bug class this invariant catches.
    """
    from repro.joinorder.cost import cout_cost
    from repro.sql import cost_from_plan

    violations: List[Violation] = []
    for index, order in enumerate(orders):
        via_graph = cout_cost(sql_plan.graph, list(order))
        via_algebra = cost_from_plan(
            sql_plan.bound, sql_plan.optimized, list(order),
            selectivity_scale=drift,
        )
        if not math.isclose(via_graph, via_algebra, rel_tol=1e-9, abs_tol=1e-9):
            violations.append(
                Violation(
                    invariant="sql-plan-consistency",
                    subject=subject,
                    message=(
                        f"graph-path cost {via_graph:.9g} != algebra-path "
                        f"cost {via_algebra:.9g} for order "
                        f"{' >> '.join(order)}"
                    ),
                    details={
                        "order": list(order),
                        "order_index": index,
                        "via_graph": via_graph,
                        "via_algebra": via_algebra,
                        "sql": sql_plan.query.sql,
                    },
                )
            )
    return violations


# ----------------------------------------------------------------------
# Deadline-aware routing
# ----------------------------------------------------------------------
def check_routing_feasibility(
    features,
    deadlines_ms: Sequence[float],
    subject: str = "routing",
    optimism: float = 1.0,
) -> List[Violation]:
    """``routing-regret``: the router must lead with a feasible stage.

    For every deadline, a fresh :class:`repro.routing.RoutingPolicy`
    (priors only, ``optimism`` applied) decides a chain for
    ``features``; an *unscaled* reference model then judges the
    decision.  Whenever at least one candidate's true predicted
    runtime fits the deadline, the chain's first stage must be one of
    them — leading with a predicted-infeasible stage is regret the
    router could have avoided.  Predictions must also be finite and
    non-negative and every stage weight positive.

    ``optimism != 1.0`` exists for harness self-tests: scaling the fit
    test optimistic (``< 1``) plants exactly the over-eager-router bug
    class this invariant catches (``--inject router``).
    """
    from repro.routing import RoutingPolicy, default_cost_model

    reference = default_cost_model()
    router = RoutingPolicy(model=default_cost_model(), optimism=optimism)
    violations: List[Violation] = []
    for deadline_ms in deadlines_ms:
        decision = router.decide(features, deadline_ms)
        for solver, predicted in decision.predicted_ms:
            if not math.isfinite(predicted) or predicted < 0.0:
                violations.append(
                    Violation(
                        invariant="routing-prediction-sanity",
                        subject=subject,
                        message=(
                            f"predicted runtime for {solver} is {predicted!r}, "
                            "expected finite and non-negative"
                        ),
                        details={"solver": solver, "deadline_ms": deadline_ms},
                    )
                )
        if any(spec.weight <= 0 for spec in decision.policy):
            violations.append(
                Violation(
                    invariant="routing-prediction-sanity",
                    subject=subject,
                    message="routed chain contains a non-positive stage weight",
                    details={"deadline_ms": deadline_ms},
                )
            )
        true_ms = {
            spec.solver: reference.predict_runtime_ms(
                spec.solver, features.kind, features
            )
            for spec in router.candidates
        }
        feasible = sorted(
            solver
            for solver, predicted in true_ms.items()
            if predicted <= deadline_ms + ENERGY_ATOL
        )
        first = decision.policy[0].solver
        if feasible and true_ms[first] > deadline_ms + ENERGY_ATOL:
            violations.append(
                Violation(
                    invariant="routing-regret",
                    subject=subject,
                    message=(
                        f"router leads with {first} (predicted "
                        f"{true_ms[first]:.3g} ms) for a {deadline_ms:g} ms "
                        f"deadline although {', '.join(feasible)} fit(s)"
                    ),
                    details={
                        "deadline_ms": deadline_ms,
                        "first_stage": first,
                        "predicted_ms": true_ms,
                        "feasible": feasible,
                    },
                )
            )
    return violations


# ----------------------------------------------------------------------
# Fleet sharding: merged shards must be boundary-reconciled
# ----------------------------------------------------------------------
def check_shard_reconciliation(
    bqm: BinaryQuadraticModel,
    seed: int = 0,
    subject: str = "shard",
    block_size: int = 8,
    incumbents: int = 3,
    fleet_size: int = 2,
    reconcile: bool = True,
) -> List[Violation]:
    """``shard-reconciliation``: merged fleet shards end reconciled.

    Models the fleet solver's merge step end to end: partition the
    variables into blocks, clamp each block's subproblem against a
    random incumbent, anneal the shards on an
    :class:`repro.annealers.AnnealerFleet`, patch every shard into the
    incumbent (the naive concatenation), then run the production
    boundary pass.  The accepted assignment must

    1. never be worse than the naive concatenation it started from,
    2. never be worse than a reference :func:`reconcile_boundary` run
       on the same merge, and
    3. admit no improving single flip on any *frontier* variable
       (one coupled across shards) — the post-condition of the pass's
       final clamped descent.

    ``reconcile=False`` exists for harness self-tests: skipping the
    boundary pass is exactly the planted bug behind
    ``--inject shard``.
    """
    from repro.annealers import AnnealerFleet
    from repro.hybrid import frontier_variables, reconcile_boundary
    from repro.hybrid.decomposer import clamp_subproblem

    violations: List[Violation] = []
    variables = sorted(bqm.variables, key=str)
    if len(variables) < 4:
        return violations
    size = max(2, min(int(block_size), (len(variables) + 1) // 2))
    blocks = [variables[i : i + size] for i in range(0, len(variables), size)]
    frontier = frontier_variables(bqm, blocks)
    fleet = AnnealerFleet.homogeneous(fleet_size)
    lo, hi = bqm.vartype.values
    rng = np.random.default_rng(seed)

    for index in range(int(incumbents)):
        values = rng.choice((lo, hi), size=len(variables))
        incumbent = {v: int(values[i]) for i, v in enumerate(variables)}
        shards = [clamp_subproblem(bqm, block, incumbent) for block in blocks]
        naive: Dict[Hashable, int] = dict(incumbent)
        for shard_sample, _ in fleet.dispatch(shards, seed):
            naive.update(shard_sample)
        naive_energy = bqm.energy(naive)
        reference, reference_energy = reconcile_boundary(
            bqm, naive, frontier, seed=seed
        )
        if reconcile:
            final, final_energy = reference, reference_energy
        else:
            final, final_energy = naive, naive_energy

        if final_energy > naive_energy + ENERGY_ATOL:
            violations.append(
                Violation(
                    invariant="shard-reconciliation",
                    subject=subject,
                    message=(
                        f"merged assignment at {final_energy:.9g} is worse "
                        f"than the naive shard concatenation "
                        f"{naive_energy:.9g} on incumbent {index}"
                    ),
                    details={
                        "incumbent_index": index,
                        "final": final_energy,
                        "naive": naive_energy,
                    },
                )
            )
        if final_energy > reference_energy + ENERGY_ATOL:
            violations.append(
                Violation(
                    invariant="shard-reconciliation",
                    subject=subject,
                    message=(
                        f"accepted merge at {final_energy:.9g} misses the "
                        f"boundary pass's {reference_energy:.9g} on "
                        f"incumbent {index} — frontier was not reconciled"
                    ),
                    details={
                        "incumbent_index": index,
                        "final": final_energy,
                        "reconciled": reference_energy,
                        "frontier_size": len(frontier),
                    },
                )
            )
        for v in frontier:
            flipped = dict(final)
            flipped[v] = lo + hi - int(flipped[v])
            flipped_energy = bqm.energy(flipped)
            if flipped_energy < final_energy - ENERGY_ATOL:
                violations.append(
                    Violation(
                        invariant="shard-reconciliation",
                        subject=subject,
                        message=(
                            f"flipping frontier variable {v!r} improves the "
                            f"accepted merge {final_energy:.9g} -> "
                            f"{flipped_energy:.9g} on incumbent {index}"
                        ),
                        details={
                            "incumbent_index": index,
                            "variable": str(v),
                            "final": final_energy,
                            "flipped": flipped_energy,
                        },
                    )
                )
                break  # one witness flip per incumbent is enough
    return violations


# ----------------------------------------------------------------------
# Transpiled-circuit equivalence
# ----------------------------------------------------------------------
def random_circuit(num_qubits: int, depth: int, seed: int):
    """A deterministic random circuit over the full gate vocabulary.

    Mixes the gates the QAOA/VQE ansaetze actually emit (h, rx, ry,
    rz, rzz, cx) with the rest of the standard set so the basis
    translator and peephole optimizer are both exercised.
    """
    from repro.gate.circuit import QuantumCircuit

    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits, name=f"random-{num_qubits}x{depth}")
    one_q = ("h", "x", "s", "t", "sx", "rx", "ry", "rz")
    two_q = ("cx", "cz", "swap", "rzz")
    for _ in range(depth):
        for q in range(num_qubits):
            name = one_q[int(rng.integers(len(one_q)))]
            if name in ("rx", "ry", "rz"):
                getattr(qc, name)(float(rng.uniform(-math.pi, math.pi)), q)
            else:
                getattr(qc, name)(q)
        if num_qubits >= 2:
            pairs = rng.permutation(num_qubits)
            for i in range(0, num_qubits - 1, 2):
                a, b = int(pairs[i]), int(pairs[i + 1])
                name = two_q[int(rng.integers(len(two_q)))]
                if name == "rzz":
                    qc.rzz(float(rng.uniform(-math.pi, math.pi)), a, b)
                else:
                    getattr(qc, name)(a, b)
    return qc


def _statevector_matches(
    actual: np.ndarray, expected: np.ndarray, atol: float = 1e-7
) -> bool:
    """Equality up to global phase via the phase of the largest amplitude."""
    pivot = int(np.argmax(np.abs(expected)))
    if abs(expected[pivot]) < 1e-12:
        return bool(np.allclose(actual, expected, atol=atol))
    phase = actual[pivot] / expected[pivot]
    if not math.isclose(abs(phase), 1.0, abs_tol=1e-6):
        return False
    return bool(np.allclose(actual, phase * expected, atol=atol))


def check_transpile_equivalence(
    circuit,
    coupling_map=None,
    seed: int = 0,
    optimization_level: int = 1,
    subject: str = "circuit",
) -> List[Violation]:
    """A transpiled circuit implements the original statevector.

    On an all-to-all target this exercises basis translation and the
    peephole optimizer directly.  On a constrained topology the
    layout/routing stages are replayed with explicit layout tracking:
    logical qubit ``q`` starts at ``initial_layout(q)`` and, after the
    inserted swaps, ends at ``final_layout(q)``; the transpiled state
    must equal the original state transported along that permutation
    with every ancilla qubit left in ``|0>`` — all up to global phase.
    """
    from repro.gate.statevector import Statevector
    from repro.gate.topologies import full_coupling_map
    from repro.gate.transpiler.basis import decompose_to_basis
    from repro.gate.transpiler.layout import dense_layout
    from repro.gate.transpiler.optimize import optimize_circuit
    from repro.gate.transpiler.routing import sabre_route

    violations: List[Violation] = []
    reference = Statevector.from_circuit(circuit).data

    if coupling_map is None or coupling_map.is_fully_connected():
        coupling_map = full_coupling_map(circuit.num_qubits)
        transpiled = optimize_circuit(
            decompose_to_basis(circuit), level=optimization_level
        )
        actual = Statevector.from_circuit(transpiled).data
        expected = reference
        mapping = {q: q for q in range(circuit.num_qubits)}
    else:
        rng = np.random.default_rng(seed)
        layout = dense_layout(circuit, coupling_map, rng)
        routed, final_layout = sabre_route(circuit, coupling_map, layout, rng)
        transpiled = optimize_circuit(
            decompose_to_basis(routed), level=optimization_level
        )
        actual = Statevector.from_circuit(transpiled).data
        mapping = {q: final_layout.physical(q) for q in range(circuit.num_qubits)}
        expected = np.zeros(1 << coupling_map.num_qubits, dtype=complex)
        for index in range(reference.size):
            physical = 0
            for q in range(circuit.num_qubits):
                if (index >> q) & 1:
                    physical |= 1 << mapping[q]
            expected[physical] = reference[index]

    if not _statevector_matches(actual, expected):
        overlap = float(abs(np.vdot(expected, actual)))
        violations.append(
            Violation(
                invariant="transpile-equivalence",
                subject=subject,
                message=(
                    f"transpiled statevector deviates from the original "
                    f"(|<expected|actual>| = {overlap:.6f})"
                ),
                details={
                    "overlap": overlap,
                    "num_qubits": circuit.num_qubits,
                    "target_qubits": coupling_map.num_qubits,
                    "final_layout": {str(k): v for k, v in mapping.items()},
                },
            )
        )
    return violations


# ----------------------------------------------------------------------
# Embedding-chain validity
# ----------------------------------------------------------------------
def check_embedding_validity(
    source, target, embedding, subject: str = "embedding"
) -> List[Violation]:
    """Chains are non-empty, connected, disjoint and cover every edge.

    A finer-grained version of :meth:`EmbeddingResult.is_valid` that
    names the broken chain or uncovered interaction instead of
    returning a bare boolean.
    """
    import networkx as nx

    violations: List[Violation] = []
    if embedding is None:
        return [
            Violation(
                invariant="embedding-validity",
                subject=subject,
                message="no embedding was found for a feasible source/target pair",
                details={
                    "source_nodes": source.number_of_nodes(),
                    "target_nodes": target.number_of_nodes(),
                },
            )
        ]
    chains = embedding.chains
    used: Dict[int, Hashable] = {}
    for node, chain in chains.items():
        if not chain:
            violations.append(
                Violation(
                    invariant="embedding-validity",
                    subject=subject,
                    message=f"logical node {node!r} has an empty chain",
                    details={"node": str(node)},
                )
            )
            continue
        missing = [q for q in chain if q not in target]
        if missing:
            violations.append(
                Violation(
                    invariant="embedding-validity",
                    subject=subject,
                    message=f"chain of {node!r} uses non-target qubits {missing}",
                    details={"node": str(node), "missing": list(missing)},
                )
            )
            continue
        for q in chain:
            if q in used:
                violations.append(
                    Violation(
                        invariant="embedding-validity",
                        subject=subject,
                        message=(
                            f"physical qubit {q} reused across chains "
                            f"{used[q]!r} and {node!r}"
                        ),
                        details={"qubit": q, "first": str(used[q]), "second": str(node)},
                    )
                )
            used.setdefault(q, node)
        if not nx.is_connected(target.subgraph(chain)):
            violations.append(
                Violation(
                    invariant="embedding-validity",
                    subject=subject,
                    message=f"chain of {node!r} is not connected in the target",
                    details={"node": str(node), "chain": list(chain)},
                )
            )
    for a, b in source.edges:
        if a == b or a not in chains or b not in chains:
            continue
        chain_a, chain_b = set(chains[a]), set(chains[b])
        if not any(target.has_edge(p, q) for p in chain_a for q in chain_b):
            violations.append(
                Violation(
                    invariant="embedding-validity",
                    subject=subject,
                    message=(
                        f"interaction ({a!r}, {b!r}) has no physical coupler "
                        "between its chains"
                    ),
                    details={"edge": [str(a), str(b)]},
                )
            )
    return violations
