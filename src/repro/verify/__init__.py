"""Cross-solver differential verification (``python -m repro verify``).

Three layers:

* :mod:`repro.verify.oracle` — exact ground truth (brute-force QUBO
  minima, exhaustive domain optima) with content-addressed caching;
* :mod:`repro.verify.invariants` — reusable invariant predicates
  (encoding round-trips, decode consistency, transpile equivalence,
  embedding validity) shared between the sweep and the pytest suite;
* :mod:`repro.verify.runner` — the differential sweep over every
  registry solver and the service fallback chain, fanned out through
  :func:`repro.harness.run_grid`.

See ``docs/testing.md`` for the invariant catalog and how to get a
new solver into the sweep.
"""

from repro.verify.corpus import SUITES, BuiltCase, Case, build_case, build_corpus
from repro.verify.invariants import (
    Violation,
    check_compiled_energy_consistency,
    check_embedding_validity,
    check_fix_variable_conservation,
    check_ising_round_trip,
    check_join_decode_consistency,
    check_matrix_energy,
    check_mqo_decode_consistency,
    check_qubo_round_trip,
    check_routing_feasibility,
    check_shard_reconciliation,
    check_transpile_equivalence,
    random_assignments,
    random_circuit,
)
from repro.verify.oracle import DEFAULT_ENERGY_LIMIT, bqm_fingerprint, compute_oracle
from repro.verify.report import SolverSummary, VerificationReport, summarize
from repro.verify.runner import INJECTABLE_BUGS, run_verification, sweep_solver_names

__all__ = [
    "BuiltCase",
    "Case",
    "DEFAULT_ENERGY_LIMIT",
    "INJECTABLE_BUGS",
    "SUITES",
    "SolverSummary",
    "VerificationReport",
    "Violation",
    "bqm_fingerprint",
    "build_case",
    "build_corpus",
    "check_compiled_energy_consistency",
    "check_embedding_validity",
    "check_fix_variable_conservation",
    "check_ising_round_trip",
    "check_join_decode_consistency",
    "check_matrix_energy",
    "check_mqo_decode_consistency",
    "check_qubo_round_trip",
    "check_routing_feasibility",
    "check_shard_reconciliation",
    "check_transpile_equivalence",
    "compute_oracle",
    "random_assignments",
    "random_circuit",
    "run_verification",
    "summarize",
    "sweep_solver_names",
]
