"""Exact ground truth for small verification instances.

The oracle computes, per corpus case:

* the **ground energy** of the case's QUBO by brute-force enumeration
  (:func:`repro.qubo.exact.brute_force_minimum`) when the model is at
  most :data:`DEFAULT_ENERGY_LIMIT` variables;
* the **domain optimum** — exhaustive MQO plan selection (cheapest
  cost, Eq. 25) or the cheapest ``C_out`` join permutation — which is
  defined even when the QUBO is too large to enumerate;
* for join ordering additionally the minimum of the direct encoding's
  **surrogate objective** over all permutations, which the QUBO ground
  energy must equal.

The computed record is cross-checked on the spot (the ground state
must decode to a *valid* plan, and the decoded optimum must agree with
the domain optimum), so a broken encoding is caught while the oracle
is being built, before any solver runs.

Records are cached content-addressed under ``results/.cache`` (the
harness :class:`~repro.harness.ResultCache`); the key hashes the BQM's
full coefficient table, so any encoding change automatically misses
the stale entry.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from typing import Any, Dict, List, Optional

from repro.harness import ResultCache, resolve_cache_dir
from repro.qubo.bqm import BinaryQuadraticModel
from repro.qubo.exact import brute_force_minimum
from repro.verify.invariants import Violation

__all__ = [
    "DEFAULT_ENERGY_LIMIT",
    "bqm_fingerprint",
    "compute_oracle",
]

#: largest model the energy oracle will enumerate (2^20 assignments)
DEFAULT_ENERGY_LIMIT = 20

#: largest join graph whose permutations are enumerated exhaustively
MAX_ORACLE_RELATIONS = 8

_ORACLE_EXPERIMENT = "verify_oracle"
_ENERGY_ATOL = 1e-6


def bqm_fingerprint(bqm: BinaryQuadraticModel) -> str:
    """Content hash of a model's complete coefficient table.

    Uses ``repr`` for floats so distinct coefficients never collide,
    and sorts terms so construction order is irrelevant.
    """
    payload = {
        "vartype": bqm.vartype.name,
        "offset": repr(bqm.offset),
        "linear": sorted((str(v), repr(b)) for v, b in bqm.linear.items()),
        "quadratic": sorted(
            (str(u), str(v), repr(b)) for (u, v), b in bqm.quadratic.items()
        ),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _oracle_mqo(problem, builder, bqm, energy_limit: int) -> Dict[str, Any]:
    """Exhaustive MQO optimum + (when feasible) QUBO ground truth."""
    from repro.mqo.solvers import solve_exhaustive

    record: Dict[str, Any] = {"violations": []}
    exact = solve_exhaustive(problem)
    record["cost"] = float(exact.cost)
    record["plan"] = {"selected_plans": list(exact.selected_plans)}

    if bqm.num_variables <= energy_limit:
        ground = brute_force_minimum(bqm)
        record["energy"] = float(ground.energy)
        decoded = builder.decode(dict(ground.sample))
        if not decoded.valid:
            record["violations"].append(
                Violation(
                    invariant="ground-state-validity",
                    subject="oracle:mqo",
                    message=(
                        "the QUBO ground state decodes to an invalid plan "
                        "selection (penalty weights too small?)"
                    ),
                    details={"energy": float(ground.energy)},
                ).to_dict()
            )
        elif abs(decoded.cost - exact.cost) > _ENERGY_ATOL:
            record["violations"].append(
                Violation(
                    invariant="oracle-cross-check",
                    subject="oracle:mqo",
                    message=(
                        f"QUBO ground state decodes to cost {decoded.cost:.9g} "
                        f"but the exhaustive optimum costs {exact.cost:.9g}"
                    ),
                    details={
                        "decoded_cost": float(decoded.cost),
                        "exhaustive_cost": float(exact.cost),
                    },
                ).to_dict()
            )
    return record


def _oracle_join(graph, builder, bqm, energy_limit: int) -> Dict[str, Any]:
    """Cheapest C_out permutation + minimum surrogate objective."""
    from repro.joinorder.cost import cout_cost

    record: Dict[str, Any] = {"violations": []}
    names = graph.relation_names
    best_cost: Optional[float] = None
    best_order: Optional[List[str]] = None
    best_surrogate: Optional[float] = None
    for perm in itertools.permutations(names):
        cost = cout_cost(graph, list(perm))
        if best_cost is None or cost < best_cost:
            best_cost, best_order = float(cost), list(perm)
        surrogate = builder.surrogate_objective(list(perm))
        if best_surrogate is None or surrogate < best_surrogate:
            best_surrogate = float(surrogate)
    record["cost"] = best_cost
    record["plan"] = {"order": best_order}
    record["surrogate"] = best_surrogate

    if bqm.num_variables <= energy_limit:
        ground = brute_force_minimum(bqm)
        record["energy"] = float(ground.energy)
        try:
            builder.decode(dict(ground.sample))
        except Exception:
            record["violations"].append(
                Violation(
                    invariant="ground-state-validity",
                    subject="oracle:join_order",
                    message=(
                        "the QUBO ground state is not a valid permutation "
                        "matrix (one-hot penalty too small?)"
                    ),
                    details={"energy": float(ground.energy)},
                ).to_dict()
            )
        else:
            if abs(ground.energy - best_surrogate) > _ENERGY_ATOL:
                record["violations"].append(
                    Violation(
                        invariant="oracle-cross-check",
                        subject="oracle:join_order",
                        message=(
                            f"ground energy {ground.energy:.9g} != minimum "
                            f"surrogate objective {best_surrogate:.9g}"
                        ),
                        details={
                            "ground_energy": float(ground.energy),
                            "min_surrogate": best_surrogate,
                        },
                    ).to_dict()
                )
    return record


def compute_oracle(
    case,
    energy_limit: int = DEFAULT_ENERGY_LIMIT,
    cache: bool = True,
    cache_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Ground truth for one corpus case, with content-addressed caching.

    Returns a JSON-ready record with (subsets of) the keys ``energy``
    (QUBO ground energy), ``cost`` (domain optimum), ``plan``,
    ``surrogate`` (join only) and ``violations`` (cross-check failures
    detected while building the record).
    """
    from repro.verify.corpus import build_case

    built = build_case(case)
    key_material = {
        "case": dict(case.params),
        "kind": case.kind,
        "bqm": bqm_fingerprint(built.bqm),
        "energy_limit": int(energy_limit),
    }
    key = hashlib.sha256(
        json.dumps(key_material, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()

    store = ResultCache(resolve_cache_dir(cache_dir)) if cache else None
    if store is not None:
        hit = store.get(_ORACLE_EXPERIMENT, key)
        if hit is not None and hit["rows"]:
            record = dict(hit["rows"][0])
            record["cached"] = True
            return record

    if case.kind == "mqo":
        record = _oracle_mqo(built.problem, built.builder, built.bqm, energy_limit)
    else:
        record = _oracle_join(built.problem, built.builder, built.bqm, energy_limit)
    record["num_variables"] = built.bqm.num_variables

    if store is not None:
        store.put(_ORACLE_EXPERIMENT, key, [record], 0.0, dict(case.params), 0)
    record = dict(record)
    record["cached"] = False
    return record
