"""Aggregation of differential-sweep rows into a report.

The JSON form (:meth:`VerificationReport.to_dict`) deliberately
excludes anything wall-clock — timings live only in the text rendering
— so a report for a fixed ``(suite, solvers, seed, inject)`` tuple is
byte-identical across runs and worker counts, and can be diffed or
snapshot-tested directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["SolverSummary", "VerificationReport", "summarize"]

_GAP_ATOL = 1e-9


@dataclass
class SolverSummary:
    """Per-solver aggregate over every case the solver ran on."""

    solver: str
    cases: int = 0
    valid: int = 0
    optimal: int = 0  # valid plans matching the domain-optimum cost
    violations: int = 0
    cost_gaps: List[float] = field(default_factory=list)
    energy_gaps: List[float] = field(default_factory=list)

    @property
    def invalid_rate(self) -> float:
        return 1.0 - self.valid / self.cases if self.cases else 0.0

    @property
    def mean_cost_gap(self) -> Optional[float]:
        if not self.cost_gaps:
            return None
        return sum(self.cost_gaps) / len(self.cost_gaps)

    @property
    def max_cost_gap(self) -> Optional[float]:
        return max(self.cost_gaps) if self.cost_gaps else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "solver": self.solver,
            "cases": self.cases,
            "valid": self.valid,
            "optimal": self.optimal,
            "invalid_rate": round(self.invalid_rate, 6),
            "mean_cost_gap": (
                None if self.mean_cost_gap is None else round(self.mean_cost_gap, 6)
            ),
            "max_cost_gap": (
                None if self.max_cost_gap is None else round(self.max_cost_gap, 6)
            ),
            "violations": self.violations,
        }


@dataclass
class VerificationReport:
    """Everything one ``repro verify`` run produced."""

    suite: str
    seed: int
    inject: str
    solvers: List[str]
    cases: List[str]
    rows: List[Dict[str, Any]]
    summaries: List[SolverSummary]
    violations: List[Dict[str, Any]]
    checks: int
    seconds: float  # total point time; NOT part of to_dict()

    @property
    def ok(self) -> bool:
        return not self.violations

    def first_violation(self) -> Optional[Dict[str, Any]]:
        return self.violations[0] if self.violations else None

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON form (no timings)."""
        return {
            "suite": self.suite,
            "seed": self.seed,
            "inject": self.inject,
            "ok": self.ok,
            "checks": self.checks,
            "solvers": list(self.solvers),
            "cases": list(self.cases),
            "summaries": [s.to_dict() for s in self.summaries],
            "violations": list(self.violations),
            "rows": list(self.rows),
        }

    def format_text(self) -> str:
        """Human-readable multi-line rendering."""
        lines = [
            f"verification suite={self.suite} seed={self.seed} "
            f"cases={len(self.cases)} checks={self.checks} "
            f"violations={len(self.violations)} ({self.seconds:.1f}s)"
        ]
        if self.inject != "none":
            lines.append(f"  injected bug: {self.inject}")
        header = (
            f"  {'solver':<12} {'cases':>5} {'valid':>5} {'optimal':>7} "
            f"{'inv-rate':>8} {'mean-gap':>9} {'max-gap':>9} {'viol':>5}"
        )
        lines.append(header)
        for s in self.summaries:
            mean_gap = "-" if s.mean_cost_gap is None else f"{s.mean_cost_gap:.4f}"
            max_gap = "-" if s.max_cost_gap is None else f"{s.max_cost_gap:.4f}"
            lines.append(
                f"  {s.solver:<12} {s.cases:>5} {s.valid:>5} {s.optimal:>7} "
                f"{s.invalid_rate:>8.2%} {mean_gap:>9} {max_gap:>9} "
                f"{s.violations:>5}"
            )
        for violation in self.violations:
            lines.append(
                "  VIOLATION: "
                f"invariant '{violation.get('invariant')}' violated by "
                f"{violation.get('subject')}: {violation.get('message')}"
            )
        return "\n".join(lines)


def _row_violations(row: Dict[str, Any]) -> List[Dict[str, Any]]:
    out = []
    for violation in row.get("violations", ()):
        entry = dict(violation)
        entry.setdefault("case_id", row.get("case_id"))
        out.append(entry)
    return out


def summarize(
    suite: str,
    seed: int,
    solvers: Sequence[str],
    cases: Sequence[str],
    rows: Sequence[Dict[str, Any]],
    inject: str,
    seconds: float,
) -> VerificationReport:
    """Fold sweep rows into per-solver summaries + a flat violation list."""
    by_solver: Dict[str, SolverSummary] = {}
    violations: List[Dict[str, Any]] = []
    checks = 0
    for row in rows:
        violations.extend(_row_violations(row))
        if row.get("type") in ("invariants", "gate", "sql", "routing", "shard"):
            checks += int(row.get("checks", 0))
            continue
        checks += 1
        name = row["solver"]
        summary = by_solver.setdefault(name, SolverSummary(solver=name))
        summary.cases += 1
        summary.violations += len(row.get("violations", ()))
        if row.get("valid"):
            summary.valid += 1
            cost = row.get("cost")
            oracle_cost = row.get("oracle_cost")
            if cost is not None and oracle_cost is not None:
                if cost <= oracle_cost + _GAP_ATOL:
                    summary.optimal += 1
                gap = row.get("cost_gap_rel")
                if gap is not None:
                    summary.cost_gaps.append(float(gap))
        gap = row.get("energy_gap")
        if gap is not None:
            summary.energy_gaps.append(float(gap))

    return VerificationReport(
        suite=suite,
        seed=seed,
        inject=inject,
        solvers=list(solvers),
        cases=list(cases),
        rows=list(rows),
        summaries=[by_solver[name] for name in sorted(by_solver)],
        violations=violations,
        checks=checks,
        seconds=seconds,
    )
