"""The differential sweep: every registry solver (and the service
fallback chain) against the oracle, over the seeded corpus.

Execution goes through :func:`repro.harness.run_grid`, so sweeps fan
out over processes with the same deterministic per-point seeding as
the experiment drivers: rows are bit-identical for any ``--workers``
value, which is what makes ``--json`` output diffable across runs.

Seven point types share one grid:

``solver``      one registry solver on one case — compares the
                reported energy against the recomputed sample energy,
                the oracle ground energy (lower bound; equality for
                ``exact``-capability solvers) and the domain-optimum
                cost (lower bound on any valid decoded plan)
``chain``       the service fallback chain (``repro.service.chain``)
                on one case under an ample deadline — the chain must
                return a valid plan and respect the same cost bound
``invariants``  the per-case invariant catalog: encoding round-trips,
                ``fix_variable`` conservation, decoded-plan ↔ raw-
                bitstring consistency, and embedding-chain validity of
                the case's interaction graph on a Chimera target
``gate``        transpiled-circuit statevector equivalence on random
                circuits, both all-to-all and line topologies
``sql``         the SQL front door on generated TPC-H-style queries —
                the C_out cost on the extracted join graph must equal
                the cost recomputed from the relational-algebra tree
                for random join orders (``sql-plan-consistency``)
``routing``     the deadline-aware router (:mod:`repro.routing`) on
                one case across a deadline sweep — the routed chain
                must lead with a predicted-feasible stage whenever one
                exists (``routing-regret``), with finite non-negative
                predictions and positive budget weights
``shard``       the fleet merge step (:mod:`repro.annealers` +
                :func:`repro.hybrid.reconcile_boundary`) on one case —
                shards annealed independently against a shared
                incumbent must merge into a reconciled assignment
                (``shard-reconciliation``): never worse than the naive
                concatenation or a reference boundary pass, and with
                no improving single frontier flip left

The ``inject`` parameter plants one of eight known bugs (an offset
shift, a mis-scaled Ising coupling, a shifted decoded cost, a
misreported solver energy, a dropped term in the array-compiled
kernels, drifted SQL join selectivities, an optimistic routing
cost model, or a skipped shard-boundary reconciliation) so the harness
can prove it catches each —
``python -m repro verify --inject offset`` must exit non-zero.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.harness import run_grid
from repro.verify.corpus import Case, build_case, build_corpus
from repro.verify.invariants import (
    Violation,
    check_compiled_energy_consistency,
    check_embedding_validity,
    check_fix_variable_conservation,
    check_ising_round_trip,
    check_join_decode_consistency,
    check_matrix_energy,
    check_mqo_decode_consistency,
    check_qubo_round_trip,
    check_transpile_equivalence,
    random_assignments,
    random_circuit,
)
from repro.verify.oracle import DEFAULT_ENERGY_LIMIT, compute_oracle
from repro.verify.report import VerificationReport, summarize

__all__ = [
    "INJECTABLE_BUGS",
    "run_verification",
    "sweep_solver_names",
]

_EXPERIMENT = "verify_differential"
_ENERGY_ATOL = 1e-6
_CHAIN_DEADLINE_S = 60.0

#: bugs the harness can plant in itself to prove it catches them
INJECTABLE_BUGS = (
    "none", "offset", "ising", "decode", "energy", "compiled", "sql", "router",
    "shard",
)

#: registry aliases to drop from the default sweep (same object twice)
_ALIASES = {"exhaustive"}

#: tighter variable caps than the solvers' own limits, keeping the
#: statevector solvers off cases where simulation would dominate the
#: sweep's wall-clock (2^n amplitudes per energy evaluation); ``exact``
#: is capped at the oracle's brute-force range, where its optimality
#: claim can actually be checked
_SWEEP_LIMITS = {"vqe": 10, "qaoa": 10, "exact-eigen": 16, "exact": 20}


def sweep_solver_names() -> List[str]:
    """Registry solvers included in a default sweep (aliases deduped)."""
    from repro.hybrid.registry import solver_names

    return [name for name in solver_names() if name not in _ALIASES]


def _case_variables(params: Dict[str, Any]) -> int:
    """QUBO size of a case from its parameters alone (no build)."""
    if "queries" in params:
        return int(params["queries"]) * int(params["ppq"])
    return int(params["relations"]) ** 2


def _case_from_params(params: Dict[str, Any]) -> Case:
    return Case(
        case_id=params["case_id"],
        kind=params["kind"],
        params=dict(params["case"]),
    )


def _oracle_record(params: Dict[str, Any]) -> Dict[str, Any]:
    return compute_oracle(
        _case_from_params(params),
        energy_limit=int(params["energy_limit"]),
        cache=bool(params["oracle_cache"]),
    )


def _energy_checks(
    solver_name: str,
    capabilities,
    reported_energy: float,
    sample_energy: Optional[float],
    oracle: Dict[str, Any],
) -> List[Violation]:
    """Reported-energy consistency + oracle energy bounds."""
    violations: List[Violation] = []
    if sample_energy is not None and abs(reported_energy - sample_energy) > _ENERGY_ATOL:
        violations.append(
            Violation(
                invariant="reported-energy-consistency",
                subject=solver_name,
                message=(
                    f"solver reported energy {reported_energy:.9g} but its "
                    f"sample evaluates to {sample_energy:.9g}"
                ),
                details={"reported": reported_energy, "recomputed": sample_energy},
            )
        )
    oracle_energy = oracle.get("energy")
    if oracle_energy is not None:
        energy = sample_energy if sample_energy is not None else reported_energy
        if energy < oracle_energy - _ENERGY_ATOL:
            violations.append(
                Violation(
                    invariant="oracle-energy-lower-bound",
                    subject=solver_name,
                    message=(
                        f"energy {energy:.9g} undercuts the exact ground "
                        f"energy {oracle_energy:.9g} — the encoding the solver "
                        "saw differs from the oracle's"
                    ),
                    details={"energy": energy, "oracle_energy": oracle_energy},
                )
            )
        if "exact" in capabilities and energy > oracle_energy + _ENERGY_ATOL:
            violations.append(
                Violation(
                    invariant="exact-solver-optimality",
                    subject=solver_name,
                    message=(
                        f"exact solver returned energy {energy:.9g} above the "
                        f"ground energy {oracle_energy:.9g}"
                    ),
                    details={"energy": energy, "oracle_energy": oracle_energy},
                )
            )
    return violations


def _cost_checks(
    subject: str, valid: bool, cost: Optional[float], oracle: Dict[str, Any]
) -> List[Violation]:
    """No valid plan may cost less than the domain optimum."""
    oracle_cost = oracle.get("cost")
    if not valid or cost is None or oracle_cost is None:
        return []
    if cost < oracle_cost - _ENERGY_ATOL:
        return [
            Violation(
                invariant="oracle-cost-lower-bound",
                subject=subject,
                message=(
                    f"valid plan costs {cost:.9g}, below the exhaustive "
                    f"optimum {oracle_cost:.9g}"
                ),
                details={"cost": cost, "oracle_cost": oracle_cost},
            )
        ]
    return []


def _solver_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Run one registry solver on one case and compare against oracle."""
    from repro.hybrid.registry import make_solver

    built = build_case(_case_from_params(params))
    oracle = _oracle_record(params)
    inject = params["inject"]
    bqm = built.bqm
    if inject == "offset":
        bqm = bqm.copy()
        bqm.offset -= 1.0

    solver = make_solver(params["solver"])
    result = solver.solve(bqm, seed=seed)
    reported_energy = float(result.energy)
    if inject == "energy":
        reported_energy -= 0.5
    sample_energy = float(bqm.energy(result.sample)) if result.sample else None

    violations = list(oracle.get("violations", ()))
    violations += [
        v.to_dict()
        for v in _energy_checks(
            params["solver"],
            solver.capabilities,
            reported_energy,
            sample_energy,
            oracle,
        )
    ]
    plan, cost, valid = built.adapter.decode(dict(result.sample))
    if valid and not built.adapter.validate(plan):
        violations.append(
            Violation(
                invariant="decode-validate-agreement",
                subject=params["solver"],
                message="decode reported a valid plan that validate() rejects",
                details={"plan": plan},
            ).to_dict()
        )
    violations += [
        v.to_dict() for v in _cost_checks(params["solver"], valid, cost, oracle)
    ]

    oracle_energy = oracle.get("energy")
    oracle_cost = oracle.get("cost")
    return {
        "type": "solver",
        "case_id": params["case_id"],
        "solver": params["solver"],
        "num_variables": bqm.num_variables,
        "energy": sample_energy if sample_energy is not None else reported_energy,
        "oracle_energy": oracle_energy,
        "energy_gap": (
            None
            if oracle_energy is None or sample_energy is None
            else sample_energy - oracle_energy
        ),
        "valid": bool(valid),
        "cost": None if not valid else float(cost),
        "oracle_cost": oracle_cost,
        "cost_gap_rel": (
            (float(cost) - oracle_cost) / oracle_cost
            if valid and oracle_cost
            else None
        ),
        "violations": violations,
    }


def _chain_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Run the service fallback chain on one case under ample deadline."""
    from repro.service.chain import default_policy, run_chain

    built = build_case(_case_from_params(params))
    oracle = _oracle_record(params)
    if params["inject"] == "offset":
        # corrupt the compiled model the chain solves (same hook as the
        # solver points: adapter.bqm() is compiled lazily and cached)
        bqm = built.adapter.bqm().copy()
        bqm.offset -= 1.0
        built.adapter._bqm = bqm

    outcome = run_chain(
        built.adapter,
        default_policy(),
        deadline_s=_CHAIN_DEADLINE_S,
        seed=seed,
        mode="first_valid",
    )
    violations = list(oracle.get("violations", ()))
    if not outcome.valid:
        violations.append(
            Violation(
                invariant="chain-valid-guarantee",
                subject="chain",
                message="the fallback chain returned an invalid plan",
                details={"served_by": outcome.served_by},
            ).to_dict()
        )
    elif not built.adapter.validate(outcome.plan):
        violations.append(
            Violation(
                invariant="chain-plan-validity",
                subject="chain",
                message="the chain's plan fails the adapter's validate()",
                details={"served_by": outcome.served_by, "plan": outcome.plan},
            ).to_dict()
        )
    violations += [
        v.to_dict()
        for v in _cost_checks("chain", outcome.valid, float(outcome.cost), oracle)
    ]
    oracle_cost = oracle.get("cost")
    return {
        "type": "chain",
        "case_id": params["case_id"],
        "solver": "chain",
        "num_variables": _case_variables(params["case"]),
        "energy": outcome.energy,
        "oracle_energy": oracle.get("energy"),
        "energy_gap": None,
        "valid": bool(outcome.valid),
        "cost": float(outcome.cost) if outcome.valid else None,
        "oracle_cost": oracle_cost,
        "cost_gap_rel": (
            (float(outcome.cost) - oracle_cost) / oracle_cost
            if outcome.valid and oracle_cost
            else None
        ),
        "served_by": outcome.served_by,
        "violations": violations,
    }


def _invariant_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Run the per-case invariant catalog."""
    import networkx as nx
    import numpy as np

    built = build_case(_case_from_params(params))
    inject = params["inject"]
    bqm = built.bqm
    samples = random_assignments(bqm, 24, seed)
    subject = params["case_id"]

    violations: List[Violation] = []
    violations += check_ising_round_trip(
        bqm, samples, subject=subject, j_scale=1.001 if inject == "ising" else 1.0
    )
    violations += check_qubo_round_trip(bqm, samples, subject=subject)
    violations += check_matrix_energy(bqm, samples, subject=subject)
    violations += check_compiled_energy_consistency(
        bqm,
        samples,
        subject=subject,
        drop_interaction=(inject == "compiled"),
        seed=seed,
    )
    violations += check_fix_variable_conservation(bqm, samples[:6], subject=subject)

    cost_shift = 1.0 if inject == "decode" else 0.0
    if params["kind"] == "mqo":
        rng = np.random.default_rng(seed)
        decode_samples = list(samples)
        # add guaranteed-valid selections: one random plan per query
        from repro.mqo.qubo import variable_name

        for _ in range(8):
            sample = {v: 0 for v in bqm.variables}
            for _, plans in sorted(built.problem.plans_by_query().items()):
                chosen = plans[int(rng.integers(len(plans)))]
                sample[variable_name(chosen.plan_id)] = 1
            decode_samples.append(sample)
        violations += check_mqo_decode_consistency(
            built.problem,
            built.builder,
            bqm,
            decode_samples,
            subject=subject,
            cost_shift=cost_shift,
        )
    else:
        rng = np.random.default_rng(seed)
        names = list(built.problem.relation_names)
        orders = [tuple(rng.permutation(names)) for _ in range(8)]
        violations += check_join_decode_consistency(
            built.builder, bqm, orders, subject=subject, cost_shift=cost_shift
        )

    # embedding-chain validity of this case's interaction graph on a
    # Chimera target (skip the largest graphs to bound sweep time)
    checks = 6
    if bqm.num_variables <= 16:
        from repro.annealing.chimera import chimera_graph
        from repro.annealing.embedding import find_embedding

        source = bqm.interaction_graph()
        source.remove_edges_from(nx.selfloop_edges(source))
        target = chimera_graph(4)
        embedding = find_embedding(
            source, target, tries=1, improvement_rounds=15, seed=seed,
            stop_at_first=True,
        )
        violations += check_embedding_validity(
            source, target, embedding, subject=subject
        )
        checks += 1

    return {
        "type": "invariants",
        "case_id": params["case_id"],
        "solver": None,
        "checks": checks,
        "violations": [v.to_dict() for v in violations],
    }


def _gate_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Transpiled-circuit equivalence on one random circuit."""
    from repro.gate.topologies import line_coupling_map

    qubits = int(params["qubits"])
    circuit = random_circuit(qubits, depth=int(params["depth"]), seed=seed)
    subject = f"random-circuit-{qubits}q-{params['coupling']}"
    coupling = None if params["coupling"] == "full" else line_coupling_map(qubits)
    violations = check_transpile_equivalence(
        circuit, coupling_map=coupling, seed=seed, subject=subject
    )
    return {
        "type": "gate",
        "case_id": subject,
        "solver": None,
        "checks": 1,
        "violations": [v.to_dict() for v in violations],
    }


def _sql_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """sql-plan-consistency on one generated TPC-H-style query."""
    import numpy as np

    from repro.sql import generate_query, plan_query
    from repro.verify.invariants import check_sql_plan_consistency

    query_seed = int(params["query_seed"])
    sql = generate_query(
        seed=query_seed,
        min_tables=int(params["min_tables"]),
        max_tables=int(params["max_tables"]),
    )
    plan = plan_query(sql)
    rng = np.random.default_rng(seed)
    names = list(plan.graph.relation_names)
    orders = [tuple(str(n) for n in rng.permutation(names)) for _ in range(8)]
    drift = 1.01 if params["inject"] == "sql" else 1.0
    subject = f"sql-query-{query_seed}"
    violations = check_sql_plan_consistency(
        plan, orders, subject=subject, drift=drift
    )
    return {
        "type": "sql",
        "case_id": subject,
        "solver": None,
        "checks": len(orders),
        "violations": [v.to_dict() for v in violations],
    }


#: deadline sweep (ms) for routing points: tight budgets where only
#: the cheap stages fit, through ample ones where everything does
_ROUTING_DEADLINES = (0.2, 0.5, 2.5, 10.0, 100.0)


def _routing_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """routing-regret + prediction sanity on one case's features."""
    from repro.routing import extract_features
    from repro.verify.invariants import check_routing_feasibility

    built = build_case(_case_from_params(params))
    features = extract_features(built.adapter)
    # an optimistic fit test is exactly the bug class the invariant
    # exists to catch: the router believes every stage is ~20x faster
    # than the model says and fronts infeasible stages at tight deadlines
    optimism = 0.05 if params["inject"] == "router" else 1.0
    violations = check_routing_feasibility(
        features,
        _ROUTING_DEADLINES,
        subject=params["case_id"],
        optimism=optimism,
    )
    return {
        "type": "routing",
        "case_id": params["case_id"],
        "solver": None,
        "checks": len(_ROUTING_DEADLINES),
        "violations": [v.to_dict() for v in violations],
    }


def _shard_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """shard-reconciliation on one case's QUBO.

    ``--inject shard`` skips the boundary pass after the naive shard
    merge — the exact bug :class:`repro.hybrid.DecomposingSolver`'s
    ``boundary_reconciliation=False`` knob would reintroduce.
    """
    from repro.verify.invariants import check_shard_reconciliation

    built = build_case(_case_from_params(params))
    violations = check_shard_reconciliation(
        built.bqm,
        seed=seed,
        subject=params["case_id"],
        reconcile=(params["inject"] != "shard"),
    )
    return {
        "type": "shard",
        "case_id": params["case_id"],
        "solver": None,
        "checks": 3,
        "violations": [v.to_dict() for v in violations],
    }


def _verify_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Grid dispatch (module-level: must pickle into pool workers)."""
    kind = params["type"]
    if kind == "solver":
        return _solver_point(params, seed)
    if kind == "chain":
        return _chain_point(params, seed)
    if kind == "invariants":
        return _invariant_point(params, seed)
    if kind == "gate":
        return _gate_point(params, seed)
    if kind == "sql":
        return _sql_point(params, seed)
    if kind == "routing":
        return _routing_point(params, seed)
    if kind == "shard":
        return _shard_point(params, seed)
    raise ConfigurationError(f"unknown verification point type {kind!r}")


def _build_points(
    cases: Sequence[Case],
    solvers: Sequence[str],
    inject: str,
    oracle_cache: bool,
    energy_limit: int,
    include_chain: bool,
    include_gate: bool,
) -> List[Dict[str, Any]]:
    from repro.hybrid.registry import make_solver

    points: List[Dict[str, Any]] = []
    base = {
        "inject": inject,
        "oracle_cache": oracle_cache,
        "energy_limit": energy_limit,
    }
    limits = {}
    for name in solvers:
        solver = make_solver(name)
        cap = solver.max_variables
        sweep_cap = _SWEEP_LIMITS.get(name)
        if sweep_cap is not None:
            cap = sweep_cap if cap is None else min(cap, sweep_cap)
        limits[name] = cap
    for case in cases:
        case_base = {
            **base,
            "case_id": case.case_id,
            "kind": case.kind,
            "case": dict(case.params),
        }
        for name in solvers:
            cap = limits[name]
            if cap is not None and _case_variables(case.params) > cap:
                continue
            points.append({**case_base, "type": "solver", "solver": name})
        if include_chain:
            points.append({**case_base, "type": "chain"})
        points.append({**case_base, "type": "invariants"})
        points.append({**case_base, "type": "routing"})
        points.append({**case_base, "type": "shard"})
    if include_gate:
        for qubits, depth in ((4, 4), (5, 3)):
            for coupling in ("full", "line"):
                points.append(
                    {
                        "type": "gate",
                        "inject": inject,
                        "qubits": qubits,
                        "depth": depth,
                        "coupling": coupling,
                    }
                )
    for query_seed in (101, 202, 303):
        points.append(
            {
                "type": "sql",
                "inject": inject,
                "query_seed": query_seed,
                "min_tables": 3,
                "max_tables": 6,
            }
        )
    return points


def run_verification(
    suite: str = "quick",
    solvers: Optional[Sequence[str]] = None,
    seed: int = 0,
    workers: Optional[int] = None,
    inject: str = "none",
    oracle_cache: bool = True,
    energy_limit: int = DEFAULT_ENERGY_LIMIT,
    include_chain: bool = True,
    include_gate: bool = True,
) -> VerificationReport:
    """Execute the differential sweep and assemble a report.

    Deterministic for a fixed ``(suite, solvers, seed, inject)``
    regardless of ``workers`` — the report's ``to_dict()`` form is
    byte-identical across worker counts.
    """
    if inject not in INJECTABLE_BUGS:
        raise ConfigurationError(
            f"unknown injection {inject!r}; expected one of {', '.join(INJECTABLE_BUGS)}"
        )
    registry = sweep_solver_names()
    if solvers is None:
        solvers = registry
    else:
        unknown = sorted(set(solvers) - set(registry))
        if unknown:
            raise ConfigurationError(
                f"unknown solver(s) {', '.join(unknown)}; "
                f"registered: {', '.join(registry)}"
            )
        solvers = list(solvers)

    cases = build_corpus(suite, seed=seed)
    points = _build_points(
        cases, solvers, inject, oracle_cache, energy_limit, include_chain, include_gate
    )
    results = run_grid(
        points,
        _verify_point,
        experiment=_EXPERIMENT,
        seed=seed,
        workers=workers,
        cache=False,  # verification must re-run; only the oracle caches
    )
    rows = [row for result in results for row in result.rows]
    seconds = sum(result.seconds for result in results)
    return summarize(
        suite=suite,
        seed=seed,
        solvers=list(solvers),
        cases=[case.case_id for case in cases],
        rows=rows,
        inject=inject,
        seconds=seconds,
    )
