"""The seeded instance corpus the differential sweep runs over.

A :class:`Case` is a *description* — problem kind plus generator
parameters — not a built instance, so cases are picklable and cheap to
ship to harness worker processes; :func:`build_case` reconstructs the
actual problem, QUBO builder, compiled BQM and service adapter on
demand (deterministically: the instance seed is part of the params).

Two suites:

* ``quick`` — five small instances (4–16 QUBO variables), all within
  the energy oracle's brute-force range; sized for CI smoke runs.
* ``full`` — the quick cases plus larger MQO instances and join graphs
  up to 7 relations (49-variable direct QUBOs, beyond brute force but
  still within the exhaustive-permutation domain oracle).

Instance seeds derive from the root seed and the case's shape via the
harness SHA-256 scheme, so two sweeps with the same root seed verify
byte-identical instances regardless of worker count or case order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.exceptions import ConfigurationError
from repro.harness import derive_seed

__all__ = ["BuiltCase", "Case", "SUITES", "build_case", "build_corpus"]

SUITES: Tuple[str, ...] = ("quick", "full")

#: (queries, plans-per-query) per suite
_MQO_SHAPES = {
    "quick": ((2, 2), (3, 3), (4, 3)),
    "full": ((2, 2), (3, 3), (4, 3), (4, 4), (5, 3)),
}

#: (shape, relations) per suite
_JOIN_SHAPES = {
    "quick": (("chain", 3), ("star", 4)),
    "full": (("chain", 3), ("star", 4), ("cycle", 4), ("chain", 5), ("star", 7)),
}


@dataclass(frozen=True)
class Case:
    """One corpus entry: a reconstructible problem description."""

    case_id: str
    kind: str  # "mqo" | "join_order"
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass
class BuiltCase:
    """A case materialized into live objects."""

    case: Case
    problem: Any  # MqoProblem | QueryGraph
    builder: Any  # MqoQuboBuilder | DirectJoinOrderQubo
    bqm: Any
    adapter: Any  # service problem adapter (decode/validate/fallback)


def build_case(case: Case) -> BuiltCase:
    """Materialize a case description (deterministic in its params)."""
    from repro.service.problems import make_adapter

    if case.kind == "mqo":
        from repro.mqo.generator import random_mqo_problem
        from repro.mqo.qubo import MqoQuboBuilder

        problem = random_mqo_problem(
            case.params["queries"],
            case.params["ppq"],
            seed=case.params["seed"],
        )
        builder = MqoQuboBuilder(problem)
        bqm = builder.build()
        adapter = make_adapter("mqo", problem)
    elif case.kind == "join_order":
        from repro.joinorder.direct_qubo import DirectJoinOrderQubo
        from repro.joinorder.generators import (
            chain_query,
            clique_query,
            cycle_query,
            star_query,
        )

        makers = {
            "chain": chain_query,
            "star": star_query,
            "cycle": cycle_query,
            "clique": clique_query,
        }
        graph = makers[case.params["shape"]](
            case.params["relations"], seed=case.params["seed"]
        )
        problem = graph
        builder = DirectJoinOrderQubo(graph)
        bqm = builder.build()
        adapter = make_adapter("join_order", graph)
    else:
        raise ConfigurationError(f"unknown case kind {case.kind!r}")
    return BuiltCase(
        case=case, problem=problem, builder=builder, bqm=bqm, adapter=adapter
    )


def build_corpus(suite: str = "quick", seed: int = 0) -> List[Case]:
    """The ordered case list of a suite for a given root seed."""
    if suite not in SUITES:
        raise ConfigurationError(
            f"unknown suite {suite!r}; expected one of {', '.join(SUITES)}"
        )
    cases: List[Case] = []
    for queries, ppq in _MQO_SHAPES[suite]:
        shape = {"kind": "mqo", "queries": queries, "ppq": ppq}
        instance_seed = derive_seed(seed, "repro.verify.corpus", shape)
        cases.append(
            Case(
                case_id=f"mqo-{queries}x{ppq}",
                kind="mqo",
                params={"queries": queries, "ppq": ppq, "seed": instance_seed},
            )
        )
    for shape_name, relations in _JOIN_SHAPES[suite]:
        shape = {"kind": "join_order", "shape": shape_name, "relations": relations}
        instance_seed = derive_seed(seed, "repro.verify.corpus", shape)
        cases.append(
            Case(
                case_id=f"join-{shape_name}-{relations}",
                kind="join_order",
                params={
                    "shape": shape_name,
                    "relations": relations,
                    "seed": instance_seed,
                },
            )
        )
    return cases
