"""Parallel experiment execution with deterministic seeding and an
on-disk result cache.

Every experiment driver in :mod:`repro.experiments` declares its sweep
as a list of *grid points* — plain JSON-serializable parameter dicts —
and hands them to :func:`run_grid` together with a module-level *point
function* ``fn(params, seed) -> row | [rows] | None``.  The harness
then provides three things the serial drivers lacked:

**Fan-out.**  Points execute on a
:class:`concurrent.futures.ProcessPoolExecutor` when ``workers > 1``
(``workers=1`` stays serial and in-process).  Results are reassembled
in input-point order, so the produced table never depends on
completion order.  Point functions must be module-level (picklable);
the :class:`_PointTask` wrapper keeps the submitted payload
pickling-safe.

**Deterministic seeding.**  Each point's seed is derived from the root
seed, the experiment name and the canonical JSON of the point's
parameters via SHA-256 (:func:`derive_seed`) — never from sequential
RNG draws or ``hash()``.  Parallel and serial runs therefore produce
bit-identical row lists, and the derivation is stable across processes
and ``PYTHONHASHSEED`` values.

**Caching.**  With ``cache=True`` each point's rows are persisted as
JSON under ``results/.cache/<experiment>/<key>.json`` where ``key`` is
a content hash of the experiment name, point parameters, derived seed
and code version (:func:`grid_cache_key`).  Re-runs and partially
completed sweeps resume instantly; corrupted or unreadable cache files
are treated as misses and rewritten.  The version component defaults
to a fingerprint of the package version plus the point function's
module source, so editing a driver invalidates its cached points
automatically.

Environment knobs (used when the corresponding argument is ``None``):

=====================  ================================================
``REPRO_BENCH_WORKERS``  default worker count for :func:`run_grid`
``REPRO_CACHE``          enable caching (``1/true/on``; default off)
``REPRO_CACHE_DIR``      cache root (default ``results/.cache``)
=====================  ================================================
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.exceptions import ConfigurationError
from repro.serialization import to_jsonable

__all__ = [
    "GridPointResult",
    "ResultCache",
    "code_fingerprint",
    "derive_seed",
    "extend_table",
    "grid_cache_key",
    "harness_note",
    "point_key",
    "resolve_cache",
    "resolve_workers",
    "run_grid",
]

_CACHE_FORMAT = 1
DEFAULT_CACHE_DIR = os.path.join("results", ".cache")

#: A point function: ``fn(params, seed)`` returning one row dict, a
#: list of row dicts, or ``None`` for "no row at this point".
PointFn = Callable[[Dict[str, Any], int], Union[Dict[str, Any], List[Dict[str, Any]], None]]


# ----------------------------------------------------------------------
# Deterministic keys and seeds
# ----------------------------------------------------------------------
def point_key(params: Dict[str, Any]) -> str:
    """Canonical JSON of a point's parameters (dict-order insensitive)."""
    return json.dumps(to_jsonable(params), sort_keys=True, separators=(",", ":"))


def derive_seed(root_seed: int, experiment: str, params: Dict[str, Any]) -> int:
    """Per-point seed from root seed + experiment + point key.

    SHA-256 based: stable across processes, interpreter runs and
    ``PYTHONHASHSEED`` values, and independent of the order in which
    points are executed — the property that makes parallel and serial
    sweeps bit-identical.
    """
    material = f"{int(root_seed)}|{experiment}|{point_key(params)}"
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**31)


def grid_cache_key(
    experiment: str, params: Dict[str, Any], seed: int, version: str
) -> str:
    """Content hash naming one point's cache entry."""
    payload = json.dumps(
        {
            "experiment": str(experiment),
            "params": to_jsonable(params),
            "seed": int(seed),
            "version": str(version),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def code_fingerprint(fn: Callable) -> str:
    """Default ``version`` for the cache key.

    Package version + source hashes of the point function's module and
    of this module, so editing either invalidates the affected cache
    entries without a manual version bump.
    """
    import repro

    parts = [repro.__version__]
    for name in sorted({getattr(fn, "__module__", "") or "", __name__}):
        module = sys.modules.get(name)
        if module is None:
            continue
        try:
            source = inspect.getsource(module)
        except (OSError, TypeError):
            continue
        parts.append(hashlib.sha256(source.encode("utf-8")).hexdigest())
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Configuration resolution (argument > environment > default)
# ----------------------------------------------------------------------
def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_BENCH_WORKERS``, else 1."""
    if workers is None:
        raw = os.environ.get("REPRO_BENCH_WORKERS")
        if raw is None:
            return 1
        try:
            workers = int(raw)
        except ValueError as exc:
            raise ConfigurationError(
                f"REPRO_BENCH_WORKERS must be an integer, got {raw!r}"
            ) from exc
    workers = int(workers)
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return workers


def resolve_cache(cache: Optional[bool] = None) -> bool:
    """Cache enablement: explicit argument, else ``REPRO_CACHE``, else off."""
    if cache is not None:
        return bool(cache)
    raw = os.environ.get("REPRO_CACHE")
    if raw is None:
        return False
    return raw.strip().lower() in {"1", "true", "on", "yes"}


def resolve_cache_dir(cache_dir: Optional[str] = None) -> str:
    """Cache root: explicit argument, else ``REPRO_CACHE_DIR``, else default."""
    return str(cache_dir or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR)


# ----------------------------------------------------------------------
# The on-disk cache
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed JSON store for grid-point results.

    One file per point under ``<root>/<experiment>/<key>.json``.  Reads
    never raise: any missing, unreadable, corrupted or wrong-format
    file is a miss, and the next :meth:`put` overwrites it (writes are
    atomic via a temp file + ``os.replace``).
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def _path(self, experiment: str, key: str) -> Path:
        slug = "".join(c if c.isalnum() or c in "-_." else "_" for c in experiment)
        return self.root / (slug or "experiment") / f"{key}.json"

    def get(self, experiment: str, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(experiment, key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError, UnicodeDecodeError):
            return None
        if (
            not isinstance(data, dict)
            or data.get("format") != _CACHE_FORMAT
            or not isinstance(data.get("rows"), list)
        ):
            return None
        return data

    def put(
        self,
        experiment: str,
        key: str,
        rows: List[Dict[str, Any]],
        seconds: float,
        params: Dict[str, Any],
        seed: int,
    ) -> None:
        path = self._path(experiment, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": _CACHE_FORMAT,
            "experiment": experiment,
            "params": to_jsonable(params),
            "seed": int(seed),
            "rows": rows,
            "seconds": float(seconds),
        }
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, path)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GridPointResult:
    """One executed (or cache-restored) grid point."""

    params: Dict[str, Any]
    seed: int
    rows: List[Dict[str, Any]]
    seconds: float
    cached: bool
    key: str


@dataclass(frozen=True)
class _PointTask:
    """Pickling-safe unit of work shipped to a pool worker."""

    fn: PointFn
    params: Dict[str, Any]
    seed: int


def _run_task(task: _PointTask) -> tuple:
    """Execute one point, normalizing its rows to plain JSON types.

    The normalization matters for determinism: fresh rows must compare
    equal to rows restored from the JSON cache, so numpy scalars and
    tuples are coerced the same way on both paths.
    """
    start = time.perf_counter()
    out = task.fn(task.params, task.seed)
    seconds = time.perf_counter() - start
    if out is None:
        rows: List[Dict[str, Any]] = []
    elif isinstance(out, dict):
        rows = [out]
    else:
        rows = list(out)
    return [to_jsonable(row) for row in rows], seconds


def run_grid(
    points: Iterable[Dict[str, Any]],
    fn: PointFn,
    *,
    experiment: str,
    seed: int = 0,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    version: Optional[str] = None,
) -> List[GridPointResult]:
    """Run ``fn`` over every grid point, in parallel when asked.

    Results come back in input-point order regardless of completion
    order, each with its derived seed, wall-clock seconds and cache
    status.  See the module docstring for the seeding and caching
    contract.
    """
    point_list = [dict(p) for p in points]
    workers = resolve_workers(workers)
    use_cache = resolve_cache(cache)
    if version is None:
        version = code_fingerprint(fn)
    store = ResultCache(resolve_cache_dir(cache_dir)) if use_cache else None

    results: List[Optional[GridPointResult]] = [None] * len(point_list)
    pending: List[tuple] = []
    for index, params in enumerate(point_list):
        pseed = derive_seed(seed, experiment, params)
        key = grid_cache_key(experiment, params, pseed, version)
        if store is not None:
            hit = store.get(experiment, key)
            if hit is not None:
                results[index] = GridPointResult(
                    params=params,
                    seed=pseed,
                    rows=hit["rows"],
                    seconds=float(hit.get("seconds", 0.0)),
                    cached=True,
                    key=key,
                )
                continue
        pending.append((index, params, pseed, key))

    def finish(index: int, params: Dict[str, Any], pseed: int, key: str,
               rows: List[Dict[str, Any]], seconds: float) -> None:
        if store is not None:
            store.put(experiment, key, rows, seconds, params, pseed)
        results[index] = GridPointResult(
            params=params, seed=pseed, rows=rows, seconds=seconds,
            cached=False, key=key,
        )

    if pending and workers > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {
                pool.submit(_run_task, _PointTask(fn, item[1], item[2])): item
                for item in pending
            }
            for future in as_completed(futures):
                index, params, pseed, key = futures[future]
                rows, seconds = future.result()
                finish(index, params, pseed, key, rows, seconds)
    else:
        for index, params, pseed, key in pending:
            rows, seconds = _run_task(_PointTask(fn, params, pseed))
            finish(index, params, pseed, key, rows, seconds)

    return [r for r in results if r is not None]


# ----------------------------------------------------------------------
# Table assembly
# ----------------------------------------------------------------------
def harness_note(results: Sequence[GridPointResult], workers: int) -> str:
    """Human-readable execution summary (appended to table notes)."""
    total = sum(r.seconds for r in results)
    cached = sum(1 for r in results if r.cached)
    note = (
        f"[harness] {len(results)} points ({cached} cached) via "
        f"{workers} worker(s); point wall-clock total {total:.2f}s"
    )
    fresh = [r.seconds for r in results if not r.cached]
    if fresh:
        note += f", mean {sum(fresh) / len(fresh):.2f}s, max {max(fresh):.2f}s"
    return note + "."


def extend_table(table, results: Sequence[GridPointResult], workers: int) -> None:
    """Append every point's rows to ``table`` plus the timing note.

    Row content is deterministic (identical for serial, parallel and
    cached runs); only the timing note varies run to run.
    """
    for result in results:
        for row in result.rows:
            table.rows.append(dict(row))
    note = harness_note(results, workers)
    table.notes = f"{table.notes}\n{note}" if table.notes else note
