"""Experiment drivers reproducing the paper's tables and figures.

One module per artifact; each exposes a ``run(...)`` function returning
an :class:`~repro.experiments.common.ExperimentTable` whose rows mirror
the series plotted/tabulated in the paper:

====================  ==================================================
Module                 Artifact
====================  ==================================================
tables                 Tables 1–3 (worked MQO and join-ordering examples)
mqo_depths             Figures 8 and 9 (MQO circuit depths, QAOA vs VQE)
jo_qubits              Figures 11 and 12 (join-ordering qubit scaling)
jo_table4              Table 4 (three 30-qubit join-ordering instances)
jo_depths              Figure 13 (join-ordering circuit depths)
jo_embedding           Figure 14 (physical qubits on the Pegasus P16)
coherence_thresholds   Eqs. 37/55 (maximum reliable depths)
quality                solution-quality sanity checks (beyond paper scope)
jo_direct              extension: direct vs two-step QUBO (Sec. 7)
noise_study            extension: the coherence cliff observed (Eq. 36)
mqo_annealer           extension: MQO capacity on the D-Wave 2X (Sec. 5.3.1)
hybrid_scaling         extension: decomposing hybrid solver, 20–60 queries
====================  ==================================================

Sample counts default to laptop-friendly values and scale up through
the ``REPRO_BENCH_SAMPLES`` environment variable (the paper uses 20
samples per point).

Every driver declares its sweep as a list of grid points and routes
execution through :mod:`repro.harness`, which adds process-pool
fan-out (``workers=N`` / ``REPRO_BENCH_WORKERS``), per-point seeds
derived deterministically from the root seed (parallel and serial runs
produce identical tables), and an on-disk result cache under
``results/.cache`` (``cache=True`` / ``REPRO_CACHE=1``).
"""

from repro.experiments.common import ExperimentTable, bench_samples
from repro.harness import run_grid

__all__ = ["ExperimentTable", "bench_samples", "run_grid"]
