"""Replay experiment: Zipfian streams through both scheduler backends.

Production traffic is not the few-hundred-request bursts the serving
benchmarks replay — it is sustained streams whose duplicate structure
is heavy-tailed.  This experiment drives the same lazily-generated
Zipfian stream (:mod:`repro.replay`) through the thread and the process
scheduler and reports, per backend, the quantities capacity planning
needs: throughput, result-cache and coalescing hit rates, admission
rejections, deadline-miss rate, and client-side p50/p95/p99 latency.

Latencies and throughput are wall-clock measurements; the *plans*
served are deterministic (identical content → identical plan on both
backends), but the rows here are timings and rates, so exact numbers
vary run to run.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.experiments.common import ExperimentTable
from repro.harness import extend_table, resolve_workers, run_grid


def _replay_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One backend: stream the whole workload and report its rates."""
    from repro.replay import replay_stream, run_replay
    from repro.server import ServiceConfig, make_scheduler

    stream = replay_stream(
        params["requests"],
        seed=params["stream_seed"],
        unique=params["unique"],
        zipf_s=params["zipf_s"],
        deadline_ms=params["deadline_ms"],
        sql_fraction=params["sql_fraction"],
    )
    with make_scheduler(
        params["backend"],
        config=ServiceConfig(seed=seed),
        workers=params["workers"],
        queue_limit=params["queue_limit"],
    ) as scheduler:
        report = run_replay(
            scheduler, stream, max_in_flight=params["max_in_flight"]
        )
    latency = report.latency_ms
    return {
        "backend": params["backend"],
        "requests": report.requests,
        "throughput rps": round(report.throughput_rps, 1),
        "cache hit%": round(100.0 * report.cache.get("hit_rate", 0.0), 1),
        "coalesce hit%": round(100.0 * report.coalesce.get("hit_rate", 0.0), 1),
        "rejected%": round(100.0 * report.rejection_rate, 2),
        "miss%": round(100.0 * report.deadline_miss_rate, 2),
        "p50 ms": round(float(latency.get("p50", float("nan"))), 2),
        "p95 ms": round(float(latency.get("p95", float("nan"))), 2),
        "p99 ms": round(float(latency.get("p99", float("nan"))), 2),
        "errors": report.errors,
    }


def run_replay_experiment(
    seed: int = 31,
    requests: int = 2000,
    unique: int = 128,
    zipf_s: float = 1.1,
    deadline_ms: float = 200.0,
    sql_fraction: float = 0.2,
    queue_limit: int = 256,
    max_in_flight: int = 64,
    backends: Sequence[str] = ("thread", "process"),
    scheduler_workers: int = 2,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Stream one Zipfian workload through each scheduler backend.

    ``workers`` parallelizes grid points (harness convention);
    ``scheduler_workers`` is the worker count *inside* each scheduler.
    The full-scale run (10^5+ requests per backend) lives in
    ``benchmarks/bench_replay.py`` → ``BENCH_replay.json``; this
    experiment is its CI-sized counterpart.
    """
    workers = resolve_workers(workers)
    table = ExperimentTable(
        title="Workload replay: Zipfian request streams through the "
        "thread and process scheduler backends",
        columns=[
            "backend", "requests", "throughput rps", "cache hit%",
            "coalesce hit%", "rejected%", "miss%", "p50 ms", "p95 ms",
            "p99 ms", "errors",
        ],
        notes="Zipf-duplicated stream (lazily generated, never "
        "materialized); latency measured client-side from submission "
        "to completion. Timing rows are wall-clock measurements.",
    )
    points = [
        {
            "backend": backend,
            "requests": int(requests),
            "unique": int(unique),
            "zipf_s": float(zipf_s),
            "deadline_ms": float(deadline_ms),
            "sql_fraction": float(sql_fraction),
            "queue_limit": int(queue_limit),
            "max_in_flight": int(max_in_flight),
            "workers": int(scheduler_workers),
            "stream_seed": seed + 500,
        }
        for backend in backends
    ]
    results = run_grid(
        points,
        _replay_point,
        experiment="replay",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table
