"""Figure 13: join-ordering circuit depths on IBM-Q systems
(paper Sec. 6.3.4).

Three-relation instances (cardinality 10, one threshold) are grown to
increasing qubit counts via two strategies:

* **strategy 1** — add predicates (0 → 3, qubits 21 → 30);
* **strategy 2** — lower the precision factor ω (1 → 0.001, same
  qubit counts but far denser QUBOs, per Table 4).

For each instance the QAOA (p=1) and VQE circuit depths are measured
on the optimal (all-to-all) topology and the IBM-Q Brooklyn heavy-hex
topology.  Paper findings reproduced in shape:

* strategy 2 exceeds strategy 1's depth increasingly with qubit count
  (~57% at 30 qubits on the optimal topology);
* all VQE depths exceed Brooklyn's d_max = 178 by a large margin;
* strategy-2 Brooklyn depths cross d_max around 24 qubits.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.analysis.depth import measure_qaoa_depth, measure_vqe_depth
from repro.experiments.common import ExperimentTable, bench_samples
from repro.gate.topologies import brooklyn_coupling_map
from repro.harness import extend_table, resolve_workers, run_grid
from repro.joinorder.generators import uniform_query
from repro.joinorder.pipeline import JoinOrderQuantumPipeline

#: strategy 1 steps: predicates 0..3 (ω = 1)
STRATEGY1_PREDICATES = (0, 1, 2, 3)
#: strategy 2 steps: precision exponents 0..3 (no predicates)
STRATEGY2_EXPONENTS = (0, 1, 2, 3)


def _pipeline(strategy: int, step: int) -> JoinOrderQuantumPipeline:
    """The pipeline for one step of the given growth strategy."""
    if strategy == 1:
        graph = uniform_query(3, step, cardinality=10.0, selectivity=0.5, seed=1)
        return JoinOrderQuantumPipeline(
            graph, thresholds=[10.0], precision_exponent=0, prune_thresholds=False
        )
    graph = uniform_query(3, 0, cardinality=10.0, seed=1)
    return JoinOrderQuantumPipeline(
        graph, thresholds=[10.0], precision_exponent=step, prune_thresholds=False
    )


def _figure13_qaoa_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """QAOA depths of one (strategy, step) instance on both topologies."""
    pipe = _pipeline(params["strategy"], params["step"])
    optimal = measure_qaoa_depth(pipe.bqm, None, samples=1, seed=seed)
    routed = measure_qaoa_depth(
        pipe.bqm, brooklyn_coupling_map(), samples=params["transpilations"], seed=seed
    )
    return {
        "qubits": pipe.report().num_qubits,
        "strategy": f"s{params['strategy']}",
        "quadratic terms": optimal.num_quadratic_terms,
        "depth optimal": round(optimal.mean_transpiled_depth, 1),
        "depth brooklyn": round(routed.mean_transpiled_depth, 1),
    }


def run_figure13_qaoa(
    transpilations: Optional[int] = None,
    seed: int = 23,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Figure 13 (left): QAOA depths for both strategies/topologies."""
    workers = resolve_workers(workers)
    transpilations = transpilations or bench_samples(3)
    table = ExperimentTable(
        title="Figure 13 (left) - join ordering QAOA depths",
        columns=[
            "qubits",
            "strategy",
            "quadratic terms",
            "depth optimal",
            "depth brooklyn",
        ],
        notes=(
            "Paper shape: strategy 2 (lower ω) ~57% deeper than strategy 1 "
            "at 30 qubits; Brooklyn d_max = 178 crossed by strategy 2 from "
            "~24 qubits."
        ),
    )
    points = [
        {"strategy": strategy, "step": step, "transpilations": transpilations}
        for strategy in (1, 2)
        for step in (STRATEGY1_PREDICATES if strategy == 1 else STRATEGY2_EXPONENTS)
    ]
    results = run_grid(
        points,
        _figure13_qaoa_point,
        experiment="fig13-qaoa",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table


def _figure13_vqe_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """VQE depths of one strategy-2 step on both topologies."""
    pipe = _pipeline(2, params["step"])
    optimal = measure_vqe_depth(pipe.bqm, None, samples=1, seed=seed)
    routed = measure_vqe_depth(
        pipe.bqm, brooklyn_coupling_map(), samples=params["transpilations"], seed=seed
    )
    return {
        "qubits": pipe.report().num_qubits,
        "depth optimal": round(optimal.mean_transpiled_depth, 1),
        "depth brooklyn": round(routed.mean_transpiled_depth, 1),
    }


def run_figure13_vqe(
    transpilations: Optional[int] = None,
    seed: int = 29,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Figure 13 (right): VQE depths (strategy-independent)."""
    workers = resolve_workers(workers)
    transpilations = transpilations or bench_samples(3)
    table = ExperimentTable(
        title="Figure 13 (right) - join ordering VQE depths",
        columns=["qubits", "depth optimal", "depth brooklyn"],
        notes="Paper: every VQE depth far exceeds Brooklyn's d_max = 178.",
    )
    points = [
        {"step": step, "transpilations": transpilations}
        for step in STRATEGY2_EXPONENTS
    ]
    results = run_grid(
        points,
        _figure13_vqe_point,
        experiment="fig13-vqe",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table
