"""Hybrid decomposition scaling study (beyond the paper's scope).

The paper stops where the hardware stops: MQO instances beyond ~30
QUBO variables exceed both the statevector simulator and near-term
annealers (Secs. 5.3, 6.3).  The hybrid literature it cites
(Fankhauser et al.'s hybrid quantum-classical MQO, qbsolv) continues
past that wall by decomposing.  This experiment runs the
:class:`~repro.hybrid.DecomposingSolver` on MQO instances of 20–60
queries — QUBOs of 40–240 variables, far beyond every quantum path in
this repository — and scores its solutions against the classical
greedy and genetic baselines on the same instances.

Each grid point is one instance; the point seed drives instance
generation and every solver, so rows are deterministic and
cache-stable under the harness.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentTable
from repro.harness import extend_table, resolve_workers, run_grid
from repro.hybrid import DecomposingSolver
from repro.mqo.generator import random_mqo_problem
from repro.mqo.solvers import (
    solve_genetic,
    solve_greedy_local,
    solve_with_solver,
)

#: (queries, plans per query) — 40 to 240 QUBO variables
_DEFAULT_SIZES: Tuple[Tuple[int, int], ...] = (
    (20, 2),
    (20, 3),
    (30, 3),
    (40, 3),
    (50, 3),
    (60, 4),
)


def _hybrid_scaling_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One instance: hybrid vs the greedy and genetic baselines."""
    queries, ppq = params["queries"], params["ppq"]
    problem = random_mqo_problem(queries, ppq, seed=seed)
    greedy = solve_greedy_local(problem)
    genetic = solve_genetic(problem, seed=seed)
    solver = DecomposingSolver(sub_size=params["sub_size"])
    hybrid = solve_with_solver(problem, solver, seed=seed)
    return {
        "queries": queries,
        "ppq": ppq,
        "variables": problem.num_plans,
        "greedy cost": round(greedy.cost, 2),
        "genetic cost": round(genetic.cost, 2),
        "hybrid cost": round(hybrid.cost, 2),
        "hybrid valid?": hybrid.valid,
        "vs greedy": round(hybrid.cost - greedy.cost, 2),
        "vs genetic": round(hybrid.cost - genetic.cost, 2),
    }


def run_hybrid_scaling(
    seed: int = 47,
    sizes: Sequence[Tuple[int, int]] = _DEFAULT_SIZES,
    sub_size: int = 16,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Hybrid decomposing solver vs classical baselines, 20–60 queries.

    ``vs greedy`` / ``vs genetic`` are cost deltas (negative means the
    hybrid solution is cheaper; costs themselves can be negative when
    savings dominate, so deltas are more legible than ratios).
    """
    workers = resolve_workers(workers)
    table = ExperimentTable(
        title="Hybrid decomposition scaling (MQO, sub_size "
        f"{sub_size})",
        columns=[
            "queries", "ppq", "variables", "greedy cost", "genetic cost",
            "hybrid cost", "hybrid valid?", "vs greedy", "vs genetic",
        ],
        notes="Negative deltas: hybrid beats the baseline.",
    )
    points = [
        {"queries": q, "ppq": p, "sub_size": sub_size} for q, p in sizes
    ]
    results = run_grid(
        points,
        _hybrid_scaling_point,
        experiment="hybrid-scaling",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table
