"""SQL front-door workload study (beyond the paper's scope).

The paper's join-ordering experiments start from abstract query graphs;
this experiment starts from *SQL text*.  A deterministic TPC-H-style
generator emits SELECT-FROM-WHERE join queries, the
:mod:`repro.sql` pipeline parses, binds and pushes predicates down,
and the extracted join graph is served through the deadline-aware
service fallback chain.  Each served plan is scored against the
classical baselines on the same graph — left-deep dynamic programming
(the exhaustive optimum over left-deep orders), IKKBZ and greedy — so
the table shows how close the service's (potentially quantum-backed)
chain lands to the optimum when the problem arrives as raw SQL.

Each grid point is one generated query; the point seed drives query
generation and every solver, so rows are deterministic and
cache-stable under the harness.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.experiments.common import ExperimentTable
from repro.harness import extend_table, resolve_workers, run_grid


def _sql_workload_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One generated query: service chain vs classical baselines."""
    from repro.joinorder.cost import cout_cost
    from repro.joinorder.classical import solve_dp_left_deep, solve_greedy
    from repro.joinorder.ikkbz import solve_ikkbz
    from repro.service import OptimizationRequest, OptimizationService
    from repro.sql import generate_query, plan_query, tpch_catalog

    catalog = tpch_catalog()
    statement = generate_query(
        seed=params["query_seed"],
        catalog=catalog,
        min_tables=params["min_tables"],
        max_tables=params["max_tables"],
    )
    sql = str(statement)
    plan = plan_query(sql, catalog=catalog)
    graph = plan.graph

    dp = solve_dp_left_deep(graph)
    ikkbz = solve_ikkbz(graph)
    greedy = solve_greedy(graph)

    service = OptimizationService(seed=seed)
    result = service.optimize(
        OptimizationRequest(
            request_id=f"sql-{params['query_seed']}",
            kind="sql",
            problem=plan.query,
            deadline_ms=params["deadline_ms"],
            seed=seed,
        )
    )
    service_cost = (
        cout_cost(graph, [str(r) for r in result.plan.get("order", ())])
        if result.valid
        else float("inf")
    )
    return {
        "query seed": params["query_seed"],
        "tables": graph.num_relations,
        "joins": graph.num_predicates,
        "dp cost": round(dp.cost, 2),
        "ikkbz cost": round(ikkbz.cost, 2),
        "greedy cost": round(greedy.cost, 2),
        "service cost": round(service_cost, 2),
        "served by": result.served_by,
        "valid?": result.valid,
        "gap vs dp": (
            round((service_cost - dp.cost) / dp.cost, 4) if dp.cost else 0.0
        ),
    }


def run_sql_workload(
    seed: int = 83,
    queries: int = 8,
    min_tables: int = 3,
    max_tables: int = 6,
    deadline_ms: float = 500.0,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Generated SQL through the service chain vs classical baselines.

    ``gap vs dp`` is the relative C_out regression of the served plan
    against the left-deep dynamic-programming optimum on the same
    derived join graph (0.0 means the chain found the optimum).
    """
    workers = resolve_workers(workers)
    table = ExperimentTable(
        title="SQL front door: generated TPC-H-style queries through "
        "the service chain",
        columns=[
            "query seed", "tables", "joins", "dp cost", "ikkbz cost",
            "greedy cost", "service cost", "served by", "valid?", "gap vs dp",
        ],
        notes="gap vs dp: relative C_out regression vs the left-deep optimum.",
    )
    points = [
        {
            "query_seed": 1000 + index,
            "min_tables": min_tables,
            "max_tables": max_tables,
            "deadline_ms": deadline_ms,
        }
        for index in range(queries)
    ]
    results = run_grid(
        points,
        _sql_workload_point,
        experiment="sql-workload",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table
