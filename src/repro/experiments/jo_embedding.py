"""Figure 14: physical-qubit requirements on the D-Wave Advantage
(Pegasus P16) for the join-ordering QUBO (paper Sec. 6.3.5).

For each problem configuration the QUBO's interaction graph is
heuristically minor-embedded onto the P16 several times; the mean
*physical* qubit count (sum of chain lengths) is reported, and a point
is marked unreliable when fewer than half the attempts succeed — the
paper's criterion for "an embedding can no longer reliably be found".

* left chart — relations 6..14, predicates P ∈ {J, 2J, 3J}
  (R = 1, ω = 1, no pruning);
* right chart — T = 8, P = J, growing threshold counts for
  ω ∈ {1, 0.01, 0.0001}.

The default grids are trimmed (the full sweep embeds thousand-node
graphs and takes tens of minutes); set ``REPRO_BENCH_SCALE=full`` for
the paper's ranges.  Each grid point is an independent embedding job,
so ``workers=N`` (or ``REPRO_BENCH_WORKERS``) fans the sweep out
across processes and the result cache makes re-runs instant.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.annealing.embedding import find_embedding
from repro.annealing.pegasus import pegasus_graph, pegasus_node_count
from repro.experiments.common import ExperimentTable, bench_samples, bench_scale
from repro.harness import extend_table, resolve_workers, run_grid
from repro.joinorder.generators import uniform_query
from repro.joinorder.pipeline import JoinOrderQuantumPipeline

_PEGASUS_CACHE: dict = {}


def _pegasus_window(num_logical: int) -> Tuple[int, object]:
    """A Pegasus sub-window large enough for the instance.

    Any embedding into ``P(m')`` is a valid embedding into the full
    ``P16`` (the crossing rule defining internal couplers is local, so
    ``P(m')`` is a subgraph of ``P16``); restricting the Dijkstra
    searches to a window sized ~12x the logical count keeps the pure-
    Python heuristic tractable without changing what is reported.
    """
    target_m = 16
    for m in range(4, 17):
        if pegasus_node_count(m) >= 12 * num_logical + 200:
            target_m = m
            break
    if target_m not in _PEGASUS_CACHE:
        _PEGASUS_CACHE[target_m] = pegasus_graph(target_m)
    return target_m, _PEGASUS_CACHE[target_m]


def _embedding_stats(
    pipeline: JoinOrderQuantumPipeline,
    samples: int,
    seed: int,
    tries: int = 2,
) -> Tuple[Optional[float], float, int]:
    """(mean physical qubits, success rate, logical qubits)."""
    source = pipeline.bqm.interaction_graph()
    _, target = _pegasus_window(source.number_of_nodes())
    rng = np.random.default_rng(seed)
    physical = []
    for _ in range(samples):
        result = find_embedding(
            source,
            target,
            tries=tries,
            seed=int(rng.integers(0, 2**31)),
            stop_at_first=True,
        )
        if result is not None:
            physical.append(result.num_physical_qubits)
    rate = len(physical) / samples if samples else 0.0
    mean = float(np.mean(physical)) if physical else None
    return mean, rate, source.number_of_nodes()


def _figure14_left_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Embedding stats for one (relations, P/J) configuration."""
    t = params["relations"]
    multiple = params["predicate_multiple"]
    graph = uniform_query(
        t, multiple * (t - 1), cardinality=10.0, seed=params["instance_seed"]
    )
    pipeline = JoinOrderQuantumPipeline(
        graph, thresholds=[10.0], precision_exponent=0, prune_thresholds=False
    )
    mean, rate, logical = _embedding_stats(pipeline, params["samples"], seed)
    return {
        "relations": t,
        "P/J": multiple,
        "logical qubits": logical,
        "mean physical qubits": (
            round(mean, 1) if mean is not None else "unreliable"
        ),
        "success rate": round(rate, 2),
    }


def run_figure14_left(
    relation_counts: Optional[Sequence[int]] = None,
    predicate_multiples: Optional[Sequence[int]] = None,
    samples: Optional[int] = None,
    seed: int = 31,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Figure 14 (left): physical qubits vs relations and predicates."""
    workers = resolve_workers(workers)
    samples = samples or bench_samples(2)
    full = bench_scale() == "full"
    if relation_counts is None:
        relation_counts = (6, 8, 10, 12, 14) if full else (5, 6)
    if predicate_multiples is None:
        predicate_multiples = (1, 2, 3) if full else (1, 2)
    table = ExperimentTable(
        title="Figure 14 (left) - physical qubits on Pegasus P16",
        columns=[
            "relations",
            "P/J",
            "logical qubits",
            "mean physical qubits",
            "success rate",
        ],
        notes=(
            "Paper shape: physical demand grows superlinearly with relations "
            "and predicates; embeddings stop being reliable around 14 "
            "relations for P=J (10 for P=3J)."
        ),
    )
    points = [
        {
            "relations": t,
            "predicate_multiple": multiple,
            "samples": samples,
            "instance_seed": seed,
        }
        for t in relation_counts
        for multiple in predicate_multiples
        # skip configurations with more predicates than relation pairs
        if multiple * (t - 1) <= t * (t - 1) // 2
    ]
    results = run_grid(
        points,
        _figure14_left_point,
        experiment="fig14-left",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table


def _figure14_right_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Embedding stats for one (thresholds, ω) configuration."""
    r = params["thresholds"]
    thresholds = [10.0 * (2.0 ** k) for k in range(r)]
    graph = uniform_query(
        params["relations"], params["relations"] - 1, seed=params["instance_seed"]
    )
    pipeline = JoinOrderQuantumPipeline(
        graph,
        thresholds=thresholds,
        precision_exponent=params["precision_exponent"],
        prune_thresholds=False,
    )
    mean, rate, logical = _embedding_stats(pipeline, params["samples"], seed)
    return {
        "thresholds": r,
        "omega": params["omega"],
        "logical qubits": logical,
        "mean physical qubits": (
            round(mean, 1) if mean is not None else "unreliable"
        ),
        "success rate": round(rate, 2),
    }


def run_figure14_right(
    threshold_counts: Optional[Sequence[int]] = None,
    omegas: Sequence[float] = (1.0, 0.01, 0.0001),
    num_relations: Optional[int] = None,
    samples: Optional[int] = None,
    seed: int = 37,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Figure 14 (right): physical qubits vs thresholds and ω.

    The paper uses T = 8; the trimmed default grid drops to T = 6 so
    the suite stays laptop-sized (``REPRO_BENCH_SCALE=full`` restores
    the paper's configuration).
    """
    workers = resolve_workers(workers)
    samples = samples or bench_samples(2)
    if threshold_counts is None:
        threshold_counts = (1, 3, 5, 7) if bench_scale() == "full" else (1, 2)
    if num_relations is None:
        num_relations = 8 if bench_scale() == "full" else 5
    table = ExperimentTable(
        title=(
            f"Figure 14 (right) - physical qubits vs thresholds and ω "
            f"(T={num_relations}, P=J)"
        ),
        columns=[
            "thresholds",
            "omega",
            "logical qubits",
            "mean physical qubits",
            "success rate",
        ],
        notes=(
            "Paper shape: more thresholds / smaller ω sharply raise physical "
            "demand (ω=1: 898 → 1845 from 1 to 7 thresholds); ω=0.0001 "
            "becomes unreliable beyond ~4 thresholds."
        ),
    )
    exponents = {1.0: 0, 0.01: 2, 0.0001: 4}
    points = [
        {
            "thresholds": r,
            "omega": omega,
            "precision_exponent": exponents[omega],
            "relations": num_relations,
            "samples": samples,
            "instance_seed": seed,
        }
        for r in threshold_counts
        for omega in omegas
    ]
    results = run_grid(
        points,
        _figure14_right_point,
        experiment="fig14-right",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table
