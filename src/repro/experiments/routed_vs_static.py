"""Routed vs static fallback chains under a deadline sweep.

The static service chain runs the same strongest-first stage order for
every request, no matter how tight the deadline is; the router
(:mod:`repro.routing`) predicts each stage's runtime from cheap problem
features and reorders/rebudgets the chain per request.  This experiment
serves the *same* deterministic mixed MQO + SQL (+ join-graph) workload
through both services at several deadlines and reports, per deadline:

* the deadline-miss rate of each arm,
* the geometric-mean plan-cost ratio routed/static over requests both
  arms answered validly (1.0 = identical quality, <1 = routed cheaper),
* where the routed requests were served, and
* the router's own error accounting (mean per-stage prediction error
  and median regret) pulled from the routed service's ``stats()``.

The acceptance shape: at tight deadlines the routed arm should miss
less (it refuses to lead with stages predicted to blow the budget)
while the cost ratio stays at or below ~1.0 once deadlines are loose
enough for both arms to run their best stage.

Rows contain wall-clock-derived quantities (runtimes feed the model),
so unlike most experiments here the miss counts are *measured*, not
derived — identical across reruns only in the plans themselves.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Sequence

from repro.experiments.common import ExperimentTable
from repro.harness import extend_table, resolve_workers, run_grid


def _served_by_summary(results) -> str:
    counts: Dict[str, int] = {}
    for result in results:
        counts[result.served_by] = counts.get(result.served_by, 0) + 1
    return " ".join(f"{stage}={n}" for stage, n in sorted(counts.items()))


def _mean_prediction_error(routing_stats: Dict[str, Any]) -> Optional[float]:
    total = 0.0
    count = 0
    for hist in routing_stats.get("prediction_error_ms", {}).values():
        n = int(hist.get("count", 0))
        if n:
            total += float(hist.get("mean", 0.0)) * n
            count += n
    return (total / count) if count else None


def _routed_vs_static_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One deadline: the same workload through a static and a routed service."""
    from repro.routing import RoutingPolicy
    from repro.service import OptimizationService, synthetic_requests

    def _stream(stream_seed: int):
        # sizes deliberately span the discriminating band where the
        # strongest stage takes tens of ms: tight deadlines force a
        # real choice between plan quality and answering in time
        return synthetic_requests(
            params["requests"],
            seed=stream_seed,
            deadline_ms=params["deadline_ms"],
            mqo_fraction=params["mqo_fraction"],
            duplicate_fraction=0.0,
            sql_fraction=params["sql_fraction"],
            queries_range=(6, 12),
            plans_per_query_range=(2, 4),
            relations_range=(5, 9),
            sql_tables_range=(3, 8),
        )

    requests = _stream(params["workload_seed"])
    static = OptimizationService(seed=seed)
    routed = OptimizationService(seed=seed, routing=RoutingPolicy())
    # warm the router's cost model on a *disjoint* stream from the same
    # distribution (fresh problem seeds → no cache overlap with the
    # measured stream), the steady state a deployed router runs in; the
    # static chain has no state to warm
    for request in _stream(params["workload_seed"] + 1):
        routed.optimize(request)
    routed.metrics.reset()
    static_results = [static.optimize(request) for request in requests]
    routed_results = [routed.optimize(request) for request in requests]

    static_miss = sum(1 for r in static_results if r.deadline_exceeded)
    routed_miss = sum(1 for r in routed_results if r.deadline_exceeded)
    # quality is only comparable where both arms actually met the
    # deadline — a plan delivered late is an SLO miss, not a data point
    # about plan quality
    log_ratios = [
        math.log(r.cost / s.cost)
        for s, r in zip(static_results, routed_results)
        if s.valid and r.valid and s.cost > 0 and r.cost > 0
        and not s.deadline_exceeded and not r.deadline_exceeded
    ]
    cost_ratio = (
        math.exp(sum(log_ratios) / len(log_ratios)) if log_ratios else None
    )
    routing_stats = routed.stats().get("routing", {})
    regret = routing_stats.get("regret_ms", {})
    n = len(requests)
    return {
        "deadline ms": params["deadline_ms"],
        "requests": n,
        "static miss": static_miss,
        "routed miss": routed_miss,
        "static miss%": round(static_miss / n, 4) if n else 0.0,
        "routed miss%": round(routed_miss / n, 4) if n else 0.0,
        "cost ratio": None if cost_ratio is None else round(cost_ratio, 4),
        "routed served by": _served_by_summary(routed_results),
        "pred err ms": (
            None
            if (err := _mean_prediction_error(routing_stats)) is None
            else round(err, 3)
        ),
        "regret p50 ms": (
            round(float(regret["p50"]), 3) if regret.get("count") else None
        ),
    }


def run_routed_vs_static(
    seed: int = 29,
    requests: int = 32,
    deadlines: Sequence[float] = (10.0, 25.0, 60.0, 150.0, 400.0),
    mqo_fraction: float = 0.6,
    sql_fraction: float = 0.4,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Deadline sweep: learned per-request routing vs the static chain.

    Each grid point replays an identical mixed workload (``requests``
    requests; ``sql_fraction`` arriving as raw SQL text, most of the
    rest MQO instances, remainder join graphs) through two services
    sharing every seed — only the routing policy differs.  ``cost
    ratio`` is the geometric mean of routed/static plan cost over
    requests both arms answered validly *within* the deadline.
    """
    workers = resolve_workers(workers)
    table = ExperimentTable(
        title="Routed vs static chains: deadline-miss rate and plan quality "
        "across a deadline sweep",
        columns=[
            "deadline ms", "requests", "static miss", "routed miss",
            "static miss%", "routed miss%", "cost ratio", "routed served by",
            "pred err ms", "regret p50 ms",
        ],
        notes="cost ratio: geometric-mean routed/static plan cost over "
        "requests both arms answered validly within the deadline "
        "(<= 1.0 means routing never pays quality for its latency wins).",
    )
    points = [
        {
            "deadline_ms": float(deadline),
            "requests": requests,
            "workload_seed": seed + 1000,
            "mqo_fraction": mqo_fraction,
            "sql_fraction": sql_fraction,
        }
        for deadline in deadlines
    ]
    results = run_grid(
        points,
        _routed_vs_static_point,
        experiment="routed-vs-static",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table
