"""Solution-quality sanity checks (beyond the paper's scope).

The paper evaluates only *solvable problem dimensions*, explicitly not
solution quality (Sec. 2).  This experiment closes that gap for the
reproduction: on instances small enough for exact reference solutions,
every solver path must land on (or near) the optimum — evidence that
the QUBO encodings are semantically correct end to end.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.experiments.common import ExperimentTable
from repro.harness import extend_table, resolve_workers, run_grid
from repro.joinorder.generators import chain_query, star_query
from repro.joinorder.classical import (
    solve_dp_left_deep,
    solve_genetic as jo_genetic,
    solve_greedy,
    solve_simulated_annealing as jo_sa,
)
from repro.joinorder.pipeline import JoinOrderQuantumPipeline
from repro.mqo.generator import random_mqo_problem
from repro.mqo.solvers import (
    solve_exhaustive,
    solve_genetic,
    solve_greedy_local,
    solve_with_annealer,
    solve_with_minimum_eigen,
)
from repro.variational import QAOA, Cobyla, NumPyMinimumEigensolver

_MQO_SOLVERS = (
    "greedy (local)",
    "genetic",
    "simulated annealing",
    "exact eigensolver",
    "qaoa (p=1)",
)


def _mqo_quality_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One MQO solver path vs the exhaustive optimum.

    Instance and solver seeds come from the shared ``instance_seed`` so
    every solver attacks the identical problem (and rows match the
    historical serial driver exactly).
    """
    instance_seed = params["instance_seed"]
    problem = random_mqo_problem(3, 3, seed=instance_seed)
    optimum = solve_exhaustive(problem)
    name = params["solver"]
    if name == "greedy (local)":
        solution = solve_greedy_local(problem)
    elif name == "genetic":
        solution = solve_genetic(problem, seed=instance_seed)
    elif name == "simulated annealing":
        solution = solve_with_annealer(problem, seed=instance_seed)
    elif name == "exact eigensolver":
        solution = solve_with_minimum_eigen(
            problem, NumPyMinimumEigensolver(), max_qubits=16
        )
    else:  # qaoa (p=1)
        solution = solve_with_minimum_eigen(
            problem,
            QAOA(optimizer=Cobyla(maxiter=150), seed=instance_seed),
            max_qubits=16,
        )
    return {
        "solver": name,
        "cost": round(solution.cost, 2),
        "optimal?": abs(solution.cost - optimum.cost) < 1e-6,
    }


def run_mqo_quality(
    seed: int = 41,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """MQO: all solver paths vs the exhaustive optimum."""
    workers = resolve_workers(workers)
    optimum = solve_exhaustive(random_mqo_problem(3, 3, seed=seed))
    table = ExperimentTable(
        title="MQO solution quality (3 queries x 3 plans)",
        columns=["solver", "cost", "optimal?"],
        notes=f"Exhaustive optimum: {optimum.cost:.2f}.",
    )
    points = [
        {"solver": name, "instance_seed": seed} for name in _MQO_SOLVERS
    ]
    results = run_grid(
        points,
        _mqo_quality_point,
        experiment="quality-mqo",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table


_JO_WORKLOADS = ("chain(5)", "star(5)")
_JO_SOLVERS = (
    "dp (optimal)",
    "greedy",
    "genetic",
    "sim annealing (perm)",
    "qubo + annealer",
    "ikkbz (tree queries)",
)


def _jo_graph(workload: str, seed: int):
    maker = chain_query if workload.startswith("chain") else star_query
    return maker(5, seed=seed)


def _jo_quality_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One (workload, solver) pair vs the DP optimum."""
    instance_seed = params["instance_seed"]
    graph = _jo_graph(params["workload"], instance_seed)
    reference = solve_dp_left_deep(graph)
    name = params["solver"]
    if name == "dp (optimal)":
        result = reference
    elif name == "greedy":
        result = solve_greedy(graph)
    elif name == "genetic":
        result = jo_genetic(graph, seed=instance_seed)
    elif name == "sim annealing (perm)":
        result = jo_sa(graph, seed=instance_seed)
    elif name == "qubo + annealer":
        pipeline = JoinOrderQuantumPipeline(graph, precision_exponent=0)
        result = pipeline.solve_with_annealer(num_reads=100, seed=instance_seed)
    else:  # ikkbz (tree queries)
        from repro.joinorder.ikkbz import solve_ikkbz

        result = solve_ikkbz(graph)
    return {
        "workload": params["workload"],
        "solver": name,
        "cost": round(result.cost, 1),
        "ratio to DP": round(result.cost / reference.cost, 3),
    }


def run_join_order_quality(
    seed: int = 43,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Join ordering: classical baselines + annealed QUBO vs DP."""
    workers = resolve_workers(workers)
    table = ExperimentTable(
        title="Join-ordering solution quality",
        columns=["workload", "solver", "cost", "ratio to DP"],
    )
    points = []
    for workload in _JO_WORKLOADS:
        graph = _jo_graph(workload, seed)
        for name in _JO_SOLVERS:
            if name == "ikkbz (tree queries)" and not (
                graph.num_predicates == graph.num_joins and graph.is_connected()
            ):
                continue
            points.append(
                {"workload": workload, "solver": name, "instance_seed": seed}
            )
    results = run_grid(
        points,
        _jo_quality_point,
        experiment="quality-join",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table
