"""Solution-quality sanity checks (beyond the paper's scope).

The paper evaluates only *solvable problem dimensions*, explicitly not
solution quality (Sec. 2).  This experiment closes that gap for the
reproduction: on instances small enough for exact reference solutions,
every solver path must land on (or near) the optimum — evidence that
the QUBO encodings are semantically correct end to end.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentTable
from repro.joinorder.generators import chain_query, star_query
from repro.joinorder.classical import (
    solve_dp_left_deep,
    solve_genetic as jo_genetic,
    solve_greedy,
    solve_simulated_annealing as jo_sa,
)
from repro.joinorder.pipeline import JoinOrderQuantumPipeline
from repro.mqo.generator import random_mqo_problem
from repro.mqo.solvers import (
    solve_exhaustive,
    solve_genetic,
    solve_greedy_local,
    solve_with_annealer,
    solve_with_minimum_eigen,
)
from repro.variational import QAOA, Cobyla, NumPyMinimumEigensolver


def run_mqo_quality(seed: int = 41) -> ExperimentTable:
    """MQO: all solver paths vs the exhaustive optimum."""
    problem = random_mqo_problem(3, 3, seed=seed)
    optimum = solve_exhaustive(problem)
    table = ExperimentTable(
        title="MQO solution quality (3 queries x 3 plans)",
        columns=["solver", "cost", "optimal?"],
        notes=f"Exhaustive optimum: {optimum.cost:.2f}.",
    )
    solutions = {
        "greedy (local)": solve_greedy_local(problem),
        "genetic": solve_genetic(problem, seed=seed),
        "simulated annealing": solve_with_annealer(problem, seed=seed),
        "exact eigensolver": solve_with_minimum_eigen(
            problem, NumPyMinimumEigensolver(), max_qubits=16
        ),
        "qaoa (p=1)": solve_with_minimum_eigen(
            problem, QAOA(optimizer=Cobyla(maxiter=150), seed=seed), max_qubits=16
        ),
    }
    for name, solution in solutions.items():
        table.add_row(
            solver=name,
            cost=round(solution.cost, 2),
            **{"optimal?": abs(solution.cost - optimum.cost) < 1e-6},
        )
    return table


def run_join_order_quality(seed: int = 43) -> ExperimentTable:
    """Join ordering: classical baselines + annealed QUBO vs DP."""
    table = ExperimentTable(
        title="Join-ordering solution quality",
        columns=["workload", "solver", "cost", "ratio to DP"],
    )
    workloads = {
        "chain(5)": chain_query(5, seed=seed),
        "star(5)": star_query(5, seed=seed),
    }
    for label, graph in workloads.items():
        reference = solve_dp_left_deep(graph)
        pipeline = JoinOrderQuantumPipeline(graph, precision_exponent=0)
        results = {
            "dp (optimal)": reference,
            "greedy": solve_greedy(graph),
            "genetic": jo_genetic(graph, seed=seed),
            "sim annealing (perm)": jo_sa(graph, seed=seed),
            "qubo + annealer": pipeline.solve_with_annealer(
                num_reads=100, seed=seed
            ),
        }
        if graph.num_predicates == graph.num_joins and graph.is_connected():
            from repro.joinorder.ikkbz import solve_ikkbz

            results["ikkbz (tree queries)"] = solve_ikkbz(graph)
        for name, result in results.items():
            table.add_row(
                workload=label,
                solver=name,
                cost=round(result.cost, 1),
                **{"ratio to DP": round(result.cost / reference.cost, 3)},
            )
    return table
