"""Tables 1–3: the paper's worked examples.

* Tables 1/2 — the 3-query / 8-plan MQO instance whose locally-optimal
  plan choice costs 26 while the global optimum (plans 2, 4, 8) costs
  21;
* Table 3 — the R/S/T join-ordering example with per-order C_out
  costs 51,000 / 60,000 / 100,000.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.experiments.common import ExperimentTable
from repro.harness import extend_table, resolve_workers, run_grid
from repro.joinorder import cout_cost, solve_dp_left_deep
from repro.joinorder.generators import paper_example_graph
from repro.mqo import (
    paper_example_problem,
    solve_exhaustive,
    solve_greedy_local,
)


def _tables12_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One Tables 1/2 strategy: locally or globally optimal plans."""
    problem = paper_example_problem()
    if params["strategy"] == "local":
        solution = solve_greedy_local(problem)
        label = "locally optimal (per query)"
    else:
        solution = solve_exhaustive(problem)
        label = "globally optimal (MQO)"
    return {
        "strategy": label,
        "selected plans": solution.selected_plans,
        "total cost": solution.cost,
    }


def run_tables_1_2(
    seed: int = 0,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Reproduce the MQO example of Tables 1 and 2."""
    workers = resolve_workers(workers)
    table = ExperimentTable(
        title="Tables 1/2 - MQO example (3 queries, 8 plans, 5 savings)",
        columns=["strategy", "selected plans", "total cost"],
        notes="Paper: locally optimal = plans (1,4,6) cost 26; "
        "global optimum = plans (2,4,8) cost 21.",
    )
    points = [{"strategy": "local"}, {"strategy": "global"}]
    results = run_grid(
        points,
        _tables12_point,
        experiment="tables12",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table


def _table3_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """C_out of one left-deep order of the R/S/T query."""
    graph = paper_example_graph()
    order = tuple(params["order"])
    return {"join order": " ⋈ ".join(order), "cost": cout_cost(graph, order)}


def run_table_3(
    seed: int = 0,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Reproduce the join-order cost calculation of Table 3."""
    workers = resolve_workers(workers)
    table = ExperimentTable(
        title="Table 3 - C_out of each left-deep order for the R/S/T query",
        columns=["join order", "cost"],
        notes="Paper: (R⋈S)⋈T = 51,000; (R⋈T)⋈S = 60,000; (S⋈T)⋈R = 100,000.",
    )
    points = [
        {"order": list(order)}
        for order in (("R", "S", "T"), ("R", "T", "S"), ("S", "T", "R"))
    ]
    results = run_grid(
        points,
        _table3_point,
        experiment="table3",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    best = solve_dp_left_deep(paper_example_graph())
    table.notes += f"\nDP optimum: {' ⋈ '.join(best.order)} = {best.cost:,.0f}."
    return table
