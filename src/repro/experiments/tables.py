"""Tables 1–3: the paper's worked examples.

* Tables 1/2 — the 3-query / 8-plan MQO instance whose locally-optimal
  plan choice costs 26 while the global optimum (plans 2, 4, 8) costs
  21;
* Table 3 — the R/S/T join-ordering example with per-order C_out
  costs 51,000 / 60,000 / 100,000.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentTable
from repro.joinorder import cout_cost, solve_dp_left_deep
from repro.joinorder.generators import paper_example_graph
from repro.mqo import (
    paper_example_problem,
    solve_exhaustive,
    solve_greedy_local,
)


def run_tables_1_2() -> ExperimentTable:
    """Reproduce the MQO example of Tables 1 and 2."""
    problem = paper_example_problem()
    table = ExperimentTable(
        title="Tables 1/2 - MQO example (3 queries, 8 plans, 5 savings)",
        columns=["strategy", "selected plans", "total cost"],
        notes="Paper: locally optimal = plans (1,4,6) cost 26; "
        "global optimum = plans (2,4,8) cost 21.",
    )
    greedy = solve_greedy_local(problem)
    optimal = solve_exhaustive(problem)
    table.add_row(
        strategy="locally optimal (per query)",
        **{"selected plans": greedy.selected_plans, "total cost": greedy.cost},
    )
    table.add_row(
        strategy="globally optimal (MQO)",
        **{"selected plans": optimal.selected_plans, "total cost": optimal.cost},
    )
    return table


def run_table_3() -> ExperimentTable:
    """Reproduce the join-order cost calculation of Table 3."""
    graph = paper_example_graph()
    table = ExperimentTable(
        title="Table 3 - C_out of each left-deep order for the R/S/T query",
        columns=["join order", "cost"],
        notes="Paper: (R⋈S)⋈T = 51,000; (R⋈T)⋈S = 60,000; (S⋈T)⋈R = 100,000.",
    )
    for order in (("R", "S", "T"), ("R", "T", "S"), ("S", "T", "R")):
        table.add_row(
            **{"join order": " ⋈ ".join(order), "cost": cout_cost(graph, order)}
        )
    best = solve_dp_left_deep(graph)
    table.notes += f"  DP optimum: {' ⋈ '.join(best.order)} = {best.cost:,.0f}."
    return table
