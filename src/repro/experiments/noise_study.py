"""Extension experiment: observing the coherence cliff (Eq. 36/37).

The paper argues analytically that circuits deeper than
``d_max = min(T1,T2)/g_avg`` cannot be executed reliably.  This
experiment *simulates* that claim: the same small MQO instance is
solved by QAOA with increasing repetition counts p (deeper and deeper
circuits); each optimal circuit is then executed under the stochastic
noise model with Mumbai-style decoherence, and the probability of
measuring the true optimum is recorded.

Expected shape: noiseless success probability grows (or holds) with p,
while the noisy success probability decays with the circuit depth —
the depth-vs-fidelity trade-off that makes the paper fix p = 1.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.experiments.common import ExperimentTable
from repro.gate.backend import fake_mumbai
from repro.gate.noise import NoiseModel, sample_with_noise
from repro.harness import extend_table, resolve_workers, run_grid
from repro.mqo.generator import random_mqo_problem
from repro.mqo.qubo import MqoQuboBuilder
from repro.variational import QAOA, Cobyla
from repro.variational.hamiltonian import IsingHamiltonian
from repro.variational.minimum_eigen import MinimumEigenOptimizer


def _noise_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Success probabilities of one QAOA depth (repetition count p).

    The MQO instance and the QAOA optimization are seeded from the
    shared ``instance_seed`` so every p solves the *same* problem; only
    the noisy sampling uses the harness-derived per-point seed.
    """
    instance_seed = params["instance_seed"]
    reps = params["p"]
    shots = params["shots"]

    problem = random_mqo_problem(2, 2, seed=instance_seed)
    builder = MqoQuboBuilder(problem)
    bqm = builder.build()
    hamiltonian = IsingHamiltonian.from_bqm(bqm)
    ground_index, _ = hamiltonian.ground_state()

    properties = fake_mumbai().properties
    # amplified decoherence: the demo circuit is far shallower than a
    # real MQO circuit, so the gate time is scaled to land the deeper
    # variants beyond the coherence knee while keeping p=1 viable
    scaled = type(properties)(
        t1_ns=properties.t1_ns,
        t2_ns=properties.t2_ns,
        avg_gate_time_ns=properties.avg_gate_time_ns * 15,
    )
    noise = NoiseModel(gate_error=2e-3, readout_error=0.01, properties=scaled)

    solver = QAOA(optimizer=Cobyla(maxiter=150), reps=reps, seed=instance_seed)
    result = MinimumEigenOptimizer(solver).solve(bqm)
    circuit = result.optimal_circuit
    depth = circuit.depth()

    rng = np.random.default_rng(seed)
    clean_counts = sample_with_noise(
        circuit, NoiseModel(), shots=shots, trajectories=1,
        seed=int(rng.integers(2**31)),
    )
    noisy_counts = sample_with_noise(
        circuit, noise, shots=shots, trajectories=params["trajectories"],
        seed=int(rng.integers(2**31)),
    )

    def success(counts) -> float:
        hits = sum(c for b, c in counts.items() if int(b, 2) == ground_index)
        return hits / max(sum(counts.values()), 1)

    clean = success(clean_counts)
    noisy = success(noisy_counts)
    return {
        "p": reps,
        "depth": depth,
        "p_decoherence": round(noise.decoherence_probability(depth), 3),
        "success noiseless": round(clean, 3),
        "success noisy": round(noisy, 3),
        "retention": round(noisy / clean, 3) if clean > 0 else 0.0,
    }


def run_noise_study(
    reps_values=(1, 2, 3),
    shots: int = 512,
    trajectories: int = 6,
    seed: int = 17,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Success probability of QAOA under decoherence vs circuit depth."""
    workers = resolve_workers(workers)
    table = ExperimentTable(
        title="Noise study - QAOA success probability vs depth (Eq. 36)",
        columns=[
            "p",
            "depth",
            "p_decoherence",
            "success noiseless",
            "success noisy",
            "retention",
        ],
        notes=(
            "Shape: deeper circuits accumulate decoherence (Eq. 36), so "
            "the fraction of the noiseless success probability that "
            "survives noise (retention) decays with depth — the paper's "
            "reason to keep p = 1 on NISQ devices."
        ),
    )
    points = [
        {
            "p": reps,
            "shots": shots,
            "trajectories": trajectories,
            "instance_seed": seed,
        }
        for reps in reps_values
    ]
    results = run_grid(
        points,
        _noise_point,
        experiment="noise",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table
