"""Extension experiment: direct vs two-step join-ordering QUBO.

The paper's outlook (Sec. 7) conjectures a direct QUBO conversion
"has the potential to be more efficient in terms of required qubits".
This experiment quantifies that: for growing query sizes, it compares

* the paper's two-step encoding (MILP → BILP → QUBO, Sec. 6.1) and
* the direct permutation-matrix encoding
  (:mod:`repro.joinorder.direct_qubo`)

on qubit count and QUBO density, and checks each encoding's solution
quality through simulated annealing against the exact DP baseline.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentTable
from repro.joinorder.classical import solve_dp_left_deep
from repro.joinorder.direct_qubo import DirectJoinOrderQubo, solve_direct_with_annealer
from repro.joinorder.generators import chain_query
from repro.joinorder.pipeline import JoinOrderQuantumPipeline


def run_direct_vs_two_step(
    relation_counts: Sequence[int] = (4, 5, 6, 7, 8),
    solve_up_to: int = 6,
    seed: int = 61,
) -> ExperimentTable:
    """Compare the two encodings on chain queries."""
    table = ExperimentTable(
        title="Extension - direct vs two-step join-ordering QUBO",
        columns=[
            "relations",
            "two-step qubits",
            "direct qubits",
            "saving %",
            "two-step quad",
            "direct quad",
            "direct cost ratio",
        ],
        notes=(
            "Validates the paper's Sec. 7 conjecture: a direct encoding "
            "needs T^2 qubits vs the two-step's slack-heavy budget. "
            "'direct cost ratio' is annealed solution cost / DP optimum "
            "(the direct encoding optimises a log-domain surrogate)."
        ),
    )
    for t in relation_counts:
        graph = chain_query(t, seed=seed)
        two_step = JoinOrderQuantumPipeline(
            graph, precision_exponent=0, prune_thresholds=False
        )
        two_report = two_step.report()
        direct = DirectJoinOrderQubo(graph)
        direct_bqm = direct.build()
        ratio: object = "-"
        if t <= solve_up_to:
            reference = solve_dp_left_deep(graph)
            solution = solve_direct_with_annealer(direct, num_reads=80, seed=seed)
            ratio = round(solution.cost / reference.cost, 3)
        saving = 1.0 - direct.num_qubits / two_report.num_qubits
        table.add_row(
            relations=t,
            **{
                "two-step qubits": two_report.num_qubits,
                "direct qubits": direct.num_qubits,
                "saving %": round(100 * saving, 1),
                "two-step quad": two_report.num_quadratic_terms,
                "direct quad": direct_bqm.num_interactions,
                "direct cost ratio": ratio,
            },
        )
    return table
