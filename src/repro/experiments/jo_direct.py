"""Extension experiment: direct vs two-step join-ordering QUBO.

The paper's outlook (Sec. 7) conjectures a direct QUBO conversion
"has the potential to be more efficient in terms of required qubits".
This experiment quantifies that: for growing query sizes, it compares

* the paper's two-step encoding (MILP → BILP → QUBO, Sec. 6.1) and
* the direct permutation-matrix encoding
  (:mod:`repro.joinorder.direct_qubo`)

on qubit count and QUBO density, and checks each encoding's solution
quality through simulated annealing against the exact DP baseline.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.experiments.common import ExperimentTable
from repro.harness import extend_table, resolve_workers, run_grid
from repro.joinorder.classical import solve_dp_left_deep
from repro.joinorder.direct_qubo import DirectJoinOrderQubo, solve_direct_with_annealer
from repro.joinorder.generators import chain_query
from repro.joinorder.pipeline import JoinOrderQuantumPipeline


def _direct_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Both encodings on one chain query size.

    The chain instance and annealing run are seeded from the shared
    ``instance_seed`` so the comparison matches the historical serial
    driver row for row.
    """
    t = params["relations"]
    instance_seed = params["instance_seed"]
    graph = chain_query(t, seed=instance_seed)
    two_step = JoinOrderQuantumPipeline(
        graph, precision_exponent=0, prune_thresholds=False
    )
    two_report = two_step.report()
    direct = DirectJoinOrderQubo(graph)
    direct_bqm = direct.build()
    ratio: Any = "-"
    if t <= params["solve_up_to"]:
        reference = solve_dp_left_deep(graph)
        solution = solve_direct_with_annealer(
            direct, num_reads=80, seed=instance_seed
        )
        ratio = round(solution.cost / reference.cost, 3)
    saving = 1.0 - direct.num_qubits / two_report.num_qubits
    return {
        "relations": t,
        "two-step qubits": two_report.num_qubits,
        "direct qubits": direct.num_qubits,
        "saving %": round(100 * saving, 1),
        "two-step quad": two_report.num_quadratic_terms,
        "direct quad": direct_bqm.num_interactions,
        "direct cost ratio": ratio,
    }


def run_direct_vs_two_step(
    relation_counts: Sequence[int] = (4, 5, 6, 7, 8),
    solve_up_to: int = 6,
    seed: int = 61,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Compare the two encodings on chain queries."""
    workers = resolve_workers(workers)
    table = ExperimentTable(
        title="Extension - direct vs two-step join-ordering QUBO",
        columns=[
            "relations",
            "two-step qubits",
            "direct qubits",
            "saving %",
            "two-step quad",
            "direct quad",
            "direct cost ratio",
        ],
        notes=(
            "Validates the paper's Sec. 7 conjecture: a direct encoding "
            "needs T^2 qubits vs the two-step's slack-heavy budget. "
            "'direct cost ratio' is annealed solution cost / DP optimum "
            "(the direct encoding optimises a log-domain surrogate)."
        ),
    )
    points = [
        {"relations": t, "solve_up_to": solve_up_to, "instance_seed": seed}
        for t in relation_counts
    ]
    results = run_grid(
        points,
        _direct_point,
        experiment="jo-direct",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table
