"""MQO on quantum annealers (paper Sec. 5.3.1 / [Trummer & Koch 2016]).

The paper contrasts IBM-Q's hard 65-qubit ceiling with the D-Wave 2X,
which solved MQO instances of hundreds of plans — but with the *plans
per query* (PPQ) count limiting the total, because each query's E_M
clique densifies the QUBO and lengthens embedding chains.

This experiment reproduces that trade-off on the D-Wave 2X's own
topology, a Chimera ``C(12,12,4)``: for growing total plan counts and
PPQ ∈ {2, 4, 8}, the MQO QUBO is minor-embedded and the physical
qubit demand / success rate recorded.  Expected shape: at a fixed plan
count, higher PPQ needs more physical qubits, and the embeddable plan
ceiling falls as PPQ rises — the Sec. 5.3.1 observation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.annealing.chimera import chimera_graph
from repro.annealing.embedding import find_embedding
from repro.experiments.common import ExperimentTable, bench_samples, bench_scale
from repro.harness import extend_table, resolve_workers, run_grid
from repro.mqo.generator import random_mqo_problem
from repro.mqo.qubo import mqo_to_bqm

_CHIMERA_CACHE: dict = {}


def _dwave_2x():
    if "c12" not in _CHIMERA_CACHE:
        _CHIMERA_CACHE["c12"] = chimera_graph(12, 12, 4)
    return _CHIMERA_CACHE["c12"]


def _capacity_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Embedding stats of one (plans, ppq) MQO instance on the 2X."""
    plans, ppq = params["plans"], params["ppq"]
    samples = params["samples"]
    rng = np.random.default_rng(seed)
    problem = random_mqo_problem(
        plans // ppq, ppq, savings_density=0.15, seed=int(rng.integers(0, 2**31))
    )
    bqm = mqo_to_bqm(problem)
    source = bqm.interaction_graph()
    target = _dwave_2x()
    physical = []
    for _ in range(samples):
        result = find_embedding(
            source, target, tries=1, seed=int(rng.integers(0, 2**31))
        )
        if result is not None:
            physical.append(result.num_physical_qubits)
    return {
        "plans": plans,
        "ppq": ppq,
        "quadratic terms": bqm.num_interactions,
        "mean physical qubits": (
            round(float(np.mean(physical)), 1) if physical else "unreliable"
        ),
        "success rate": round(len(physical) / samples, 2),
    }


def run_mqo_annealer_capacity(
    plan_counts: Optional[Sequence[int]] = None,
    ppq_values: Sequence[int] = (2, 4, 8),
    samples: Optional[int] = None,
    seed: int = 53,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Physical qubits / reliability of MQO embeddings on a D-Wave 2X."""
    workers = resolve_workers(workers)
    samples = samples or bench_samples(2)
    if plan_counts is None:
        plan_counts = (16, 32, 48, 64) if bench_scale() == "full" else (16, 32)
    table = ExperimentTable(
        title="MQO embedding capacity on the D-Wave 2X (Chimera C12)",
        columns=[
            "plans",
            "ppq",
            "quadratic terms",
            "mean physical qubits",
            "success rate",
        ],
        notes=(
            "Paper Sec. 5.3.1 shape: at fixed total plans, higher PPQ "
            "inflates the QUBO density and the physical-qubit demand, "
            "lowering the embeddable plan ceiling."
        ),
    )
    points = [
        {"plans": plans, "ppq": ppq, "samples": samples}
        for plans in plan_counts
        for ppq in ppq_values
        if plans % ppq == 0
    ]
    results = run_grid(
        points,
        _capacity_point,
        experiment="mqo-annealer",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table
