"""Maximum reliable circuit depths (paper Eqs. 37 and 55).

Reproduces the coherence arithmetic for both devices the paper
evaluates — d_max = 248 for IBM-Q Mumbai and d_max = 178 for IBM-Q
Brooklyn — plus the decoherence-error probabilities at those depths.
"""

from __future__ import annotations

from repro.analysis.coherence import decoherence_error_probability, max_reliable_depth
from repro.experiments.common import ExperimentTable
from repro.gate.backend import fake_brooklyn, fake_mumbai


def run_coherence_thresholds() -> ExperimentTable:
    """Eqs. 37/55 for the paper's calibration values."""
    table = ExperimentTable(
        title="Coherence thresholds (Eqs. 37/55)",
        columns=[
            "backend",
            "T1 (us)",
            "T2 (us)",
            "avg gate (ns)",
            "d_max",
            "p_err at d_max",
        ],
        notes="Paper: Mumbai d_max = 248; Brooklyn d_max = 178 (≈28% lower).",
    )
    for backend in (fake_mumbai(), fake_brooklyn()):
        props = backend.properties
        d_max = max_reliable_depth(props)
        table.add_row(
            backend=backend.name,
            **{
                "T1 (us)": props.t1_ns / 1000.0,
                "T2 (us)": props.t2_ns / 1000.0,
                "avg gate (ns)": props.avg_gate_time_ns,
                "d_max": d_max,
                "p_err at d_max": round(
                    decoherence_error_probability(props, d_max), 4
                ),
            },
        )
    return table
