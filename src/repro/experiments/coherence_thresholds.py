"""Maximum reliable circuit depths (paper Eqs. 37 and 55).

Reproduces the coherence arithmetic for both devices the paper
evaluates — d_max = 248 for IBM-Q Mumbai and d_max = 178 for IBM-Q
Brooklyn — plus the decoherence-error probabilities at those depths.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.analysis.coherence import decoherence_error_probability, max_reliable_depth
from repro.experiments.common import ExperimentTable
from repro.gate.backend import fake_brooklyn, fake_mumbai
from repro.harness import extend_table, resolve_workers, run_grid

_BACKENDS = {"mumbai": fake_mumbai, "brooklyn": fake_brooklyn}


def _coherence_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Eqs. 37/55 for one backend's calibration values."""
    backend = _BACKENDS[params["backend"]]()
    props = backend.properties
    d_max = max_reliable_depth(props)
    return {
        "backend": backend.name,
        "T1 (us)": props.t1_ns / 1000.0,
        "T2 (us)": props.t2_ns / 1000.0,
        "avg gate (ns)": props.avg_gate_time_ns,
        "d_max": d_max,
        "p_err at d_max": round(decoherence_error_probability(props, d_max), 4),
    }


def run_coherence_thresholds(
    seed: int = 0,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Eqs. 37/55 for the paper's calibration values."""
    workers = resolve_workers(workers)
    table = ExperimentTable(
        title="Coherence thresholds (Eqs. 37/55)",
        columns=[
            "backend",
            "T1 (us)",
            "T2 (us)",
            "avg gate (ns)",
            "d_max",
            "p_err at d_max",
        ],
        notes="Paper: Mumbai d_max = 248; Brooklyn d_max = 178 (≈28% lower).",
    )
    points = [{"backend": name} for name in ("mumbai", "brooklyn")]
    results = run_grid(
        points,
        _coherence_point,
        experiment="coherence",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table
