"""Shared infrastructure for the experiment drivers."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.exceptions import ConfigurationError


def bench_samples(default: int = 5) -> int:
    """Per-point sample count for stochastic experiments.

    The paper averages 20 samples per data point; the benchmarks
    default lower so the suite runs in minutes.  Override with
    ``REPRO_BENCH_SAMPLES=20`` for paper-fidelity smoothing.
    """
    value = os.environ.get("REPRO_BENCH_SAMPLES")
    if value is None:
        return default
    try:
        parsed = int(value)
    except ValueError as exc:
        raise ConfigurationError(
            f"REPRO_BENCH_SAMPLES must be an integer, got {value!r}"
        ) from exc
    return max(1, parsed)


def bench_scale() -> str:
    """Experiment-grid scale: ``small`` (default) or ``full``.

    ``REPRO_BENCH_SCALE=full`` runs the paper's complete grids (the
    Figure 14 embedding sweep in particular takes tens of minutes).
    """
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@dataclass
class ExperimentTable:
    """A printable experiment result: named columns, row dicts."""

    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        """All values of one column (rows missing the key excluded)."""
        return [row[name] for row in self.rows if name in row]

    def format(self) -> str:
        """Render as an aligned text table."""
        headers = list(self.columns)
        body = [
            [self._fmt(row.get(col, "")) for col in headers] for row in self.rows
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        for r in body:
            lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(headers))))
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float):
            if value == int(value) and abs(value) < 1e15:
                return str(int(value))
            return f"{value:.2f}"
        return str(value)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.format())
