"""Table 4: three join-ordering instances with equal qubit counts but
very different QUBO densities (paper Sec. 6.3.3).

All three instances join 3 relations of cardinality 10 and need 30
logical qubits; they reach that count through different parameters:

* Problem 1 — 3 predicates (ω = 1, one threshold);
* Problem 2 — 4 threshold values (no predicates, ω = 1);
* Problem 3 — precision ω = 0.001 (no predicates, one threshold).

The resulting quadratic-term counts (paper: 70 / 84 / 138) and QAOA
circuit depths (63 / 72 / 99) show that *how* qubits are spent matters:
discretized-slack binaries inflate the QUBO density far more than
predicate variables do.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.analysis.depth import measure_qaoa_depth
from repro.experiments.common import ExperimentTable
from repro.harness import extend_table, resolve_workers, run_grid
from repro.joinorder.generators import uniform_query
from repro.joinorder.pipeline import JoinOrderQuantumPipeline

#: (label, predicates, thresholds, precision exponent)
TABLE4_CONFIGS = (
    ("problem 1", 3, 1, 0),
    ("problem 2", 0, 4, 0),
    ("problem 3", 0, 1, 3),
)


def build_instance(num_predicates: int, num_thresholds: int, precision_exponent: int):
    """One Table 4 pipeline (3 relations, cardinality 10, no pruning)."""
    graph = uniform_query(
        3, num_predicates, cardinality=10.0, selectivity=0.5, seed=1
    )
    thresholds = [10.0 * (2.0 ** r) for r in range(num_thresholds)]
    return JoinOrderQuantumPipeline(
        graph,
        thresholds=thresholds,
        precision_exponent=precision_exponent,
        prune_thresholds=False,
    )


def _table4_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Budget (and optionally QAOA depth) of one Table 4 instance."""
    pipeline = build_instance(
        params["predicates"], params["thresholds"], params["precision_exponent"]
    )
    report = pipeline.report()
    depth: Any = "-"
    if params["measure_depths"]:
        measurement = measure_qaoa_depth(pipeline.bqm, None, samples=1, seed=seed)
        depth = round(measurement.mean_transpiled_depth, 1)
    return {
        "instance": params["instance"],
        "predicates": params["predicates"],
        "thresholds": params["thresholds"],
        "omega": report.omega,
        "qubits": report.num_qubits,
        "quadratic terms": report.num_quadratic_terms,
        "qaoa depth": depth,
    }


def run_table4(
    measure_depths: bool = True,
    seed: int = 7,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Reproduce Table 4's rows."""
    workers = resolve_workers(workers)
    table = ExperimentTable(
        title="Table 4 - three 30-qubit join-ordering instances",
        columns=[
            "instance",
            "predicates",
            "thresholds",
            "omega",
            "qubits",
            "quadratic terms",
            "qaoa depth",
        ],
        notes=(
            "Paper: 30 qubits each; quadratic terms 70 / 84 / 138; QAOA "
            "depths 63 / 72 / 99 (optimal topology)."
        ),
    )
    points = [
        {
            "instance": label,
            "predicates": p,
            "thresholds": r,
            "precision_exponent": exp,
            "measure_depths": bool(measure_depths),
        }
        for label, p, r, exp in TABLE4_CONFIGS
    ]
    results = run_grid(
        points,
        _table4_point,
        experiment="table4",
        seed=seed if seed is not None else 7,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table
