"""Figures 8 and 9: MQO circuit depths on IBM-Q systems.

For randomly generated MQO instances with a fixed number of plans per
query (PPQ), the QAOA (p=1) and VQE circuits are built from the QUBO
of Sec. 5.1 and transpiled onto

* the *optimal topology* (all-to-all, the qasm simulator), and
* the IBM-Q Mumbai heavy-hex topology,

recording mean depths over several instances/transpilations.  The
paper's qualitative findings, which these series reproduce:

* QAOA depth grows with PPQ (denser E_M cliques → more ZZ terms);
* mapping onto Mumbai costs roughly 1–2.5x extra depth for QAOA and
  ~10x for VQE (full-entanglement ansatz);
* VQE depth is independent of PPQ and grows linearly with plan count.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.analysis.depth import measure_qaoa_depth, measure_vqe_depth
from repro.experiments.common import ExperimentTable, bench_samples
from repro.gate.topologies import CouplingMap, mumbai_coupling_map
from repro.harness import extend_table, resolve_workers, run_grid
from repro.mqo.generator import random_mqo_problem
from repro.mqo.qubo import mqo_to_bqm


def _mean_depths(
    num_queries: int,
    ppq: int,
    coupling: Optional[CouplingMap],
    algorithm: str,
    instances: int,
    transpilations: int,
    seed: int,
) -> float:
    rng = np.random.default_rng(seed)
    depths = []
    for _ in range(instances):
        problem = random_mqo_problem(
            num_queries, ppq, seed=int(rng.integers(0, 2**31))
        )
        bqm = mqo_to_bqm(problem)
        if algorithm == "qaoa":
            measurement = measure_qaoa_depth(
                bqm, coupling, samples=transpilations, seed=int(rng.integers(0, 2**31))
            )
        else:
            measurement = measure_vqe_depth(
                bqm, coupling, samples=transpilations, seed=int(rng.integers(0, 2**31))
            )
        depths.append(measurement.mean_transpiled_depth)
    return float(np.mean(depths))


def _figure8_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Mean QAOA depths for one (plans, ppq) grid point.

    The optimal-topology and Mumbai measurements reuse the same seed so
    both transpile the same random instances; the overhead column then
    isolates the routing cost.
    """
    plans, ppq = params["plans"], params["ppq"]
    queries = plans // ppq
    instances = params["instances"]
    optimal = _mean_depths(queries, ppq, None, "qaoa", instances, 1, seed)
    routed = _mean_depths(
        queries,
        ppq,
        mumbai_coupling_map(),
        "qaoa",
        instances,
        params["transpilations"],
        seed,
    )
    return {
        "plans": plans,
        "ppq": ppq,
        "depth optimal": round(optimal, 1),
        "depth mumbai": round(routed, 1),
        "overhead %": round(100.0 * (routed - optimal) / optimal, 1),
    }


def run_figure8(
    ppq_values: Sequence[int] = (2, 4, 8),
    max_plans: int = 24,
    instances: Optional[int] = None,
    transpilations: int = 3,
    seed: int = 11,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Figure 8: QAOA depth vs plan count, PPQ and topology."""
    workers = resolve_workers(workers)
    instances = instances if instances is not None else bench_samples(3)
    table = ExperimentTable(
        title="Figure 8 - MQO QAOA circuit depths (mean)",
        columns=["plans", "ppq", "depth optimal", "depth mumbai", "overhead %"],
        notes=(
            "Paper shape: depth grows with PPQ; Mumbai overhead larger for "
            "denser QUBOs (~116% at 4 PPQ, ~160% at 8 PPQ, 24 plans)."
        ),
    )
    points = []
    for ppq in ppq_values:
        plans = ppq
        while plans <= max_plans:
            points.append(
                {
                    "plans": plans,
                    "ppq": ppq,
                    "instances": instances,
                    "transpilations": transpilations,
                }
            )
            plans += ppq if ppq >= 4 else 2 * ppq
    results = run_grid(
        points,
        _figure8_point,
        experiment="fig8",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table


def _figure9_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """VQE and QAOA mean depths for one plan count."""
    plans = params["plans"]
    transpilations = params["transpilations"]
    instances = params["instances"]
    mumbai = mumbai_coupling_map()
    row: Dict[str, Any] = {"plans": plans}
    row["vqe optimal"] = round(
        _mean_depths(plans // 4, 4, None, "vqe", 1, 1, seed), 1
    )
    row["vqe mumbai"] = round(
        _mean_depths(plans // 4, 4, mumbai, "vqe", 1, transpilations, seed), 1
    )
    for ppq in (4, 8):
        queries = plans // ppq
        row[f"qaoa{ppq} optimal"] = round(
            _mean_depths(queries, ppq, None, "qaoa", instances, 1, seed + ppq), 1
        )
        row[f"qaoa{ppq} mumbai"] = round(
            _mean_depths(
                queries, ppq, mumbai, "qaoa", instances, transpilations, seed + ppq
            ),
            1,
        )
    return row


def run_figure9(
    max_plans: int = 24,
    instances: Optional[int] = None,
    transpilations: int = 3,
    seed: int = 13,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Figure 9: VQE vs QAOA depths on both topologies."""
    workers = resolve_workers(workers)
    instances = instances if instances is not None else bench_samples(3)
    table = ExperimentTable(
        title="Figure 9 - MQO circuit depths, VQE vs QAOA (mean)",
        columns=[
            "plans",
            "vqe optimal",
            "vqe mumbai",
            "qaoa4 optimal",
            "qaoa4 mumbai",
            "qaoa8 optimal",
            "qaoa8 mumbai",
        ],
        notes=(
            "Paper shape: VQE linear in plans and PPQ-independent; mapping "
            "VQE onto Mumbai costs ~10x depth (paper: 97 → ~970 at 24 plans)."
        ),
    )
    points = [
        {"plans": plans, "instances": instances, "transpilations": transpilations}
        for plans in range(8, max_plans + 1, 8)
    ]
    results = run_grid(
        points,
        _figure9_point,
        experiment="fig9",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table
