"""Figures 11 and 12: logical-qubit scaling of the join-ordering
encoding.

Pure evaluations of the Sec. 6.3.1 bounds (verified elsewhere to match
the model builder exactly in no-pruning mode):

* Figure 11 — qubits vs relation count for P ∈ {J, 2J, 3J}
  (R = 1, ω = 1, all cardinalities 10);
* Figure 12 — qubits vs threshold count for ω ∈ {1, 0.01, 0.0001}
  (T = 20, P = J = 19).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.analysis.qubit_counts import JoinOrderQubitBounds
from repro.experiments.common import ExperimentTable
from repro.harness import extend_table, resolve_workers, run_grid


def _figure11_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Qubit bounds for one relation count, all predicate multiples."""
    t = params["relations"]
    j = t - 1
    row: Dict[str, Any] = {"relations": t}
    for multiple in (1, 2, 3):
        bounds = JoinOrderQubitBounds(
            num_relations=t,
            num_predicates=multiple * j,
            num_thresholds=1,
            omega=1.0,
        )
        row[f"qubits P={multiple}J" if multiple > 1 else "qubits P=J"] = bounds.total
    return row


def run_figure11(
    relation_counts: Sequence[int] = tuple(range(6, 43, 4)),
    seed: int = 0,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Figure 11: qubits vs number of relations and predicates."""
    workers = resolve_workers(workers)
    table = ExperimentTable(
        title="Figure 11 - join ordering qubit scaling (R=1, ω=1, card 10)",
        columns=["relations", "qubits P=J", "qubits P=2J", "qubits P=3J"],
        notes=(
            "Paper landmarks: T=42/P=J ≈ 10,000 qubits; doubling predicates "
            "adds ~50% more qubits at T=42."
        ),
    )
    points = [{"relations": t} for t in relation_counts]
    results = run_grid(
        points,
        _figure11_point,
        experiment="fig11",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table


def _figure12_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Qubit bounds for one threshold count, all precision factors."""
    num_relations = params["relations"]
    r = params["thresholds"]
    row: Dict[str, Any] = {"thresholds": r}
    for omega in (1.0, 0.01, 0.0001):
        bounds = JoinOrderQubitBounds(
            num_relations=num_relations,
            num_predicates=num_relations - 1,
            num_thresholds=r,
            omega=omega,
        )
        row[f"qubits ω={omega:g}"] = bounds.total
    return row


def run_figure12(
    threshold_counts: Sequence[int] = tuple(range(2, 21, 2)),
    num_relations: int = 20,
    seed: int = 0,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Figure 12: qubits vs threshold count and precision factor ω."""
    workers = resolve_workers(workers)
    table = ExperimentTable(
        title="Figure 12 - qubit scaling vs thresholds and ω (T=20, P=J)",
        columns=["thresholds", "qubits ω=1", "qubits ω=0.01", "qubits ω=0.0001"],
        notes=(
            "Paper landmarks: ω=0.01 grows ~94% from 2 to 14 thresholds; at "
            "20 thresholds ω=0.0001 needs more than twice the ω=1 qubits."
        ),
    )
    points = [
        {"thresholds": r, "relations": num_relations} for r in threshold_counts
    ]
    results = run_grid(
        points,
        _figure12_point,
        experiment="fig12",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table
