"""Extension experiment: penalty weights compress the energy spectrum
(paper Sec. 6.1.4, after [O'Gorman et al. 2015]).

The paper warns that setting the constraint penalty ``A`` too high
"leads to a compression of the energy spectrum of the system and thus
to a small minimum energy gap", making the annealing time (Eq. 24,
``T ≫ ε/g_min²``) blow up.  This experiment makes that concrete on the
Sec. 6.1.2 join-ordering example:

for ``A`` ranging from the Eq. 44 bound upward, the full QUBO spectrum
is enumerated and the *relative* gap between the ground state and the
first excited state — the quantity that matters once the hardware's
finite coupling range forces the Hamiltonian to be rescaled into a
fixed energy window — is recorded.  Expected shape: the absolute gap
stays constant (the low-lying states are valid solutions whose spacing
is set by the objective), while the spectrum's width grows linearly
with ``A``, so the relative gap decays like ``1/A``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.experiments.common import ExperimentTable
from repro.harness import extend_table, resolve_workers, run_grid
from repro.joinorder.bilp import build_join_order_bilp
from repro.joinorder.milp import JoinOrderMilp
from repro.joinorder.query_graph import QueryGraph, Relation
from repro.joinorder.qubo import bilp_to_bqm, penalty_weight


def _spectrum(bqm) -> np.ndarray:
    """All 2^n energies, ascending (n <= 26)."""
    q, offset, order = bqm.to_numpy_matrix()
    n = len(order)
    energies = []
    chunk = 1 << 18
    shifts = np.arange(n, dtype=np.uint32)[None, :]
    for start in range(0, 1 << n, chunk):
        idx = np.arange(start, min(start + chunk, 1 << n), dtype=np.uint32)
        bits = ((idx[:, None] >> shifts) & 1).astype(np.float64)
        energies.append(np.einsum("ij,jk,ik->i", bits, q, bits, optimize=True) + offset)
    return np.sort(np.concatenate(energies))


def _example_bilp():
    """The predicate-free 3-relation instance (21 qubits, exact spectrum).

    Heterogeneous cardinalities (10, 10, 100) with threshold 100 make
    the *valid* states carry two distinct objective values — orders
    starting with the two small relations stay below the threshold,
    orders pulling the large relation forward cross it — so the
    ground-state gap is an objective-scale constant while the penalty
    only widens the spectrum above it.
    """
    graph = QueryGraph(
        relations=(Relation("A", 10), Relation("B", 10), Relation("C", 100)),
    )
    milp = JoinOrderMilp(
        graph=graph, thresholds=[100.0], prune_thresholds=True, precision_omega=1.0
    )
    return build_join_order_bilp(milp, precision_exponent=0)


def _penalty_gap_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Spectrum statistics for one penalty multiplier."""
    multiplier = params["multiplier"]
    bilp = _example_bilp()
    s, b, c, order = bilp.to_matrices()
    base_a = penalty_weight(c, bilp.omega)
    bqm = bilp_to_bqm(bilp, penalty_a=base_a * multiplier)
    spectrum = _spectrum(bqm)
    ground = float(spectrum[0])
    distinct = spectrum[spectrum > ground + 1e-9]
    gap = float(distinct[0] - ground) if len(distinct) else 0.0
    width = float(spectrum[-1] - ground)
    return {
        "A / A_min": multiplier,
        "ground energy": round(ground, 3),
        "absolute gap": round(gap, 3),
        "spectrum width": round(width, 1),
        "relative gap": round(gap / width if width else 0.0, 8),
    }


def run_penalty_gap_study(
    multipliers: Sequence[float] = (1.0, 4.0, 16.0, 64.0),
    seed: int = 0,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Relative spectral gap vs penalty weight A."""
    workers = resolve_workers(workers)
    table = ExperimentTable(
        title="Extension - penalty weight vs spectral gap (Sec. 6.1.4)",
        columns=[
            "A / A_min",
            "ground energy",
            "absolute gap",
            "spectrum width",
            "relative gap",
        ],
        notes=(
            "Shape: the absolute ground-state gap is penalty-independent "
            "(set by the objective), but the spectrum width grows with A, "
            "so the gap relative to the full energy window — what remains "
            "after rescaling onto hardware coupling ranges — decays ~1/A."
        ),
    )
    points = [{"multiplier": float(m)} for m in multipliers]
    results = run_grid(
        points,
        _penalty_gap_point,
        experiment="penalty-gap",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    return table
