"""Fleet-vs-single-annealer scaling on decomposition-sized instances.

The fleet-aware solver mode promises two things at once: *scale-out*
(independent shards anneal concurrently across devices) and
*determinism* (per-(device spec, shard content) seeds make the result
independent of fleet size and dispatch order).  This experiment checks
both on MQO instances well past one device's capacity: every grid
point solves the same instance with a single-device fleet and with an
N-device fleet, asserts the energies and assignments are bit-identical,
and reports the wall-clock ratio.

On a single-core host the speedup hovers around 1 — shard anneals are
CPU-bound, so concurrent dispatch cannot beat the GIL without real
cores (the same caveat recorded for the process serving backend in
PR 7); the determinism column is the load-bearing result there.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Sequence

from repro.experiments.common import ExperimentTable
from repro.harness import extend_table, resolve_workers, run_grid


def _fleet_scaling_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One (instance, fleet size): solve with 1 and with N devices."""
    from repro.annealers import AnnealerFleet
    from repro.hybrid import DecomposingSolver
    from repro.mqo import mqo_to_bqm, random_mqo_problem

    bqm = mqo_to_bqm(
        random_mqo_problem(
            params["queries"], params["plans_per_query"], seed=params["instance_seed"]
        )
    )

    def _solve(fleet_size: int):
        solver = DecomposingSolver(
            fleet=AnnealerFleet.homogeneous(fleet_size, m=params["m"], t=params["t"]),
            restarts=params["restarts"],
            max_rounds=params["max_rounds"],
        )
        start = time.perf_counter()
        result = solver.solve(bqm, seed=seed)
        return result, time.perf_counter() - start

    single, single_wall = _solve(1)
    fleet, fleet_wall = _solve(params["fleet_size"])
    identical = (
        single.sample == fleet.sample
        and abs(single.energy - fleet.energy) < 1e-12
    )
    return {
        "queries": params["queries"],
        "variables": bqm.num_variables,
        "fleet size": params["fleet_size"],
        "energy": round(fleet.energy, 6),
        "identical": identical,
        "subproblems": fleet.info.get("subproblems"),
        "single wall s": round(single_wall, 3),
        "fleet wall s": round(fleet_wall, 3),
        "speedup": round(single_wall / fleet_wall, 3) if fleet_wall > 0 else None,
    }


def run_fleet_scaling(
    seed: int = 37,
    queries: Sequence[int] = (12, 18),
    plans_per_query: int = 3,
    fleet_sizes: Sequence[int] = (2, 4),
    m: int = 4,
    t: int = 4,
    restarts: int = 2,
    max_rounds: int = 6,
    *,
    workers: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> ExperimentTable:
    """Sweep fleet sizes over decomposition-sized MQO instances.

    Every row compares an N-device fleet against a single device on the
    same instance with the same root seed; ``identical`` must be True
    everywhere (it is the fleet determinism contract, also pinned by
    ``tests/test_fleet_solver.py``), and ``speedup`` shows what the
    concurrent dispatch buys on the current host.
    """
    workers = resolve_workers(workers)
    table = ExperimentTable(
        title="Fleet vs single annealer: bit-identical shards, concurrent dispatch",
        columns=[
            "queries", "variables", "fleet size", "energy", "identical",
            "subproblems", "single wall s", "fleet wall s", "speedup",
        ],
        notes="identical: fleet-of-N assignment and energy equal the "
        "single-device run bit for bit (per-(device spec, shard) seed "
        "derivation). Wall columns are measurements; speedup ~1 on "
        "single-core hosts where shard anneals serialize on the GIL.",
    )
    points = [
        {
            "queries": int(q),
            "plans_per_query": int(plans_per_query),
            "fleet_size": int(size),
            "m": int(m),
            "t": int(t),
            "restarts": int(restarts),
            "max_rounds": int(max_rounds),
            "instance_seed": seed + 100 + int(q),
        }
        for q in queries
        for size in fleet_sizes
    ]
    results = run_grid(
        points,
        _fleet_scaling_point,
        experiment="fleet-scaling",
        seed=seed,
        workers=workers,
        cache=cache,
        cache_dir=cache_dir,
    )
    extend_table(table, results, workers)
    for result in results:
        for row in result.rows:
            if not row.get("identical"):
                raise AssertionError(
                    f"fleet determinism violated at {result.params}: {row}"
                )
    return table
