"""Closed-form qubit bounds for the join-ordering encoding
(paper Sec. 6.3.1, Eqs. 45–54).

These formulas predict the number of binary variables — and therefore
logical qubits — the BILP encoding needs, *without* building the model:

.. math::
    n &= n_{log} + n_{bsl} + n_{csl} \\\\
    n_{log} &\\le J(2T + P + R) - P - R \\qquad (Eq.~46) \\\\
    n_{bsl} &= J(T + 2P) - 2P \\qquad (Eq.~47) \\\\
    n_{csl} &\\le R \\sum_{j=2}^{J}
        \\big(\\lfloor \\log_2(mlc_j/\\omega) \\rfloor + 1\\big)
        \\qquad (Eq.~53)

with ``T`` relations, ``J = T−1`` joins, ``P`` predicates, ``R``
threshold values, precision factor ω, and ``mlc_j`` the sum of the
``j`` largest log-cardinalities (Eq. 50).  The bounds assume no
cardinality-based pruning — the paper's setting for Figures 11/12 —
and they are exactly what the builder produces in that mode (verified
by tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ProblemError
from repro.linprog.standard_form import binary_slack_count


def _validate(num_relations: int, num_predicates: int, num_thresholds: int, omega: float) -> None:
    if num_relations < 2:
        raise ProblemError("need at least two relations")
    if num_predicates < 0 or num_thresholds < 1:
        raise ProblemError("bad predicate/threshold counts")
    if omega <= 0:
        raise ProblemError("omega must be positive")


def logical_variable_bound(
    num_relations: int, num_predicates: int, num_thresholds: int
) -> int:
    """``n_log`` (Eq. 46): tio + tii + pao + cto variables.

    ``pao``/``cto`` variables exist only for joins 1..J-1 (the first
    join's outer operand is a single relation, Sec. 6.2.2).
    """
    _validate(num_relations, num_predicates, num_thresholds, 1.0)
    t, p, r = num_relations, num_predicates, num_thresholds
    j = t - 1
    return j * (2 * t + p + r) - p - r


def binary_slack_bound(num_relations: int, num_predicates: int) -> int:
    """``n_bsl`` (Eq. 47): one slack per type-3/5/6 constraint."""
    _validate(num_relations, num_predicates, 1, 1.0)
    t, p = num_relations, num_predicates
    j = t - 1
    return j * (t + 2 * p) - 2 * p


def max_log_cardinality(cardinalities: Sequence[float], join: int, log_base: float = 10.0) -> float:
    """``mlc_j`` (Eq. 50) for a join whose outer operand holds ``join``
    relations: the sum of the ``join`` largest log-cardinalities."""
    logs = sorted((math.log(c, log_base) for c in cardinalities), reverse=True)
    return sum(logs[:join])


def continuous_slack_bound(
    cardinalities: Sequence[float],
    num_thresholds: int,
    omega: float = 1.0,
    log_base: float = 10.0,
) -> int:
    """``n_csl`` (Eq. 53): discretized-slack binaries over all type-7
    constraints (thresholds x joins 2..J, outer sizes 2..T−1... T)."""
    _validate(len(cardinalities), 0, num_thresholds, omega)
    t = len(cardinalities)
    j = t - 1
    total = 0
    for outer_size in range(2, j + 1):
        mlc = max_log_cardinality(cardinalities, outer_size, log_base)
        total += binary_slack_count(mlc, omega)
    return num_thresholds * total


def total_qubit_bound(
    cardinalities: Sequence[float],
    num_predicates: int,
    num_thresholds: int,
    omega: float = 1.0,
    log_base: float = 10.0,
) -> int:
    """``n`` (Eq. 54): the full logical-qubit requirement."""
    t = len(cardinalities)
    return (
        logical_variable_bound(t, num_predicates, num_thresholds)
        + binary_slack_bound(t, num_predicates)
        + continuous_slack_bound(cardinalities, num_thresholds, omega, log_base)
    )


@dataclass(frozen=True)
class JoinOrderQubitBounds:
    """Bundle of the Sec. 6.3.1 bounds for one problem configuration."""

    num_relations: int
    num_predicates: int
    num_thresholds: int
    omega: float
    cardinality: float = 10.0
    log_base: float = 10.0

    @property
    def cardinalities(self) -> Sequence[float]:
        return [self.cardinality] * self.num_relations

    @property
    def n_log(self) -> int:
        return logical_variable_bound(
            self.num_relations, self.num_predicates, self.num_thresholds
        )

    @property
    def n_bsl(self) -> int:
        return binary_slack_bound(self.num_relations, self.num_predicates)

    @property
    def n_csl(self) -> int:
        return continuous_slack_bound(
            self.cardinalities, self.num_thresholds, self.omega, self.log_base
        )

    @property
    def total(self) -> int:
        return self.n_log + self.n_bsl + self.n_csl
