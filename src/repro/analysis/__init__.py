"""Analysis helpers reproducing the paper's resource studies.

* :mod:`repro.analysis.qubit_counts` — the closed-form qubit bounds of
  Sec. 6.3.1 (Eqs. 45–54) behind Figures 11 and 12;
* :mod:`repro.analysis.coherence` — decoherence-error and maximum-
  reliable-depth arithmetic (Eqs. 36–37 and 55);
* :mod:`repro.analysis.depth` — circuit-depth measurement utilities
  shared by the Figure 8/9/13 experiments.
"""

from repro.analysis.qubit_counts import (
    JoinOrderQubitBounds,
    binary_slack_bound,
    continuous_slack_bound,
    logical_variable_bound,
    total_qubit_bound,
)
from repro.analysis.coherence import (
    decoherence_error_probability,
    max_reliable_depth,
)
from repro.analysis.depth import (
    DepthMeasurement,
    measure_qaoa_depth,
    measure_vqe_depth,
    mean_transpiled_depth,
)

__all__ = [
    "JoinOrderQubitBounds",
    "binary_slack_bound",
    "continuous_slack_bound",
    "logical_variable_bound",
    "total_qubit_bound",
    "decoherence_error_probability",
    "max_reliable_depth",
    "DepthMeasurement",
    "measure_qaoa_depth",
    "measure_vqe_depth",
    "mean_transpiled_depth",
]
