"""Circuit-depth measurement utilities for the depth studies
(paper Figures 8, 9 and 13).

The paper measures the depth of the *optimal* (bound) VQE/QAOA circuit
after transpilation onto a target topology, averaging over 20
transpilations because the routing heuristics are stochastic.  These
helpers construct the ansatz for a QUBO, bind dummy parameters (depth
does not depend on angle values) and transpile with varying seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.gate.circuit import QuantumCircuit
from repro.gate.topologies import CouplingMap
from repro.gate.transpiler import transpile
from repro.qubo.bqm import BinaryQuadraticModel
from repro.variational.ansatz import qaoa_ansatz, real_amplitudes
from repro.variational.hamiltonian import IsingHamiltonian


@dataclass(frozen=True)
class DepthMeasurement:
    """Depth statistics of one circuit family on one topology."""

    logical_depth: int
    transpiled_depths: tuple
    num_qubits: int
    num_quadratic_terms: int

    @property
    def mean_transpiled_depth(self) -> float:
        if not self.transpiled_depths:
            return float(self.logical_depth)
        return float(np.mean(self.transpiled_depths))


def _bind_dummy(circuit: QuantumCircuit) -> QuantumCircuit:
    """Bind all parameters to a fixed non-trivial angle.

    Depth is invariant to the concrete angles; binding lets the
    transpiler take its numeric single-qubit resynthesis paths.
    """
    params = sorted(circuit.parameters, key=lambda p: (p.name, p._uid))
    return circuit.bind_parameters({p: 0.7 for p in params})


def mean_transpiled_depth(
    circuit: QuantumCircuit,
    coupling_map: Optional[CouplingMap],
    samples: int = 20,
    optimization_level: int = 1,
    seed: Optional[int] = None,
) -> DepthMeasurement:
    """Transpile ``samples`` times and collect the depth distribution.

    With ``coupling_map=None`` (the qasm simulator's optimal topology)
    routing is deterministic, so a single sample is taken.
    """
    bound = _bind_dummy(circuit)
    if coupling_map is None or coupling_map.is_fully_connected():
        transpiled = transpile(bound, coupling_map, optimization_level, seed=0)
        depths: List[int] = [transpiled.depth()]
    else:
        rng = np.random.default_rng(seed)
        depths = []
        for _ in range(samples):
            transpiled = transpile(
                bound,
                coupling_map,
                optimization_level,
                seed=int(rng.integers(0, 2**31)),
            )
            depths.append(transpiled.depth())
    return DepthMeasurement(
        logical_depth=bound.depth(),
        transpiled_depths=tuple(depths),
        num_qubits=circuit.num_qubits,
        num_quadratic_terms=0,
    )


def measure_qaoa_depth(
    bqm: BinaryQuadraticModel,
    coupling_map: Optional[CouplingMap],
    reps: int = 1,
    samples: int = 20,
    seed: Optional[int] = None,
) -> DepthMeasurement:
    """Depth of the QAOA ansatz (p = ``reps``) for a QUBO."""
    hamiltonian = IsingHamiltonian.from_bqm(bqm)
    circuit, _ = qaoa_ansatz(hamiltonian, reps=reps)
    measurement = mean_transpiled_depth(circuit, coupling_map, samples, seed=seed)
    return DepthMeasurement(
        logical_depth=measurement.logical_depth,
        transpiled_depths=measurement.transpiled_depths,
        num_qubits=hamiltonian.num_qubits,
        num_quadratic_terms=hamiltonian.num_quadratic_terms,
    )


def measure_vqe_depth(
    bqm: BinaryQuadraticModel,
    coupling_map: Optional[CouplingMap],
    reps: int = 2,
    entanglement: str = "full",
    samples: int = 20,
    seed: Optional[int] = None,
) -> DepthMeasurement:
    """Depth of the VQE RealAmplitudes ansatz for a QUBO.

    Depends only on the variable count — the paper's observation that
    VQE depth is independent of the QUBO matrix density.
    """
    hamiltonian = IsingHamiltonian.from_bqm(bqm)
    circuit, _ = real_amplitudes(
        hamiltonian.num_qubits, reps=reps, entanglement=entanglement
    )
    measurement = mean_transpiled_depth(circuit, coupling_map, samples, seed=seed)
    return DepthMeasurement(
        logical_depth=measurement.logical_depth,
        transpiled_depths=measurement.transpiled_depths,
        num_qubits=hamiltonian.num_qubits,
        num_quadratic_terms=hamiltonian.num_quadratic_terms,
    )
