"""Coherence-time arithmetic (paper Eqs. 36–37 and 55).

A circuit is considered reliably executable when its depth times the
average gate time stays within the device's binding coherence time
``min(T1, T2)``:

.. math:: d_{max} = \\lfloor \\min(T1, T2) / g_{avg} \\rfloor

The paper's calibration values give ``d_max = 248`` for IBM-Q Mumbai
and ``d_max = 178`` for IBM-Q Brooklyn — the thresholds drawn through
Figures 8/9/13.
"""

from __future__ import annotations


from repro.exceptions import ProblemError
from repro.gate.backend import Backend, BackendProperties


def max_reliable_depth(properties: BackendProperties) -> int:
    """``d_max`` (Eqs. 37/55)."""
    return properties.max_reliable_depth()


def decoherence_error_probability(
    properties: BackendProperties, depth: int
) -> float:
    """``p_err = 1 − e^{−t/T}`` for a circuit of the given depth (Eq. 36)."""
    if depth < 0:
        raise ProblemError("depth must be non-negative")
    return properties.decoherence_error_probability(depth)


def is_reliably_executable(backend: Backend, depth: int) -> bool:
    """Whether a depth fits within the backend's coherence threshold.

    Backends without calibration data (simulators) accept any depth.
    """
    if backend.properties is None:
        return True
    return depth <= max_reliable_depth(backend.properties)
