"""Compile-once array-backed representation of a binary quadratic model.

The dict-of-dicts :class:`~repro.qubo.bqm.BinaryQuadraticModel` is the
construction API of every encoding in the repository, but it is also
what every solver used to iterate in its inner loop — a hash lookup and
a Python-level multiply per term, per read, per sweep.  This module
separates the two roles: models are still *built* as dict BQMs, then
:func:`compile_bqm` lowers them once into flat numpy arrays that the
batched solver kernels (:mod:`repro.annealing.simulated_annealing`,
:mod:`repro.hybrid.tabu`) and the service's compilation cache consume.

A :class:`CompiledBQM` holds

* an index-mapped linear-bias vector (``linear[i]`` is the bias of
  ``variables[i]``, insertion order preserved),
* the quadratic terms as parallel edge arrays ``(edge_u, edge_v,
  edge_bias)`` in the model's :meth:`interactions` emission order,
* per-variable neighbour/coupling arrays (a CSR-style adjacency) whose
  entry order replicates the order the dict samplers accumulated in,
  so vectorized local-field evaluations are **bit-identical** to the
  seed implementation,
* an optional dense symmetric coupling matrix for small or dense
  models, where one BLAS matmul beats gather loops, and
* for binary models, a pre-compiled spin companion (the domain the
  annealing kernels sweep in).

Two energy evaluators are exposed on purpose:

``energies(states)``
    The fast path — one vectorized pass over all rows at once.  Exact
    in exact arithmetic but free to reassociate floating-point sums,
    so it may differ from ``BinaryQuadraticModel.energy`` in the last
    ulp.  Use it for bulk scoring (benchmarks, verification sweeps,
    service-side ranking with tolerances).

``energies_compat(states)``
    Term-by-term in the exact accumulation order of
    :meth:`BinaryQuadraticModel.energy`, vectorized across rows only.
    Bit-identical to the dict implementation — this is what the
    samplers report, which is why the golden seed-compatibility
    fixtures survive the kernel rewrite unchanged.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelError, VariableError
from repro.qubo.bqm import BinaryQuadraticModel, Vartype

__all__ = ["CompiledBQM", "compile_bqm"]

#: models at or under this variable count always get the dense matrix
DENSE_SIZE_THRESHOLD = 64
#: larger models get it too when the interaction density is above this
DENSE_DENSITY_THRESHOLD = 0.25


class CompiledBQM:
    """Array-backed form of one :class:`BinaryQuadraticModel`.

    Instances are immutable once built and safe to share across threads
    (the service's compilation cache hands one compiled model to every
    request for the same problem fingerprint).  Build with
    :func:`compile_bqm`, not the constructor.
    """

    __slots__ = (
        "vartype",
        "offset",
        "variables",
        "index",
        "linear",
        "edge_u",
        "edge_v",
        "edge_bias",
        "neighbor_index",
        "neighbor_bias",
        "abs_totals",
        "dense",
        "_spin",
    )

    def __init__(
        self,
        vartype: Vartype,
        offset: float,
        variables: Tuple[Hashable, ...],
        linear: np.ndarray,
        edges: Sequence[Tuple[int, int, float]],
        dense: Optional[np.ndarray],
        spin: Optional["CompiledBQM"],
    ) -> None:
        self.vartype = vartype
        self.offset = float(offset)
        self.variables = variables
        self.index = {v: i for i, v in enumerate(variables)}
        self.linear = np.ascontiguousarray(linear, dtype=float)
        n = len(variables)

        self.edge_u = np.fromiter((e[0] for e in edges), dtype=np.intp, count=len(edges))
        self.edge_v = np.fromiter((e[1] for e in edges), dtype=np.intp, count=len(edges))
        self.edge_bias = np.fromiter(
            (e[2] for e in edges), dtype=float, count=len(edges)
        )

        # per-variable adjacency, append order replicating the dict
        # samplers (both endpoints, interactions() emission order)
        nbr: List[List[int]] = [[] for _ in range(n)]
        cpl: List[List[float]] = [[] for _ in range(n)]
        for u, v, bias in edges:
            nbr[u].append(v)
            cpl[u].append(bias)
            nbr[v].append(u)
            cpl[v].append(bias)
        empty_i = np.empty(0, dtype=np.intp)
        empty_f = np.empty(0, dtype=float)
        self.neighbor_index = [
            np.array(lst, dtype=np.intp) if lst else empty_i for lst in nbr
        ]
        self.neighbor_bias = [
            np.array(lst, dtype=float) if lst else empty_f for lst in cpl
        ]

        # |linear| + Σ|bias| per variable, accumulated in the exact
        # order the dict-based β-schedule heuristic used
        totals = np.abs(self.linear).astype(float)
        for u, v, bias in edges:
            magnitude = abs(bias)
            totals[u] += magnitude
            totals[v] += magnitude
        self.abs_totals = totals

        self.dense = dense
        self._spin = spin

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_interactions(self) -> int:
        return int(self.edge_bias.size)

    @property
    def spin(self) -> "CompiledBQM":
        """The compiled spin-domain companion (``self`` for spin models)."""
        if self.vartype is Vartype.SPIN:
            return self
        if self._spin is None:
            raise ModelError(
                "model was compiled with with_spin=False; recompile with "
                "compile_bqm(bqm) to use the spin kernels"
            )
        return self._spin

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledBQM({self.num_variables} variables, "
            f"{self.num_interactions} interactions, {self.vartype.name}, "
            f"dense={'yes' if self.dense is not None else 'no'})"
        )

    # ------------------------------------------------------------------
    # Sample/state conversions
    # ------------------------------------------------------------------
    def state_vector(self, sample: Mapping[Hashable, int]) -> np.ndarray:
        """One assignment dict → ``(n,)`` float vector in index order."""
        try:
            return np.fromiter(
                (sample[v] for v in self.variables),
                dtype=float,
                count=len(self.variables),
            )
        except KeyError as exc:
            raise VariableError(f"sample is missing variable {exc.args[0]!r}") from None

    def states_matrix(
        self, samples: Iterable[Mapping[Hashable, int]]
    ) -> np.ndarray:
        """Assignment dicts → ``(rows, n)`` float matrix."""
        rows = [self.state_vector(s) for s in samples]
        if not rows:
            return np.empty((0, len(self.variables)), dtype=float)
        return np.stack(rows)

    def states_to_samples(self, states: np.ndarray) -> List[Dict[Hashable, int]]:
        """``(rows, n)`` matrix → assignment dicts with int values."""
        ints = states.astype(np.int64)
        variables = self.variables
        return [
            {variables[i]: int(row[i]) for i in range(len(variables))} for row in ints
        ]

    # ------------------------------------------------------------------
    # Energy evaluation
    # ------------------------------------------------------------------
    def energies(self, states: np.ndarray) -> np.ndarray:
        """Vectorized energies of many assignments at once.

        ``states`` is ``(rows, n)`` (a single ``(n,)`` vector is
        promoted).  Fast path: free to reassociate sums, agrees with
        :meth:`BinaryQuadraticModel.energy` to float64 rounding.
        """
        states = np.atleast_2d(np.asarray(states, dtype=float))
        out = states @ self.linear
        out += self.offset
        if self.edge_bias.size:
            if self.dense is not None:
                # E_quad = ½ Σ_ij x_i D_ij x_j with D symmetric
                out += 0.5 * np.einsum("ri,ri->r", states, states @ self.dense)
            else:
                out += (states[:, self.edge_u] * states[:, self.edge_v]) @ self.edge_bias
        return out

    def energy(self, state: np.ndarray) -> float:
        """Fast-path energy of one state vector."""
        return float(self.energies(np.asarray(state, dtype=float))[0])

    def energies_compat(self, states: np.ndarray) -> np.ndarray:
        """Energies in the dict implementation's accumulation order.

        Sequential over terms (offset, then linear biases in variable
        order, then quadratic biases in interaction order) and
        vectorized over rows, so every row's float additions happen in
        exactly the order :meth:`BinaryQuadraticModel.energy` performs
        them — bit-identical results, at ``O(n + m)`` numpy calls.
        """
        states = np.atleast_2d(np.asarray(states, dtype=float))
        out = np.full(states.shape[0], self.offset, dtype=float)
        linear = self.linear
        for i in range(linear.size):
            out += linear[i] * states[:, i]
        edge_bias = self.edge_bias
        edge_u = self.edge_u
        edge_v = self.edge_v
        for k in range(edge_bias.size):
            out += edge_bias[k] * states[:, edge_u[k]] * states[:, edge_v[k]]
        return out

    # ------------------------------------------------------------------
    # Local fields and single-flip deltas
    # ------------------------------------------------------------------
    def local_fields(self, states: np.ndarray) -> np.ndarray:
        """``linear_i + Σ_j bias_ij · x_j`` for every variable and row."""
        states = np.atleast_2d(np.asarray(states, dtype=float))
        if self.dense is not None:
            return states @ self.dense + self.linear
        fields = np.broadcast_to(self.linear, states.shape).copy()
        for i, neighbors in enumerate(self.neighbor_index):
            if neighbors.size:
                fields[:, i] += states[:, neighbors] @ self.neighbor_bias[i]
        return fields

    def flip_deltas(self, states: np.ndarray) -> np.ndarray:
        """Energy change of flipping each variable, per row.

        Spin models toggle ``s → -s`` (``ΔE_i = -2 s_i f_i``); binary
        models toggle ``x → 1-x`` (``ΔE_i = (1-2x_i) f_i``), with
        ``f`` the :meth:`local_fields`.
        """
        states = np.atleast_2d(np.asarray(states, dtype=float))
        fields = self.local_fields(states)
        if self.vartype is Vartype.SPIN:
            return -2.0 * states * fields
        return (1.0 - 2.0 * states) * fields

    def apply_flip(
        self, states: np.ndarray, fields: np.ndarray, row: int, i: int
    ) -> None:
        """Flip variable ``i`` of ``row`` in place, updating ``fields``.

        The incremental form of :meth:`local_fields`: one flip costs
        ``O(degree(i))`` instead of a full recomputation.
        """
        if self.vartype is Vartype.SPIN:
            states[row, i] *= -1.0
            shift = 2.0 * states[row, i]
        else:
            old = states[row, i]
            states[row, i] = 1.0 - old
            shift = states[row, i] - old
        neighbors = self.neighbor_index[i]
        if neighbors.size:
            fields[row, neighbors] += shift * self.neighbor_bias[i]


def compile_bqm(
    bqm: BinaryQuadraticModel,
    with_spin: bool = True,
    dense_size_threshold: int = DENSE_SIZE_THRESHOLD,
    dense_density_threshold: float = DENSE_DENSITY_THRESHOLD,
) -> CompiledBQM:
    """Lower a dict-backed model into its array-backed compiled form.

    ``with_spin`` additionally compiles the spin-domain companion that
    the annealing/tabu kernels sweep (a no-op for spin models); pass
    ``False`` for evaluation-only uses to skip one conversion walk.

    The dense coupling matrix is materialized for models at or under
    ``dense_size_threshold`` variables, or whose interaction density
    exceeds ``dense_density_threshold``.
    """
    variables = bqm.variables
    n = len(variables)
    index = {v: i for i, v in enumerate(variables)}
    linear_map = bqm.linear
    linear = np.fromiter((linear_map[v] for v in variables), dtype=float, count=n)
    edges = [(index[u], index[v], bias) for u, v, bias in bqm.interactions()]

    dense: Optional[np.ndarray] = None
    max_edges = n * (n - 1) / 2.0
    density = (len(edges) / max_edges) if max_edges else 0.0
    if n and (n <= dense_size_threshold or density >= dense_density_threshold):
        dense = np.zeros((n, n), dtype=float)
        for u, v, bias in edges:
            dense[u, v] += bias
            dense[v, u] += bias

    spin: Optional[CompiledBQM] = None
    if with_spin and bqm.vartype is Vartype.BINARY:
        spin = compile_bqm(
            bqm.change_vartype(Vartype.SPIN),
            with_spin=False,
            dense_size_threshold=dense_size_threshold,
            dense_density_threshold=dense_density_threshold,
        )

    return CompiledBQM(
        vartype=bqm.vartype,
        offset=bqm.offset,
        variables=variables,
        linear=linear,
        edges=edges,
        dense=dense,
        spin=spin,
    )
