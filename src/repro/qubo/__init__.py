"""Quadratic unconstrained binary optimization (QUBO) substrate.

This package provides the problem representation shared by every solver in
the repository — the gate-model variational algorithms, the annealing
samplers and the classical baselines all consume a
:class:`BinaryQuadraticModel`.

The paper (Sec. 3.3) treats the QUBO and Ising formulations as
interchangeable; :meth:`BinaryQuadraticModel.to_ising` and
:meth:`BinaryQuadraticModel.from_ising` implement that duality exactly.
"""

from repro.qubo.bqm import BinaryQuadraticModel, Vartype
from repro.qubo.compiled import CompiledBQM, compile_bqm
from repro.qubo.expression import BinaryExpression, BinaryVariable, Constant
from repro.qubo.exact import ExactQuboSolver, brute_force_minimum

__all__ = [
    "BinaryQuadraticModel",
    "Vartype",
    "CompiledBQM",
    "compile_bqm",
    "BinaryExpression",
    "BinaryVariable",
    "Constant",
    "ExactQuboSolver",
    "brute_force_minimum",
]
