"""Exact (brute-force) minimization of binary quadratic models.

The paper validates its QUBO encodings on instances small enough that the
ground state can be enumerated classically; this module provides that
reference solver.  A vectorised numpy path enumerates all :math:`2^n`
assignments at once and is practical up to roughly 22 variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

import numpy as np

from repro.exceptions import SolverError
from repro.qubo.bqm import BinaryQuadraticModel, Vartype

_MAX_EXACT_VARIABLES = 26


@dataclass(frozen=True)
class ExactResult:
    """Outcome of a brute-force minimization."""

    sample: Dict[Hashable, int]
    energy: float
    #: all optimal samples (ties included), each with the minimum energy
    all_optima: Tuple[Dict[Hashable, int], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.all_optima:
            object.__setattr__(self, "all_optima", (dict(self.sample),))


def brute_force_minimum(bqm: BinaryQuadraticModel) -> ExactResult:
    """Enumerate every assignment and return the ground state.

    Raises
    ------
    SolverError
        If the model has more than 26 variables (the dense enumeration
        would need more than ~0.5 GiB).
    """
    n = bqm.num_variables
    if n == 0:
        return ExactResult(sample={}, energy=bqm.offset)
    if n > _MAX_EXACT_VARIABLES:
        raise SolverError(
            f"brute force over {n} variables is infeasible "
            f"(limit {_MAX_EXACT_VARIABLES})"
        )
    q, offset, order = bqm.to_numpy_matrix()
    count = 1 << n
    # Enumerate in chunks to bound memory (a 2^24 x 24 float matrix
    # would be several GiB at once).
    chunk = min(count, 1 << 18)
    shifts = np.arange(n, dtype=np.uint32)[None, :]
    best = np.inf
    optimal_indices: List[int] = []
    for start in range(0, count, chunk):
        indices = np.arange(start, min(start + chunk, count), dtype=np.uint32)
        bits = ((indices[:, None] >> shifts) & 1).astype(np.float64)
        # x^T Q x for all rows at once
        energies = np.einsum("ij,jk,ik->i", bits, q, bits, optimize=True) + offset
        chunk_best = float(energies.min())
        if chunk_best < best - 1e-9:
            best = chunk_best
            optimal_indices = []
        if chunk_best <= best + 1e-9:
            rows = np.flatnonzero(np.isclose(energies, best, rtol=0.0, atol=1e-9))
            optimal_indices.extend(int(indices[r]) for r in rows[:64])
    optimal_indices = optimal_indices[:64]
    lo, hi = bqm.vartype.values

    def index_to_sample(value: int) -> Dict[Hashable, int]:
        return {v: (hi if (value >> i) & 1 else lo) for i, v in enumerate(order)}

    optima: List[Dict[Hashable, int]] = [index_to_sample(v) for v in optimal_indices]
    if bqm.vartype is Vartype.SPIN:
        # to_numpy_matrix evaluates the binary-converted model; energies
        # are identical, only the reported sample values change domain.
        pass
    return ExactResult(sample=optima[0], energy=best, all_optima=tuple(optima))


class ExactQuboSolver:
    """Object-style wrapper around :func:`brute_force_minimum`.

    Matches the ``sample``-style calling convention of the annealing
    samplers so tests can swap solvers freely.
    """

    def minimize(self, bqm: BinaryQuadraticModel) -> ExactResult:
        """Return the exact ground state of ``bqm``."""
        return brute_force_minimum(bqm)

    def sample(self, bqm: BinaryQuadraticModel, **_: object):
        """Sampler-compatible entry point returning a 1-row sample set."""
        from repro.annealing.sampleset import SampleSet

        result = brute_force_minimum(bqm)
        return SampleSet.from_samples(
            [result.sample], [result.energy], vartype=bqm.vartype
        )
