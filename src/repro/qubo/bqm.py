"""Binary quadratic models over binary (0/1) or spin (±1) variables.

A binary quadratic model (BQM) is the polynomial

.. math::

    E(x) = \\sum_i a_i x_i + \\sum_{i<j} b_{ij} x_i x_j + c

over variables that are either *binary* (:math:`x_i \\in \\{0, 1\\}`, the
QUBO convention) or *spin* (:math:`s_i \\in \\{-1, +1\\}`, the Ising
convention).  The two conventions are related by the affine substitution
:math:`s = 2x - 1`, which the paper (Sec. 3.3) relies on to move between
the QUBO formulation used for modelling and the Ising Hamiltonian consumed
by quantum hardware.

The class mirrors the parts of ``dimod.BinaryQuadraticModel`` that the
paper's implementation uses: named variables, linear/quadratic accessors,
energy evaluation, and conversion to/from the Ising form and to a dense
matrix for the gate-model algorithms.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import ModelError, VariableError

Variable = Hashable
Interaction = Tuple[Variable, Variable]


class Vartype(enum.Enum):
    """Domain of the variables of a :class:`BinaryQuadraticModel`."""

    BINARY = "BINARY"
    SPIN = "SPIN"

    @property
    def values(self) -> Tuple[int, int]:
        """The two admissible values of a variable of this type."""
        if self is Vartype.BINARY:
            return (0, 1)
        return (-1, 1)


class BinaryQuadraticModel:
    """A quadratic polynomial over binary or spin variables.

    Parameters
    ----------
    linear:
        Mapping from variable name to linear bias.
    quadratic:
        Mapping from unordered variable pairs to quadratic bias.  Pairs
        are stored in a canonical order; adding a bias for ``(u, v)`` and
        then ``(v, u)`` accumulates into the same term.
    offset:
        Constant energy offset.
    vartype:
        :class:`Vartype.BINARY` (QUBO) or :class:`Vartype.SPIN` (Ising).
    """

    def __init__(
        self,
        linear: Optional[Mapping[Variable, float]] = None,
        quadratic: Optional[Mapping[Interaction, float]] = None,
        offset: float = 0.0,
        vartype: Vartype = Vartype.BINARY,
    ) -> None:
        if not isinstance(vartype, Vartype):
            raise ModelError(f"vartype must be a Vartype, got {vartype!r}")
        self._vartype = vartype
        self._linear: Dict[Variable, float] = {}
        self._adj: Dict[Variable, Dict[Variable, float]] = {}
        self.offset = float(offset)
        if linear:
            for v, bias in linear.items():
                self.add_linear(v, bias)
        if quadratic:
            for (u, v), bias in quadratic.items():
                self.add_quadratic(u, v, bias)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def vartype(self) -> Vartype:
        """Domain of this model's variables."""
        return self._vartype

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All variables, in insertion order."""
        return tuple(self._linear)

    @property
    def num_variables(self) -> int:
        """Number of variables in the model."""
        return len(self._linear)

    @property
    def num_interactions(self) -> int:
        """Number of distinct quadratic terms.

        This is the quantity the paper calls the *number of quadratic
        terms in the QUBO matrix* (Table 4, Sec. 6.3.3); it drives both
        the QAOA circuit depth and the annealing embedding difficulty.
        """
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    @property
    def linear(self) -> Dict[Variable, float]:
        """Copy of the linear biases."""
        return dict(self._linear)

    @property
    def quadratic(self) -> Dict[Interaction, float]:
        """Copy of the quadratic biases with canonically ordered keys."""
        seen = {}
        for u, nbrs in self._adj.items():
            for v, bias in nbrs.items():
                key = self._canonical(u, v)
                seen[key] = bias
        return seen

    def degree(self, v: Variable) -> int:
        """Number of quadratic terms the variable participates in."""
        self._require(v)
        return len(self._adj[v])

    def interactions(self) -> Iterator[Tuple[Variable, Variable, float]]:
        """Iterate over ``(u, v, bias)`` for every quadratic term once."""
        emitted = set()
        for u, nbrs in self._adj.items():
            for v, bias in nbrs.items():
                key = self._canonical(u, v)
                if key not in emitted:
                    emitted.add(key)
                    yield key[0], key[1], bias

    def __contains__(self, v: Variable) -> bool:
        return v in self._linear

    def __len__(self) -> int:
        return len(self._linear)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BinaryQuadraticModel({self.num_variables} variables, "
            f"{self.num_interactions} interactions, offset={self.offset:g}, "
            f"{self._vartype.name})"
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_variable(self, v: Variable, bias: float = 0.0) -> None:
        """Add a variable (accumulating ``bias`` if it already exists)."""
        self.add_linear(v, bias)

    def add_linear(self, v: Variable, bias: float) -> None:
        """Accumulate a linear bias for variable ``v``."""
        self._linear[v] = self._linear.get(v, 0.0) + float(bias)
        self._adj.setdefault(v, {})

    def add_quadratic(self, u: Variable, v: Variable, bias: float) -> None:
        """Accumulate a quadratic bias between ``u`` and ``v``.

        For spin models a self-interaction is a constant (``s*s == 1``)
        and is folded into the offset; for binary models it is a linear
        term (``x*x == x``).
        """
        if u == v:
            if self._vartype is Vartype.SPIN:
                self.offset += float(bias)
            else:
                self.add_linear(u, bias)
            return
        self.add_linear(u, 0.0)
        self.add_linear(v, 0.0)
        self._adj[u][v] = self._adj[u].get(v, 0.0) + float(bias)
        self._adj[v][u] = self._adj[v].get(u, 0.0) + float(bias)

    def get_linear(self, v: Variable) -> float:
        """Linear bias of ``v`` (raises if unknown)."""
        self._require(v)
        return self._linear[v]

    def get_quadratic(self, u: Variable, v: Variable, default: float = 0.0) -> float:
        """Quadratic bias between ``u`` and ``v`` (``default`` if absent)."""
        return self._adj.get(u, {}).get(v, default)

    def remove_interaction(self, u: Variable, v: Variable) -> None:
        """Delete the quadratic term between ``u`` and ``v`` if present."""
        self._adj.get(u, {}).pop(v, None)
        self._adj.get(v, {}).pop(u, None)

    def fix_variable(self, v: Variable, value: int) -> None:
        """Substitute a known value for a variable and remove it.

        Used by pre-processing passes (e.g. pruning in the join-ordering
        model) to shrink a model before handing it to a solver.
        """
        self._require(v)
        lo, hi = self._vartype.values
        if value not in (lo, hi):
            raise ModelError(f"value {value!r} not admissible for {self._vartype}")
        self.offset += self._linear[v] * value
        for u, bias in list(self._adj[v].items()):
            self._linear[u] += bias * value
            self.remove_interaction(u, v)
        del self._linear[v]
        del self._adj[v]

    def update(self, other: "BinaryQuadraticModel", scale: float = 1.0) -> None:
        """Add ``scale * other`` into this model (vartypes must match)."""
        if other.vartype is not self._vartype:
            other = other.change_vartype(self._vartype)
        for v, bias in other._linear.items():
            self.add_linear(v, scale * bias)
        for u, v, bias in other.interactions():
            self.add_quadratic(u, v, scale * bias)
        self.offset += scale * other.offset

    def scale(self, factor: float) -> None:
        """Multiply every bias and the offset by ``factor`` in place."""
        factor = float(factor)
        for v in self._linear:
            self._linear[v] *= factor
        for u in self._adj:
            for v in self._adj[u]:
                self._adj[u][v] *= factor
        self.offset *= factor

    def copy(self) -> "BinaryQuadraticModel":
        """Deep copy of the model."""
        out = BinaryQuadraticModel(vartype=self._vartype, offset=self.offset)
        out._linear = dict(self._linear)
        out._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        return out

    # ------------------------------------------------------------------
    # Energy evaluation
    # ------------------------------------------------------------------
    def energy(self, sample: Mapping[Variable, int]) -> float:
        """Energy of one assignment (missing variables raise)."""
        total = self.offset
        for v, bias in self._linear.items():
            try:
                total += bias * sample[v]
            except KeyError:
                raise VariableError(f"sample is missing variable {v!r}") from None
        for u, v, bias in self.interactions():
            total += bias * sample[u] * sample[v]
        return total

    def energies(self, samples: Iterable[Mapping[Variable, int]]) -> np.ndarray:
        """Vector of energies for many assignments."""
        return np.array([self.energy(s) for s in samples], dtype=float)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def change_vartype(self, vartype: Vartype) -> "BinaryQuadraticModel":
        """Return an energy-equivalent model over the other domain.

        Binary → spin substitutes :math:`x = (s + 1)/2`; spin → binary
        substitutes :math:`s = 2x - 1`.  Energies are preserved exactly
        under the corresponding bijection of assignments.
        """
        if vartype is self._vartype:
            return self.copy()
        out = BinaryQuadraticModel(vartype=vartype)
        if self._vartype is Vartype.BINARY:
            # x = (s+1)/2
            out.offset = self.offset
            for v, a in self._linear.items():
                out.add_linear(v, a / 2.0)
                out.offset += a / 2.0
            for u, v, b in self.interactions():
                out.add_quadratic(u, v, b / 4.0)
                out.add_linear(u, b / 4.0)
                out.add_linear(v, b / 4.0)
                out.offset += b / 4.0
        else:
            # s = 2x-1
            out.offset = self.offset
            for v, h in self._linear.items():
                out.add_linear(v, 2.0 * h)
                out.offset -= h
            for u, v, j in self.interactions():
                out.add_quadratic(u, v, 4.0 * j)
                out.add_linear(u, -2.0 * j)
                out.add_linear(v, -2.0 * j)
                out.offset += j
        # make sure isolated variables survive the conversion
        for v in self._linear:
            out.add_linear(v, 0.0)
        return out

    def to_ising(self) -> Tuple[Dict[Variable, float], Dict[Interaction, float], float]:
        """Return ``(h, J, offset)`` of the equivalent Ising model."""
        spin = self.change_vartype(Vartype.SPIN)
        return spin.linear, spin.quadratic, spin.offset

    @classmethod
    def from_ising(
        cls,
        h: Mapping[Variable, float],
        j: Mapping[Interaction, float],
        offset: float = 0.0,
    ) -> "BinaryQuadraticModel":
        """Build a spin-valued model from Ising coefficients."""
        return cls(linear=h, quadratic=j, offset=offset, vartype=Vartype.SPIN)

    @classmethod
    def from_qubo(
        cls, q: Mapping[Interaction, float], offset: float = 0.0
    ) -> "BinaryQuadraticModel":
        """Build a binary-valued model from a QUBO coefficient mapping.

        Diagonal entries ``(v, v)`` become linear biases.
        """
        bqm = cls(vartype=Vartype.BINARY, offset=offset)
        for (u, v), bias in q.items():
            if u == v:
                bqm.add_linear(u, bias)
            else:
                bqm.add_quadratic(u, v, bias)
        return bqm

    def to_qubo(self) -> Tuple[Dict[Interaction, float], float]:
        """Return ``(Q, offset)`` with linear terms on the diagonal."""
        binary = self.change_vartype(Vartype.BINARY)
        q: Dict[Interaction, float] = {}
        for v, bias in binary._linear.items():
            if bias:
                q[(v, v)] = bias
        for u, v, bias in binary.interactions():
            if bias:
                q[(u, v)] = bias
        return q, binary.offset

    def to_numpy_matrix(
        self, variable_order: Optional[Iterable[Variable]] = None
    ) -> Tuple[np.ndarray, float, Tuple[Variable, ...]]:
        """Dense upper-triangular QUBO matrix.

        Returns ``(Q, offset, order)`` where ``x^T Q x + offset`` equals
        :meth:`energy` for binary assignments ordered by ``order``.
        """
        binary = self.change_vartype(Vartype.BINARY)
        order = tuple(variable_order) if variable_order is not None else binary.variables
        index = {v: i for i, v in enumerate(order)}
        missing = set(binary.variables) - set(order)
        if missing:
            raise VariableError(f"variable_order is missing {sorted(map(str, missing))}")
        n = len(order)
        q = np.zeros((n, n), dtype=float)
        for v, bias in binary._linear.items():
            q[index[v], index[v]] = bias
        for u, v, bias in binary.interactions():
            i, jdx = sorted((index[u], index[v]))
            q[i, jdx] += bias
        return q, binary.offset, order

    def interaction_graph(self):
        """The graph whose nodes are variables and edges quadratic terms.

        This is the *source graph* handed to the minor embedder when the
        model is targeted at an annealer (paper Sec. 6.3.5), imported
        lazily to keep networkx optional for pure-QUBO users.
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._linear)
        g.add_edges_from((u, v) for u, v, _ in self.interactions())
        return g

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _canonical(u: Variable, v: Variable) -> Interaction:
        a, b = sorted((u, v), key=lambda x: (str(type(x)), str(x)))
        return (a, b)

    def _require(self, v: Variable) -> None:
        if v not in self._linear:
            raise VariableError(f"unknown variable {v!r}")


def all_assignments(
    variables: Tuple[Variable, ...], vartype: Vartype
) -> Iterator[Dict[Variable, int]]:
    """Yield every assignment of ``variables`` over the given domain.

    Exponential in the number of variables; intended for models of at most
    ~22 variables (the exact-solver regime the paper uses to validate the
    QUBO encodings on small instances).
    """
    lo, hi = vartype.values
    for bits in itertools.product((lo, hi), repeat=len(variables)):
        yield dict(zip(variables, bits))
