"""Symbolic polynomial expressions over binary variables.

This module plays the role pyqubo plays in the paper's implementation
(Sec. 6.2.1): QUBO formulations are written as readable mathematical
expressions — sums, differences, products, squares of binary variables —
and compiled into a :class:`~repro.qubo.bqm.BinaryQuadraticModel`.

Because binary variables are idempotent (``x*x == x``), any product of
binary expressions reduces to a multilinear polynomial.  Compilation
raises if a term of degree three or higher survives, matching the
restriction of current quantum hardware to two-qubit interactions
(paper Sec. 3.3).

Example
-------
>>> x, y = BinaryVariable("x"), BinaryVariable("y")
>>> expr = (1 - x - y + 2 * x * y) ** 1
>>> bqm = expr.compile()
>>> bqm.energy({"x": 1, "y": 1})
1.0
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Mapping, Union

from repro.exceptions import ModelError
from repro.qubo.bqm import BinaryQuadraticModel, Vartype

Number = Union[int, float]
Monomial = FrozenSet[Hashable]

_EMPTY: Monomial = frozenset()


class BinaryExpression:
    """A multilinear polynomial over named binary variables.

    Internally a mapping from monomials (frozensets of variable names,
    reduced by idempotence) to real coefficients.  Instances are
    immutable; all operators return new expressions.
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[Monomial, float]) -> None:
        self._terms: Dict[Monomial, float] = {
            m: float(c) for m, c in terms.items() if c != 0.0
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def terms(self) -> Dict[Monomial, float]:
        """Copy of the monomial → coefficient mapping."""
        return dict(self._terms)

    @property
    def degree(self) -> int:
        """Largest monomial size (0 for a constant expression)."""
        return max((len(m) for m in self._terms), default=0)

    def variables(self) -> FrozenSet[Hashable]:
        """All variable names appearing in the expression."""
        names = set()
        for m in self._terms:
            names |= m
        return frozenset(names)

    def constant(self) -> float:
        """The coefficient of the empty monomial."""
        return self._terms.get(_EMPTY, 0.0)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __add__(self, other: Union["BinaryExpression", Number]) -> "BinaryExpression":
        other = _coerce(other)
        terms = dict(self._terms)
        for m, c in other._terms.items():
            terms[m] = terms.get(m, 0.0) + c
        return BinaryExpression(terms)

    def __radd__(self, other: Number) -> "BinaryExpression":
        return self.__add__(other)

    def __sub__(self, other: Union["BinaryExpression", Number]) -> "BinaryExpression":
        return self.__add__(_coerce(other).__neg__())

    def __rsub__(self, other: Number) -> "BinaryExpression":
        return _coerce(other).__sub__(self)

    def __neg__(self) -> "BinaryExpression":
        return BinaryExpression({m: -c for m, c in self._terms.items()})

    def __mul__(self, other: Union["BinaryExpression", Number]) -> "BinaryExpression":
        other = _coerce(other)
        terms: Dict[Monomial, float] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other._terms.items():
                m = m1 | m2  # idempotence: x*x == x
                terms[m] = terms.get(m, 0.0) + c1 * c2
        return BinaryExpression(terms)

    def __rmul__(self, other: Number) -> "BinaryExpression":
        return self.__mul__(other)

    def __pow__(self, exponent: int) -> "BinaryExpression":
        if not isinstance(exponent, int) or exponent < 0:
            raise ModelError("exponent must be a non-negative integer")
        result = _coerce(1)
        for _ in range(exponent):
            result = result * self
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BinaryExpression):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(frozenset(self._terms.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._terms:
            return "BinaryExpression(0)"
        parts = []
        for m, c in sorted(self._terms.items(), key=lambda kv: (len(kv[0]), str(sorted(map(str, kv[0]))))):
            names = "*".join(sorted(map(str, m))) or "1"
            parts.append(f"{c:+g}*{names}")
        return f"BinaryExpression({' '.join(parts)})"

    # ------------------------------------------------------------------
    # Evaluation and compilation
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[Hashable, int]) -> float:
        """Evaluate the polynomial at a 0/1 assignment."""
        total = 0.0
        for m, c in self._terms.items():
            value = c
            for name in m:
                value *= assignment[name]
                if value == 0.0:
                    break
            total += value
        return total

    def compile(self) -> BinaryQuadraticModel:
        """Lower the expression into a binary quadratic model.

        Raises
        ------
        ModelError
            If any monomial has degree three or more.  Degree reduction
            via auxiliary variables is out of the paper's scope (all its
            formulations are natively quadratic).
        """
        bqm = BinaryQuadraticModel(vartype=Vartype.BINARY)
        for m, c in self._terms.items():
            if len(m) == 0:
                bqm.offset += c
            elif len(m) == 1:
                (v,) = m
                bqm.add_linear(v, c)
            elif len(m) == 2:
                u, v = sorted(m, key=str)
                bqm.add_quadratic(u, v, c)
            else:
                names = sorted(map(str, m))
                raise ModelError(
                    f"monomial {'*'.join(names)} has degree {len(m)} > 2; "
                    "the expression is not a QUBO"
                )
        # keep variables that appear only in cancelled terms out; but make
        # sure every variable referenced by a surviving monomial exists
        return bqm


def BinaryVariable(name: Hashable) -> BinaryExpression:
    """A single binary variable as an expression."""
    return BinaryExpression({frozenset((name,)): 1.0})


def Constant(value: Number) -> BinaryExpression:
    """A constant as an expression."""
    return BinaryExpression({_EMPTY: float(value)})


def _coerce(value: Union[BinaryExpression, Number]) -> BinaryExpression:
    if isinstance(value, BinaryExpression):
        return value
    if isinstance(value, (int, float)):
        return Constant(value)
    raise ModelError(f"cannot use {value!r} in a binary expression")
