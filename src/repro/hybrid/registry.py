"""Unified solver registry: every end-to-end QUBO path behind one protocol.

The repository grew one solver entry point per subsystem — brute-force
enumeration in :mod:`repro.qubo.exact`, annealing samplers in
:mod:`repro.annealing`, gate-model eigensolvers in
:mod:`repro.variational`, and now the hybrid decomposing solver.  This
module puts them behind a single :class:`Solver` protocol —

``name`` / ``capabilities`` / ``max_variables`` / ``solve(bqm, seed)``

— so experiments can sweep solver names as grid dimensions through the
harness, and the CLI can route ``--solver <name>`` without per-solver
plumbing.  :func:`make_solver` instantiates by name with keyword
options (unknown option names raise
:class:`~repro.exceptions.ConfigurationError` listing the valid ones);
:func:`register_solver` lets extensions add entries.

Solvers whose ``solve`` accepts a ``time_budget`` keyword (seconds)
stop cooperatively once the budget is spent and return the best sample
found so far — the contract the service layer's deadline-aware
fallback chains rely on (probe with :func:`supports_time_budget`).

Registered names
----------------
==============  ====================================================
``greedy``      steepest single-flip descent (with seeded restarts)
``genetic``     genetic algorithm over bitstrings
``exact``       brute-force enumeration (alias: ``exhaustive``)
``sa``          simulated annealing (:mod:`repro.annealing`)
``tabu``        tabu search (:mod:`repro.hybrid.tabu`)
``exact-eigen``  NumPy minimum eigensolver on the Ising Hamiltonian
``vqe``         variational quantum eigensolver (statevector)
``qaoa``        QAOA (statevector)
``hybrid``      decomposing hybrid solver (:mod:`repro.hybrid.solver`)
``fleet``       hybrid solver sharding across a multi-annealer fleet
                (:mod:`repro.annealers`; boundary-reconciled merges)
==============  ====================================================
"""

from __future__ import annotations

import inspect
import time
from typing import Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

try:  # Protocol is 3.8+; keep a soft fallback for exotic interpreters
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from repro.exceptions import ConfigurationError, SolverError
from repro.annealing.simulated_annealing import SimulatedAnnealingSampler
from repro.hybrid.solver import DecomposingSolver, SolveResult, greedy_descent
from repro.hybrid.tabu import TabuSampler
from repro.qubo.bqm import BinaryQuadraticModel
from repro.qubo.exact import brute_force_minimum


@runtime_checkable
class Solver(Protocol):
    """What every registry entry provides."""

    name: str
    capabilities: frozenset
    max_variables: Optional[int]

    def solve(
        self, bqm: BinaryQuadraticModel, seed: Optional[int] = None
    ) -> SolveResult:  # pragma: no cover - protocol stub
        ...


def supports_time_budget(solver: "Solver") -> bool:
    """Does ``solver.solve`` accept a ``time_budget`` keyword?"""
    return _accepts_keyword(solver.solve, "time_budget")


def supports_compiled(solver: "Solver") -> bool:
    """Does ``solver.solve`` accept a ``compiled`` keyword?

    Solvers advertising it run their kernels straight off a
    :class:`~repro.qubo.compiled.CompiledBQM`, letting callers (the
    service's compilation cache, the hybrid decomposer) compile once
    and amortize across solves.
    """
    return _accepts_keyword(solver.solve, "compiled")


def _accepts_keyword(func, keyword: str) -> bool:
    try:
        signature = inspect.signature(func)
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
    return keyword in signature.parameters


def _budget_deadline(time_budget: Optional[float]) -> Optional[float]:
    """Monotonic-clock deadline for a cooperative time budget."""
    if time_budget is None:
        return None
    return time.monotonic() + max(0.0, float(time_budget))


def _budget_spent(deadline: Optional[float]) -> bool:
    return deadline is not None and time.monotonic() >= deadline


def check_size(solver: "Solver", bqm: BinaryQuadraticModel) -> None:
    """Raise when a model exceeds a solver's variable budget."""
    limit = solver.max_variables
    if limit is not None and bqm.num_variables > limit:
        raise SolverError(
            f"solver {solver.name!r} handles at most {limit} variables, "
            f"model has {bqm.num_variables}"
        )


# ----------------------------------------------------------------------
# Classical baselines at the BQM level
# ----------------------------------------------------------------------
class GreedySolver:
    """Steepest single-flip descent from seeded random restarts."""

    name = "greedy"
    capabilities = frozenset({"heuristic", "classical"})
    max_variables: Optional[int] = None

    def __init__(self, restarts: int = 8, seed: Optional[int] = None) -> None:
        if restarts < 1:
            raise SolverError("restarts must be positive")
        self.restarts = restarts
        self.seed = seed

    def solve(
        self,
        bqm: BinaryQuadraticModel,
        seed: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> SolveResult:
        if bqm.num_variables == 0:
            return SolveResult(sample={}, energy=bqm.offset, solver=self.name)
        deadline = _budget_deadline(time_budget)
        rng = np.random.default_rng(self.seed if seed is None else seed)
        lo, hi = bqm.vartype.values
        variables = list(bqm.variables)
        best_sample: Dict[Hashable, int] = {}
        best_energy = float("inf")
        for restart in range(self.restarts):
            if restart > 0 and _budget_spent(deadline):
                break
            values = rng.choice((lo, hi), size=len(variables))
            sample = greedy_descent(
                bqm, {v: int(values[i]) for i, v in enumerate(variables)}
            )
            energy = bqm.energy(sample)
            if energy < best_energy:
                best_sample, best_energy = sample, energy
        return SolveResult(sample=best_sample, energy=best_energy, solver=self.name)


class GeneticSolver:
    """Genetic algorithm over bitstrings with energy fitness.

    The BQM-level analogue of the [Bayir et al. 2006] MQO baseline:
    tournament selection, uniform crossover, per-bit mutation,
    elitist merge.
    """

    name = "genetic"
    capabilities = frozenset({"heuristic", "classical"})
    max_variables: Optional[int] = None

    def __init__(
        self,
        population_size: int = 40,
        generations: int = 60,
        mutation_rate: float = 0.02,
        tournament: int = 3,
        seed: Optional[int] = None,
    ) -> None:
        self.population_size = population_size
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.tournament = tournament
        self.seed = seed

    def solve(
        self,
        bqm: BinaryQuadraticModel,
        seed: Optional[int] = None,
        time_budget: Optional[float] = None,
    ) -> SolveResult:
        if bqm.num_variables == 0:
            return SolveResult(sample={}, energy=bqm.offset, solver=self.name)
        deadline = _budget_deadline(time_budget)
        rng = np.random.default_rng(self.seed if seed is None else seed)
        variables = list(bqm.variables)
        lo, hi = bqm.vartype.values
        n = len(variables)

        def energy_of(bits: np.ndarray) -> float:
            return bqm.energy(
                {v: int(bits[i]) for i, v in enumerate(variables)}
            )

        population = rng.choice((lo, hi), size=(self.population_size, n))
        costs = np.array([energy_of(ind) for ind in population])
        for _ in range(self.generations):
            if _budget_spent(deadline):
                break
            children = []
            for _ in range(self.population_size):
                picks = rng.integers(
                    0, self.population_size, size=(2, self.tournament)
                )
                parents = [
                    population[picks[i][np.argmin(costs[picks[i]])]]
                    for i in range(2)
                ]
                mask = rng.random(n) < 0.5
                child = np.where(mask, parents[0], parents[1])
                mutate = rng.random(n) < self.mutation_rate
                if mutate.any():
                    child = child.copy()
                    child[mutate] = rng.choice((lo, hi), size=n)[mutate]
                children.append(child)
            children = np.stack(children)
            child_costs = np.array([energy_of(ind) for ind in children])
            merged = np.concatenate([population, children])
            merged_costs = np.concatenate([costs, child_costs])
            order = np.argsort(merged_costs, kind="stable")[: self.population_size]
            population, costs = merged[order], merged_costs[order]
        best = population[int(np.argmin(costs))]
        sample = {v: int(best[i]) for i, v in enumerate(variables)}
        return SolveResult(
            sample=sample, energy=float(costs.min()), solver=self.name
        )


class ExactSolver:
    """Brute-force enumeration (the ``ExactQuboSolver`` path)."""

    name = "exact"
    capabilities = frozenset({"exact", "classical"})
    max_variables: Optional[int] = 26

    def solve(
        self, bqm: BinaryQuadraticModel, seed: Optional[int] = None
    ) -> SolveResult:
        check_size(self, bqm)
        result = brute_force_minimum(bqm)
        return SolveResult(
            sample=dict(result.sample),
            energy=float(result.energy),
            solver=self.name,
            info={"num_optima": len(result.all_optima)},
        )


class SamplerSolver:
    """Adapter for Ocean-style ``sample(bqm, num_reads, seed)`` samplers."""

    max_variables: Optional[int] = None

    def __init__(
        self,
        sampler,
        name: str,
        capabilities: frozenset,
        num_reads: int = 25,
    ) -> None:
        self.sampler = sampler
        self.name = name
        self.capabilities = capabilities
        self.num_reads = num_reads

    def solve(
        self,
        bqm: BinaryQuadraticModel,
        seed: Optional[int] = None,
        time_budget: Optional[float] = None,
        compiled=None,
    ) -> SolveResult:
        if bqm.num_variables == 0:
            return SolveResult(sample={}, energy=bqm.offset, solver=self.name)
        extra = {}
        if compiled is not None and _accepts_keyword(self.sampler.sample, "compiled"):
            extra["compiled"] = compiled
        if time_budget is None:
            sample_set = self.sampler.sample(
                bqm, num_reads=self.num_reads, seed=seed, **extra
            )
            best = sample_set.first
            return SolveResult(
                sample=dict(best.sample), energy=float(best.energy), solver=self.name
            )
        # budgeted path: issue reads one at a time (per-read seeds drawn
        # up front so the k-reads-completed outcome is seed-deterministic)
        # and stop once the budget is spent; the first read always runs.
        deadline = _budget_deadline(time_budget)
        rng = np.random.default_rng(seed)
        read_seeds = [int(s) for s in rng.integers(0, 2**31, size=self.num_reads)]
        best = None
        reads_done = 0
        for read_seed in read_seeds:
            record = self.sampler.sample(
                bqm, num_reads=1, seed=read_seed, **extra
            ).first
            reads_done += 1
            if best is None or record.energy < best.energy - 1e-12:
                best = record
            if _budget_spent(deadline):
                break
        return SolveResult(
            sample=dict(best.sample),
            energy=float(best.energy),
            solver=self.name,
            info={"reads": reads_done, "budgeted": True},
        )


class EigenSolver:
    """Gate-model path: Ising Hamiltonian + a minimum eigensolver.

    ``kind`` selects ``exact-eigen`` (NumPy diagonalization), ``vqe``
    or ``qaoa``.  Statevector simulation is exponential in qubits, so
    ``max_variables`` defaults to 20 (the paper's practical ceiling
    sits at ~32, Sec. 6.3.4).
    """

    def __init__(
        self,
        kind: str = "exact-eigen",
        max_variables: int = 20,
        maxiter: int = 150,
        reps: int = 1,
    ) -> None:
        if kind not in ("exact-eigen", "vqe", "qaoa"):
            raise SolverError(f"unknown eigensolver kind {kind!r}")
        self.kind = kind
        self.name = kind
        self.capabilities = frozenset(
            {"gate-model"} | ({"exact"} if kind == "exact-eigen" else {"heuristic"})
        )
        self.max_variables = max_variables
        self.maxiter = maxiter
        self.reps = reps

    def solve(
        self, bqm: BinaryQuadraticModel, seed: Optional[int] = None
    ) -> SolveResult:
        from repro.variational.minimum_eigen import (
            MinimumEigenOptimizer,
            NumPyMinimumEigensolver,
        )

        check_size(self, bqm)
        if self.kind == "exact-eigen":
            inner = NumPyMinimumEigensolver()
        elif self.kind == "vqe":
            from repro.variational.optimizers import Cobyla
            from repro.variational.vqe import VQE

            inner = VQE(
                optimizer=Cobyla(maxiter=self.maxiter), reps=self.reps, seed=seed
            )
        else:
            from repro.variational.optimizers import Cobyla
            from repro.variational.qaoa import QAOA

            inner = QAOA(
                optimizer=Cobyla(maxiter=self.maxiter), reps=self.reps, seed=seed
            )
        optimizer = MinimumEigenOptimizer(inner, max_qubits=self.max_variables)
        result = optimizer.solve(bqm)
        # lowest-energy candidate first (covers solvers whose reported
        # sample is not their lowest-energy measurement)
        ranked = sorted(
            [(result.sample, result.fval)] + list(result.candidates),
            key=lambda item: item[1],
        )
        sample, energy = ranked[0]
        return SolveResult(
            sample=dict(sample), energy=float(energy), solver=self.name
        )


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
_FACTORIES: Dict[str, Callable[..., Solver]] = {}


def register_solver(
    name: str, factory: Callable[..., Solver], replace: bool = False
) -> None:
    """Add a solver factory under ``name`` (error on collisions)."""
    if name in _FACTORIES and not replace:
        raise SolverError(f"solver {name!r} is already registered")
    _FACTORIES[name] = factory


def solver_names() -> Tuple[str, ...]:
    """All registered names, sorted."""
    return tuple(sorted(_FACTORIES))


def valid_options(name: str) -> Optional[Tuple[str, ...]]:
    """Option names a solver's factory accepts.

    ``None`` means the factory takes ``**kwargs`` (or is uninspectable)
    and therefore opts out of validation.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise SolverError(
            f"unknown solver {name!r}; registered: {', '.join(solver_names())}"
        ) from None
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - C-level factories
        return None
    names = []
    for parameter in signature.parameters.values():
        if parameter.kind == inspect.Parameter.VAR_KEYWORD:
            return None
        if parameter.kind == inspect.Parameter.VAR_POSITIONAL:
            continue
        names.append(parameter.name)
    return tuple(names)


def make_solver(name: str, **options) -> Solver:
    """Instantiate a registered solver with keyword options.

    Unknown option names raise :class:`ConfigurationError` listing the
    valid ones, so a typo surfaces as a configuration problem instead
    of a bare ``TypeError`` from some inner constructor.
    """
    accepted = valid_options(name)
    if accepted is not None:
        unknown = sorted(set(options) - set(accepted))
        if unknown:
            raise ConfigurationError(
                f"unknown option(s) {', '.join(unknown)} for solver {name!r}; "
                f"valid options: {', '.join(accepted) if accepted else '(none)'}"
            )
    return _FACTORIES[name](**options)


def solver_catalog() -> List[Dict[str, object]]:
    """One descriptive row per registered solver (for CLI listings)."""
    rows = []
    for name in solver_names():
        solver = make_solver(name)
        rows.append(
            {
                "name": name,
                "capabilities": ",".join(sorted(solver.capabilities)),
                "max_variables": solver.max_variables,
            }
        )
    return rows


# Factories carry explicit keyword signatures (no ``**kwargs``) so
# :func:`make_solver` can validate option names against them.
def _make_sa(
    num_reads: int = 25,
    num_sweeps: int = 200,
    beta_range=None,
    seed: Optional[int] = None,
    greedy_postprocess: bool = True,
) -> SamplerSolver:
    return SamplerSolver(
        SimulatedAnnealingSampler(
            num_sweeps=num_sweeps,
            beta_range=beta_range,
            seed=seed,
            greedy_postprocess=greedy_postprocess,
        ),
        name="sa",
        capabilities=frozenset({"heuristic", "annealing"}),
        num_reads=num_reads,
    )


def _make_tabu(
    num_reads: int = 10,
    tenure: Optional[int] = None,
    max_iter: Optional[int] = None,
    stall_limit: Optional[int] = None,
    seed: Optional[int] = None,
) -> SamplerSolver:
    return SamplerSolver(
        TabuSampler(tenure=tenure, max_iter=max_iter, stall_limit=stall_limit, seed=seed),
        name="tabu",
        capabilities=frozenset({"heuristic", "local-search"}),
        num_reads=num_reads,
    )


def _make_exact_eigen(
    max_variables: int = 20, maxiter: int = 150, reps: int = 1
) -> EigenSolver:
    return EigenSolver(
        kind="exact-eigen", max_variables=max_variables, maxiter=maxiter, reps=reps
    )


def _make_vqe(max_variables: int = 20, maxiter: int = 150, reps: int = 1) -> EigenSolver:
    return EigenSolver(kind="vqe", max_variables=max_variables, maxiter=maxiter, reps=reps)


def _make_qaoa(max_variables: int = 20, maxiter: int = 150, reps: int = 1) -> EigenSolver:
    return EigenSolver(kind="qaoa", max_variables=max_variables, maxiter=maxiter, reps=reps)


def _make_fleet(
    fleet_size: int = 2,
    family: str = "chimera",
    m: int = 4,
    t: int = 4,
    num_sweeps: int = 200,
    sub_size: int = 16,
    sub_reads: int = 5,
    max_rounds: int = 32,
    stall_rounds: int = 5,
    restarts: int = 4,
    perturb_fraction: float = 0.3,
    seed: Optional[int] = None,
    boundary_reconciliation: bool = True,
) -> DecomposingSolver:
    """Decomposing solver sharding across a homogeneous annealer fleet.

    Blocks are additionally capped at the devices' guaranteed embedding
    capacity (the native clique), so every shard the solver produces is
    admissible on every device.
    """
    from repro.annealers import AnnealerFleet  # lazy: keeps import cheap

    fleet = AnnealerFleet.homogeneous(
        fleet_size, family=family, m=m, t=t, num_sweeps=num_sweeps
    )
    return DecomposingSolver(
        sub_size=sub_size,
        sub_reads=sub_reads,
        max_rounds=max_rounds,
        stall_rounds=stall_rounds,
        restarts=restarts,
        perturb_fraction=perturb_fraction,
        seed=seed,
        fleet=fleet,
        boundary_reconciliation=boundary_reconciliation,
    )


def _register_builtins() -> None:
    register_solver("greedy", GreedySolver)
    register_solver("genetic", GeneticSolver)
    register_solver("exact", ExactSolver)
    register_solver("exhaustive", ExactSolver)  # MQO-paper terminology
    register_solver("sa", _make_sa)
    register_solver("tabu", _make_tabu)
    register_solver("exact-eigen", _make_exact_eigen)
    register_solver("vqe", _make_vqe)
    register_solver("qaoa", _make_qaoa)
    register_solver("hybrid", DecomposingSolver)
    register_solver("fleet", _make_fleet)


_register_builtins()
