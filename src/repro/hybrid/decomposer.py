"""Subproblem selection and boundary clamping for hybrid solvers.

The qbsolv-style decomposition loop needs two primitives:

* **variable selection** — which ``sub_size``-sized subsets of the
  model's variables to re-optimize this round.  The primary strategy
  ranks variables by *energy impact* (the energy change of flipping
  the variable against the incumbent sample, most improving first) so
  the blocks chase descent directions.  The fallback partitions the
  interaction graph by *strong couplings*: variables joined by
  penalty-scale quadratic terms (the one-plan-per-query cliques of the
  MQO encoding, the successor chains of the join-ordering encoding)
  form components that must move together — single flips across them
  are always rejected — and components are packed into blocks by their
  mutual coupling weight so the exact sub-solve can trade off the
  terms that actually interact;
* **clamping** — freezing every variable outside the selected block at
  its incumbent value, which folds boundary couplings into the
  subproblem's linear biases and offset
  (:meth:`~repro.qubo.bqm.BinaryQuadraticModel.fix_variable`), so the
  subproblem's energies equal full-model energies of the patched
  incumbent.

All orderings tie-break on ``str(variable)``, keeping the decomposition
independent of dict insertion order and ``PYTHONHASHSEED``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import SolverError
from repro.qubo.bqm import BinaryQuadraticModel

Variable = Hashable
Sample = Mapping[Variable, int]


def flip_energy_gains(
    bqm: BinaryQuadraticModel, sample: Sample
) -> Dict[Variable, float]:
    """Energy change of flipping each variable against ``sample``.

    Works in the model's native domain: binary variables toggle 0↔1,
    spin variables negate.  Negative gain means the flip improves.
    """
    gains: Dict[Variable, float] = dict(bqm.linear)
    for u, v, bias in bqm.interactions():
        gains[u] += bias * sample[v]
        gains[v] += bias * sample[u]
    lo, hi = bqm.vartype.values
    out: Dict[Variable, float] = {}
    for v in bqm.variables:
        flipped = lo + hi - sample[v]
        out[v] = (flipped - sample[v]) * gains[v]
    return out


def select_by_energy_impact(
    bqm: BinaryQuadraticModel, sample: Sample, sub_size: int
) -> List[List[Variable]]:
    """Blocks of ``sub_size`` variables, most-improving flips first.

    Covers every variable exactly once, so iterating the returned
    blocks is one full round-robin pass over the model.
    """
    if sub_size < 1:
        raise SolverError("sub_size must be positive")
    gains = flip_energy_gains(bqm, sample)
    ranked = sorted(bqm.variables, key=lambda v: (gains[v], str(v)))
    return [ranked[i : i + sub_size] for i in range(0, len(ranked), sub_size)]


def strong_components(
    bqm: BinaryQuadraticModel, ratio: float = 0.5
) -> List[List[Variable]]:
    """Connected components of the strong-coupling subgraph.

    An edge is *strong* when ``|bias| >= ratio * max|bias|``; in
    penalty-encoded QUBOs that keeps exactly the constraint couplings
    (e.g. each query's one-plan clique) and drops the cost/savings
    terms.  Models without quadratic terms yield singletons.
    """
    if not 0.0 < ratio <= 1.0:
        raise SolverError("ratio must be in (0, 1]")
    quadratic = bqm.quadratic
    ordered = sorted(bqm.variables, key=str)
    if not quadratic:
        return [[v] for v in ordered]
    peak = max(abs(b) for b in quadratic.values())
    adjacency: Dict[Variable, List[Variable]] = {v: [] for v in bqm.variables}
    for (u, v), bias in quadratic.items():
        if abs(bias) >= ratio * peak:
            adjacency[u].append(v)
            adjacency[v].append(u)
    for v in adjacency:
        adjacency[v].sort(key=str)

    components: List[List[Variable]] = []
    seen: set = set()
    for root in ordered:
        if root in seen:
            continue
        component: List[Variable] = []
        queue = [root]
        seen.add(root)
        while queue:
            v = queue.pop(0)
            component.append(v)
            for u in adjacency[v]:
                if u not in seen:
                    seen.add(u)
                    queue.append(u)
        components.append(component)
    return components


def component_weights(
    bqm: BinaryQuadraticModel, components: Sequence[Sequence[Variable]]
) -> Dict[Tuple[int, int], float]:
    """Total |coupling| between each pair of components."""
    where: Dict[Variable, int] = {}
    for index, component in enumerate(components):
        for v in component:
            where[v] = index
    weights: Dict[Tuple[int, int], float] = {}
    for (u, v), bias in bqm.quadratic.items():
        i, j = where[u], where[v]
        if i != j:
            key = (min(i, j), max(i, j))
            weights[key] = weights.get(key, 0.0) + abs(bias)
    return weights


def pack_components(
    components: Sequence[Sequence[Variable]],
    weights: Mapping[Tuple[int, int], float],
    order: Sequence[int],
    sub_size: int,
) -> List[List[Variable]]:
    """Pack components into ``sub_size``-bounded blocks by connectivity.

    Each block is seeded with the next unused component in ``order``
    and greedily grown with the unused component most strongly coupled
    to it, so the variables a sub-solve can actually trade off end up
    together.  Components larger than ``sub_size`` are chopped.
    """
    if sub_size < 1:
        raise SolverError("sub_size must be positive")
    split: List[List[Variable]] = []
    split_order: List[int] = []
    for index in order:
        component = list(components[index])
        if len(component) <= sub_size:
            split_order.append(len(split))
            split.append(component)
        else:
            for start in range(0, len(component), sub_size):
                split_order.append(len(split))
                split.append(component[start : start + sub_size])

    used: set = set()
    blocks: List[List[Variable]] = []
    for seed_index in split_order:
        if seed_index in used:
            continue
        block_indices = [seed_index]
        used.add(seed_index)
        size = len(split[seed_index])
        while True:
            best = None
            best_weight = 0.0
            for candidate in split_order:
                if candidate in used or size + len(split[candidate]) > sub_size:
                    continue
                connection = sum(
                    weights.get((min(candidate, member), max(candidate, member)), 0.0)
                    for member in block_indices
                )
                if connection > best_weight:
                    best, best_weight = candidate, connection
            if best is None:
                for candidate in split_order:
                    if candidate not in used and size + len(split[candidate]) <= sub_size:
                        best = candidate
                        break
            if best is None:
                break
            block_indices.append(best)
            used.add(best)
            size += len(split[best])
        blocks.append([v for index in block_indices for v in split[index]])
    return blocks


def select_by_graph_partition(
    bqm: BinaryQuadraticModel,
    sub_size: int,
    order: Optional[Sequence[int]] = None,
    ratio: float = 0.5,
) -> List[List[Variable]]:
    """Strong-coupling partition of the variables into blocks.

    ``order`` permutes the component seeding (the decomposing solver
    passes a fresh shuffle each round so different components get
    co-optimized); ``None`` keeps the deterministic sorted order.
    """
    components = strong_components(bqm, ratio=ratio)
    weights = component_weights(bqm, components)
    if order is None:
        order = range(len(components))
    return pack_components(components, weights, order, sub_size)


def clamp_subproblem(
    bqm: BinaryQuadraticModel, free: Sequence[Variable], sample: Sample
) -> BinaryQuadraticModel:
    """Restrict ``bqm`` to ``free``, fixing all other variables.

    The returned model's energy over the free variables equals the full
    model's energy of ``sample`` patched with the free assignment, so
    sub-solver energies are directly comparable to the incumbent's.
    """
    free_set = set(free)
    unknown = free_set - set(bqm.variables)
    if unknown:
        raise SolverError(f"free variables not in model: {sorted(map(str, unknown))}")
    sub = bqm.copy()
    for v in bqm.variables:
        if v not in free_set:
            sub.fix_variable(v, sample[v])
    return sub
