"""Boundary reconciliation for sharded (fleet-mode) decomposition.

When independent shards are solved concurrently against the *same*
incumbent, each shard's answer is optimal only under the assumption
that every other shard kept its old values.  Patching all shards into
the incumbent at once (the naive merge) breaks that assumption exactly
on the *frontier* — variables with a quadratic coupling into another
shard — and the merged assignment can even be worse than the best
single shard.  Trummer & Koch's multi-annealer MQO pipeline
(arXiv 1510.06437) re-optimizes these border variables classically
after the merge; :func:`reconcile_boundary` is that pass.

Guarantees (both by construction, and both checked by the
``shard-reconciliation`` verify invariant):

* the reconciled assignment's energy is **never above** the naive
  merge's — chunk re-solves are accepted only when they improve, and
  the final greedy descent only descends;
* no single frontier flip improves the reconciled assignment — the
  pass ends with an exact single-flip descent over the frontier
  variables (clamping the interior), and a frontier flip's full-model
  energy delta equals its delta in that clamped subproblem.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.harness import derive_seed
from repro.qubo.bqm import BinaryQuadraticModel
from repro.qubo.exact import brute_force_minimum

from .decomposer import clamp_subproblem

Variable = Hashable
Sample = Mapping[Variable, int]
#: ``(clamped_sub_bqm, seed) -> (sample, energy)``
BlockSolver = Callable[[BinaryQuadraticModel, int], Tuple[Dict[Variable, int], float]]

__all__ = ["frontier_variables", "reconcile_boundary"]

_EXACT_CHUNK_LIMIT = 20
_SEED_SCOPE = "repro.hybrid.reconcile"


def frontier_variables(
    bqm: BinaryQuadraticModel, blocks: Sequence[Sequence[Variable]]
) -> List[Variable]:
    """Variables coupled (quadratically) across block boundaries.

    These are the only variables whose shard-local optimality can be
    invalidated by other shards moving; everything else sees an
    unchanged neighbourhood.  Sorted by ``str(var)`` for determinism.
    """
    where: Dict[Variable, int] = {}
    for index, block in enumerate(blocks):
        for v in block:
            where[v] = index
    frontier: set = set()
    for u, v in bqm.quadratic:
        if where.get(u) != where.get(v):
            frontier.add(u)
            frontier.add(v)
    return sorted(frontier, key=str)


def _default_block_solver(
    sub: BinaryQuadraticModel, seed: int
) -> Tuple[Dict[Variable, int], float]:
    """Exact for small chunks; single-flip descent otherwise."""
    from .solver import greedy_descent  # local import: solver imports us

    if sub.num_variables <= _EXACT_CHUNK_LIMIT:
        result = brute_force_minimum(sub)
        return dict(result.sample), float(result.energy)
    start = {v: min(sub.vartype.values) for v in sub.variables}
    descended = greedy_descent(sub, start)
    return descended, sub.energy(descended)


def reconcile_boundary(
    bqm: BinaryQuadraticModel,
    sample: Sample,
    frontier: Sequence[Variable],
    solve_block: Optional[BlockSolver] = None,
    seed: int = 0,
    chunk_size: int = 16,
) -> Tuple[Dict[Variable, int], float]:
    """Re-optimize ``frontier`` variables of a merged assignment.

    Chunks the frontier (``str``-sorted, ``chunk_size`` at a time),
    clamps everything else to ``sample``, re-solves each chunk with
    ``solve_block`` and accepts only improvements, then finishes with
    an exact greedy descent over the whole frontier.  Returns
    ``(sample, energy)`` with ``energy <= bqm.energy(sample)``.

    ``solve_block`` defaults to exact enumeration for chunks of at most
    20 variables; the fleet solver passes its own block solver so the
    reconciliation pass shares the solve's block caches.  Chunk seeds
    derive from ``seed`` via the harness scheme, so the pass is
    deterministic and independent of dispatch concurrency.
    """
    merged: Dict[Variable, int] = dict(sample)
    energy = bqm.energy(merged)
    if not frontier:
        return merged, energy
    solver = _default_block_solver if solve_block is None else solve_block
    ordered = sorted(frontier, key=str)
    for start in range(0, len(ordered), max(1, int(chunk_size))):
        chunk = ordered[start : start + max(1, int(chunk_size))]
        sub = clamp_subproblem(bqm, chunk, merged)
        chunk_seed = derive_seed(seed, _SEED_SCOPE, {"chunk": start})
        chunk_sample, chunk_energy = solver(sub, chunk_seed)
        if chunk_energy < energy - 1e-9:
            merged.update(chunk_sample)
            energy = chunk_energy

    # Final exact single-flip descent over the entire frontier: the
    # clamped subproblem's flip deltas equal the full model's for
    # frontier variables, so on exit no frontier flip improves.
    from .solver import greedy_descent  # local import: solver imports us

    sub = clamp_subproblem(bqm, ordered, merged)
    descended = greedy_descent(sub, {v: merged[v] for v in ordered})
    candidate = dict(merged)
    candidate.update(descended)
    candidate_energy = sub.energy(descended)
    if candidate_energy < energy - 1e-12:
        merged, energy = candidate, candidate_energy
    return merged, energy
