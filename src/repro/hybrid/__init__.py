"""Decomposition-based hybrid solving and the unified solver registry.

Near-term quantum hardware holds only toy MQO/join-ordering instances
(the paper's core conclusion); the hybrid literature it spawned
([Trummer & Koch 2016] on D-Wave MQO, Fankhauser et al. 2021's hybrid
quantum-classical MQO, qbsolv) decomposes large QUBOs into
hardware-sized subproblems and iterates.  This package provides that
layer for the reproduction:

* :class:`~repro.hybrid.solver.DecomposingSolver` — qbsolv-style
  decomposition loop (energy-impact block selection with a
  graph-partition fallback, boundary clamping, exact or local-search
  sub-solves, round-robin until converged);
* :class:`~repro.hybrid.tabu.TabuSampler` — Ocean-compatible tabu
  search, the default classical sub-solver;
* :mod:`~repro.hybrid.reconcile` — boundary reconciliation for
  fleet-mode sharding (frontier re-optimization after a concurrent
  multi-annealer merge; see :mod:`repro.annealers`);
* :mod:`~repro.hybrid.registry` — every end-to-end solver path
  (classical baselines, exact enumeration, annealing, gate-model
  eigensolvers, hybrid, multi-annealer fleet) behind one ``Solver``
  protocol keyed by name.
"""

from repro.hybrid.decomposer import (
    clamp_subproblem,
    component_weights,
    flip_energy_gains,
    pack_components,
    select_by_energy_impact,
    select_by_graph_partition,
    strong_components,
)
from repro.hybrid.registry import (
    Solver,
    make_solver,
    register_solver,
    solver_catalog,
    solver_names,
    supports_time_budget,
    valid_options,
)
from repro.hybrid.reconcile import frontier_variables, reconcile_boundary
from repro.hybrid.solver import DecomposingSolver, SolveResult, greedy_descent
from repro.hybrid.tabu import TabuSampler

__all__ = [
    "DecomposingSolver",
    "SolveResult",
    "Solver",
    "TabuSampler",
    "clamp_subproblem",
    "component_weights",
    "flip_energy_gains",
    "frontier_variables",
    "greedy_descent",
    "make_solver",
    "pack_components",
    "reconcile_boundary",
    "register_solver",
    "select_by_energy_impact",
    "select_by_graph_partition",
    "solver_catalog",
    "solver_names",
    "strong_components",
    "supports_time_budget",
    "valid_options",
]
