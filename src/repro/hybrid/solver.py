"""The qbsolv-style decomposing hybrid solver.

Large QUBOs exceed both exact enumeration (~26 variables) and the
statevector simulator (~32 qubits), and near-term annealers hold only
hardware-sized subproblems — the bound the paper's evaluation keeps
running into.  The hybrid literature it spawned ([Booth, Reinhardt &
Roy 2017]'s qbsolv, Fankhauser et al.'s hybrid MQO) decomposes: solve
bounded-size subproblems with whatever solver fits them, clamp the
boundary to the incumbent, and iterate until no round improves.

:class:`DecomposingSolver` implements that loop over any
:class:`~repro.qubo.bqm.BinaryQuadraticModel`:

1. start each restart from a full-model ``subsolver`` run (or, on
   later restarts, a perturbed copy of the best incumbent), snapped
   into a single-flip minimum by greedy descent;
2. each round, split the variables into ``sub_size``-sized blocks —
   first by *energy impact* against the incumbent, then by the
   strong-coupling *graph partition* with a freshly shuffled component
   packing per round (:mod:`repro.hybrid.decomposer`), so successive
   rounds co-optimize different groups of coupled components;
3. solve each clamped subproblem exactly when it fits under
   ``exact_limit``, otherwise with the pluggable ``subsolver`` (tabu
   search by default, simulated annealing drops in);
4. accept a block's solution whenever it lowers the incumbent energy;
   stop after ``stall_rounds`` consecutive rounds without improvement,
   or after ``max_rounds``.

The run is deterministic for a fixed seed: sub-seeds and the per-round
shuffles come from one ``default_rng`` stream and every ordering
tie-breaks on ``str(var)``.

**Fleet mode.**  Passing ``fleet=`` (an
:class:`~repro.annealers.AnnealerFleet`) switches the solver to the
multi-annealer scheduling mode of Trummer & Koch (arXiv 1510.06437):
blocks are sized to device capacity, every block of a round is clamped
against the *same* incumbent and dispatched concurrently across the
fleet, and the merged assignment passes through a boundary
reconciliation (:mod:`repro.hybrid.reconcile`) that re-optimizes
frontier variables shared between shards before the round's result is
accepted.  Block solve seeds derive from the (device spec, subproblem
content) pair and orchestration seeds from the harness scheme, so
fleet-mode results are bit-identical regardless of fleet size or
dispatch order.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.exceptions import SolverError
from repro.harness import derive_seed
from repro.hybrid.decomposer import (
    clamp_subproblem,
    component_weights,
    flip_energy_gains,
    pack_components,
    select_by_energy_impact,
    strong_components,
)
from repro.hybrid.reconcile import frontier_variables, reconcile_boundary
from repro.hybrid.tabu import TabuSampler
from repro.qubo.bqm import BinaryQuadraticModel
from repro.qubo.compiled import compile_bqm
from repro.qubo.exact import brute_force_minimum

_EXACT_HARD_LIMIT = 26  # brute_force_minimum's own ceiling
_FLEET_SEED_SCOPE = "repro.hybrid.fleet"


@dataclass
class _BlockCaches:
    """Per-``solve`` reuse of work on content-identical subproblems.

    ``exact`` memoizes the brute-force optimum of small blocks;
    ``compiled`` keeps the array-compiled form of subsolver-sized
    blocks.  Keyed by the clamped subproblem's full content
    (:func:`_subproblem_key`), so a hit is exactly a re-encounter of
    the same block with the same boundary assignment.
    """

    exact: Dict[tuple, tuple] = field(default_factory=dict)
    compiled: Dict[tuple, object] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0


def _subproblem_key(sub: BinaryQuadraticModel) -> tuple:
    """Content key of a clamped subproblem (exact float equality).

    The clamped sub-BQM is fully determined by its block variables and
    the incumbent values of their out-of-block neighbours, all of which
    land in its linear/quadratic coefficients and offset — hashing the
    content is therefore equivalent to hashing (block, boundary).
    """
    linear = tuple(
        sorted((str(v), bias) for v, bias in sub.linear.items())
    )
    quadratic = tuple(
        sorted(
            (*sorted((str(u), str(v))), bias)
            for u, v, bias in sub.interactions()
        )
    )
    return (sub.vartype.name, sub.offset, linear, quadratic)


@dataclass(frozen=True)
class SolveResult:
    """Outcome of a registry/hybrid solve: one best assignment."""

    sample: Dict[Hashable, int]
    energy: float
    solver: str
    #: solver-specific diagnostics (rounds, subproblem count, ...)
    info: Dict[str, object] = field(default_factory=dict)


class DecomposingSolver:
    """Decomposition-based hybrid solver for arbitrarily large BQMs.

    Parameters
    ----------
    sub_size:
        Maximum variables per subproblem (the "hardware size").
    exact_limit:
        Subproblems at or under this size are solved by exact
        enumeration; larger ones go to ``subsolver``.  Defaults to
        ``min(sub_size, 20)`` and is capped at 26.
    subsolver:
        Any Ocean-style sampler with ``sample(bqm, num_reads=…,
        seed=…)`` — :class:`~repro.hybrid.tabu.TabuSampler` (default)
        or :class:`~repro.annealing.simulated_annealing.SimulatedAnnealingSampler`.
    sub_reads:
        Reads per subsolver call.
    max_rounds:
        Hard cap on decomposition rounds per restart.
    stall_rounds:
        Stop a restart after this many consecutive rounds without an
        accepted improvement.
    restarts:
        Outer iterated-local-search restarts.  The first starts from a
        full-model subsolver run; afterwards odd restarts perturb the
        best incumbent and even restarts take a fresh subsolver start,
        alternating intensification with diversification.  The best
        solution over all restarts wins.
    perturb_fraction:
        Fraction of variables re-randomized on perturbing restarts.
    seed:
        Default seed; ``solve(..., seed=…)`` overrides per call.
    reuse_compiled:
        Reuse work across decomposition rounds within one ``solve``
        call.  Rounds repeatedly clamp the *same* blocks against an
        unchanged boundary (especially once the incumbent stabilises),
        producing byte-identical subproblems: exact blocks replay their
        memoized optimum and subsolver blocks skip recompilation by
        keying the array-compiled form on the subproblem's content.
        Bit-identical to the uncached path — the RNG stream is drawn at
        the call site and both the exact oracle and the compiled form
        are deterministic functions of the subproblem.
    fleet:
        An :class:`~repro.annealers.AnnealerFleet`.  When set, the
        solver switches to fleet mode (registry name ``"fleet"``):
        blocks are capped at the fleet's guaranteed embedding capacity
        (``min(sub_size, fleet.min_capacity())``), each round's blocks
        are clamped against the same incumbent and annealed
        concurrently across the devices, and the merged assignment is
        boundary-reconciled before acceptance.
    boundary_reconciliation:
        Fleet mode only: run the frontier re-optimization pass on the
        merged assignment (default).  Disabling it is the planted bug
        the ``shard-reconciliation`` verify invariant exists to catch —
        never turn it off outside harness self-tests.
    """

    name = "hybrid"
    capabilities = frozenset({"heuristic", "decomposition", "unbounded-size"})
    max_variables: Optional[int] = None

    def __init__(
        self,
        sub_size: int = 16,
        exact_limit: Optional[int] = None,
        subsolver=None,
        sub_reads: int = 5,
        max_rounds: int = 32,
        stall_rounds: int = 5,
        restarts: int = 4,
        perturb_fraction: float = 0.3,
        seed: Optional[int] = None,
        reuse_compiled: bool = True,
        fleet=None,
        boundary_reconciliation: bool = True,
    ) -> None:
        if sub_size < 2:
            raise SolverError("sub_size must be at least 2")
        if max_rounds < 1:
            raise SolverError("max_rounds must be positive")
        if stall_rounds < 1:
            raise SolverError("stall_rounds must be positive")
        if restarts < 1:
            raise SolverError("restarts must be positive")
        if not 0.0 < perturb_fraction <= 1.0:
            raise SolverError("perturb_fraction must be in (0, 1]")
        if exact_limit is None:
            exact_limit = min(sub_size, 20)
        if exact_limit > _EXACT_HARD_LIMIT:
            raise SolverError(
                f"exact_limit {exact_limit} exceeds the enumeration "
                f"ceiling {_EXACT_HARD_LIMIT}"
            )
        self.sub_size = sub_size
        self.exact_limit = exact_limit
        self.subsolver = subsolver if subsolver is not None else TabuSampler()
        try:
            self._subsolver_takes_compiled = (
                "compiled" in inspect.signature(self.subsolver.sample).parameters
            )
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            self._subsolver_takes_compiled = False
        self.sub_reads = sub_reads
        self.max_rounds = max_rounds
        self.stall_rounds = stall_rounds
        self.restarts = restarts
        self.perturb_fraction = perturb_fraction
        self.seed = seed
        self.reuse_compiled = reuse_compiled
        self.fleet = fleet
        self.boundary_reconciliation = bool(boundary_reconciliation)
        if fleet is not None:
            capacity = fleet.min_capacity()
            if capacity < 2:
                raise SolverError(
                    f"fleet capacity {capacity} is too small to host blocks"
                )
            self.name = "fleet"  # instance attr shadows the class attr

    # ------------------------------------------------------------------
    def solve(
        self,
        bqm: BinaryQuadraticModel,
        seed: Optional[int] = None,
        time_budget: Optional[float] = None,
        compiled=None,
    ) -> SolveResult:
        """Minimize ``bqm``; deterministic for a fixed seed.

        ``time_budget`` (seconds) makes the run cooperative: the budget
        is checked between restarts and between decomposition rounds,
        and the best incumbent found so far is returned once it is
        spent.  The first restart's first round always runs, so a valid
        sample comes back even under a zero budget.

        ``compiled`` (a :class:`~repro.qubo.compiled.CompiledBQM` of
        this exact model) feeds the subsolver's full-model calls —
        initial incumbents and models that fit in one block — without
        recompiling; clamped subproblems are distinct models and are
        compiled by the subsolver as usual.
        """
        if bqm.num_variables == 0:
            return SolveResult(sample={}, energy=bqm.offset, solver=self.name)
        deadline = (
            None if time_budget is None
            else time.monotonic() + max(0.0, float(time_budget))
        )
        if self.fleet is not None:
            return self._fleet_solve(bqm, seed, deadline)
        rng = np.random.default_rng(self.seed if seed is None else seed)

        if bqm.num_variables <= self.sub_size:
            sample, energy = self._solve_block(
                bqm, int(rng.integers(2**31)), compiled=compiled
            )
            return SolveResult(
                sample=sample, energy=energy, solver=self.name,
                info={"rounds": 0, "subproblems": 1, "decomposed": False},
            )

        components = strong_components(bqm)
        weights = component_weights(bqm, components)
        caches = _BlockCaches() if self.reuse_compiled else None

        best_sample: Dict[Hashable, int] = {}
        best_energy = float("inf")
        total_rounds = 0
        total_subproblems = 0
        for restart in range(self.restarts):
            if restart > 0 and deadline is not None and time.monotonic() >= deadline:
                break
            if restart == 0 or restart % 2 == 0:
                sample = self._initial_sample(bqm, rng, compiled=compiled)
            else:
                sample = self._perturb(bqm, best_sample, rng)
            sample, energy, rounds, subproblems = self._refine(
                bqm, sample, components, weights, rng, deadline=deadline,
                caches=caches,
            )
            total_rounds += rounds
            total_subproblems += subproblems
            if energy < best_energy - 1e-9:
                best_sample, best_energy = sample, energy

        info = {
            "rounds": total_rounds,
            "subproblems": total_subproblems,
            "restarts": self.restarts,
            "components": len(components),
            "decomposed": True,
        }
        if caches is not None:
            info["block_cache_hits"] = caches.hits
            info["block_cache_misses"] = caches.misses
        return SolveResult(
            sample=dict(best_sample),
            energy=float(best_energy),
            solver=self.name,
            info=info,
        )

    # ------------------------------------------------------------------
    def _fleet_solve(
        self,
        bqm: BinaryQuadraticModel,
        seed: Optional[int],
        deadline: Optional[float],
    ) -> SolveResult:
        """Multi-annealer scheduling mode (Trummer & Koch sharding).

        Blocks are sized to ``min(sub_size, fleet.min_capacity())`` so
        every shard embeds on every device; per-shard solve seeds come
        from the (device spec, shard content) pair inside the fleet, and
        all orchestration randomness (initial samples, perturbations,
        round shuffles) flows from harness-derived seeds — never from
        dispatch timing — so the result is bit-identical across fleet
        sizes and dispatch orders.
        """
        root = self.seed if seed is None else seed
        root = 0 if root is None else int(root)
        fleet = self.fleet
        capacity = min(self.sub_size, fleet.min_capacity())

        if bqm.num_variables <= capacity:
            # Fits one annealer: a single dispatch, no orchestration
            # randomness — trivially invariant in the fleet size.
            ((sample, energy),) = fleet.dispatch(
                [bqm], root, num_reads=self.sub_reads
            )
            return SolveResult(
                sample=sample, energy=energy, solver=self.name,
                info={
                    "rounds": 0, "subproblems": 1, "decomposed": False,
                    "fleet_size": fleet.size,
                },
            )

        rng = np.random.default_rng(
            derive_seed(root, _FLEET_SEED_SCOPE, {"stage": "orchestrator"})
        )
        components = strong_components(bqm)
        weights = component_weights(bqm, components)
        caches = _BlockCaches() if self.reuse_compiled else None

        best_sample: Dict[Hashable, int] = {}
        best_energy = float("inf")
        total_rounds = 0
        total_subproblems = 0
        reconciliations = 0
        for restart in range(self.restarts):
            if restart > 0 and deadline is not None and time.monotonic() >= deadline:
                break
            if restart == 0 or restart % 2 == 0:
                sample = self._initial_sample(bqm, rng)
            else:
                sample = self._perturb(bqm, best_sample, rng)
            restart_seed = derive_seed(
                root, _FLEET_SEED_SCOPE, {"restart": restart}
            )
            sample, energy, rounds, subproblems, reconciled = self._fleet_refine(
                bqm, sample, components, weights, rng,
                root=root, restart_seed=restart_seed, capacity=capacity,
                deadline=deadline, caches=caches,
            )
            total_rounds += rounds
            total_subproblems += subproblems
            reconciliations += reconciled
            if energy < best_energy - 1e-9:
                best_sample, best_energy = sample, energy

        info = {
            "rounds": total_rounds,
            "subproblems": total_subproblems,
            "restarts": self.restarts,
            "components": len(components),
            "decomposed": True,
            "fleet_size": fleet.size,
            "boundary_reconciliation": self.boundary_reconciliation,
            "reconciliations": reconciliations,
        }
        if caches is not None:
            info["block_cache_hits"] = caches.hits
            info["block_cache_misses"] = caches.misses
        return SolveResult(
            sample=dict(best_sample),
            energy=float(best_energy),
            solver=self.name,
            info=info,
        )

    def _fleet_refine(
        self,
        bqm: BinaryQuadraticModel,
        sample: Dict[Hashable, int],
        components: List[List[Hashable]],
        weights: Dict[tuple, float],
        rng: np.random.Generator,
        root: int,
        restart_seed: int,
        capacity: int,
        deadline: Optional[float] = None,
        caches: Optional["_BlockCaches"] = None,
    ) -> tuple:
        """One restart's rounds of concurrent shard dispatch + merge.

        Unlike the sequential :meth:`_refine`, every block of a round is
        clamped against the *same* incumbent, so the shards are
        independent and can anneal concurrently.  The price is paid at
        the merge: shard-local optimality can break on the frontier, so
        each round's candidate is the better of (a) the naive merge
        after boundary reconciliation and (b) the best single shard
        applied alone (whose clamped energy *is* its full-model energy).
        """
        energy = bqm.energy(sample)
        rounds = 0
        subproblems = 0
        reconciled_rounds = 0
        stall = 0
        while rounds < self.max_rounds and stall < self.stall_rounds:
            if rounds > 0 and deadline is not None and time.monotonic() >= deadline:
                break
            rounds += 1
            if rounds == 1:
                blocks = select_by_energy_impact(bqm, sample, capacity)
            else:
                order = [int(i) for i in rng.permutation(len(components))]
                blocks = pack_components(components, weights, order, capacity)
            subs = [clamp_subproblem(bqm, block, sample) for block in blocks]
            subproblems += len(subs)
            results = self.fleet.dispatch(subs, root, num_reads=self.sub_reads)

            naive = dict(sample)
            best_single: Optional[Dict[Hashable, int]] = None
            best_single_energy = float("inf")
            for shard_sample, shard_energy in results:
                naive.update(shard_sample)
                # clamped shard energy == full-model energy of the
                # incumbent patched with this shard alone
                if shard_energy < best_single_energy:
                    best_single, best_single_energy = shard_sample, shard_energy
            naive_energy = bqm.energy(naive)

            if self.boundary_reconciliation:
                frontier = frontier_variables(bqm, blocks)
                merged, merged_energy = reconcile_boundary(
                    bqm, naive, frontier,
                    solve_block=lambda sub, s: self._solve_block(
                        sub, s, caches=caches
                    ),
                    seed=derive_seed(
                        restart_seed, _FLEET_SEED_SCOPE, {"round": rounds}
                    ),
                )
                reconciled_rounds += 1
            else:
                merged, merged_energy = naive, naive_energy

            if best_single is not None and best_single_energy < merged_energy:
                candidate = dict(sample)
                candidate.update(best_single)
                candidate_energy = best_single_energy
            else:
                candidate, candidate_energy = merged, merged_energy

            if candidate_energy < energy - 1e-9:
                sample = dict(candidate)
                energy = candidate_energy
                stall = 0
            else:
                stall += 1
        return sample, energy, rounds, subproblems, reconciled_rounds

    # ------------------------------------------------------------------
    def _refine(
        self,
        bqm: BinaryQuadraticModel,
        sample: Dict[Hashable, int],
        components: List[List[Hashable]],
        weights: Dict[tuple, float],
        rng: np.random.Generator,
        deadline: Optional[float] = None,
        caches: Optional["_BlockCaches"] = None,
    ) -> tuple:
        """Decomposition rounds until ``stall_rounds`` rounds stop paying.

        The first round chases the incumbent's descent directions
        (energy-impact blocks); every later round re-partitions by
        strong coupling with a freshly shuffled component order, so
        repeated rounds try different block compositions instead of
        re-proving the same local optimum.
        """
        energy = bqm.energy(sample)
        rounds = 0
        subproblems = 0
        stall = 0
        while rounds < self.max_rounds and stall < self.stall_rounds:
            if rounds > 0 and deadline is not None and time.monotonic() >= deadline:
                break
            rounds += 1
            if rounds == 1:
                blocks = select_by_energy_impact(bqm, sample, self.sub_size)
            else:
                order = [int(i) for i in rng.permutation(len(components))]
                blocks = pack_components(components, weights, order, self.sub_size)
            improved = False
            for block in blocks:
                subproblems += 1
                sub = clamp_subproblem(bqm, block, sample)
                sub_sample, sub_energy = self._solve_block(
                    sub, int(rng.integers(2**31)), caches=caches
                )
                if sub_energy < energy - 1e-9:
                    sample = dict(sample)
                    sample.update(sub_sample)
                    energy = sub_energy
                    improved = True
            stall = 0 if improved else stall + 1
        return sample, energy, rounds, subproblems

    def _perturb(
        self,
        bqm: BinaryQuadraticModel,
        sample: Dict[Hashable, int],
        rng: np.random.Generator,
    ) -> Dict[Hashable, int]:
        """Re-randomize a seeded fraction of the incumbent's variables."""
        lo, hi = bqm.vartype.values
        variables = list(bqm.variables)
        count = max(1, int(round(self.perturb_fraction * len(variables))))
        chosen = rng.choice(len(variables), size=count, replace=False)
        perturbed = dict(sample)
        for i in chosen:
            perturbed[variables[int(i)]] = int(rng.choice((lo, hi)))
        return greedy_descent(bqm, perturbed)

    # ------------------------------------------------------------------
    def _solve_block(
        self,
        sub: BinaryQuadraticModel,
        seed: int,
        compiled=None,
        caches: Optional["_BlockCaches"] = None,
    ) -> tuple:
        """Exact enumeration when the block fits, subsolver otherwise.

        With ``caches`` (one :class:`_BlockCaches` per ``solve`` call),
        content-identical subproblems — same blocks re-clamped against
        an unchanged boundary in later rounds/restarts — replay the
        memoized exact optimum or reuse the compiled array form instead
        of recompiling.  The caller draws the seed *before* calling, so
        caching never shifts the RNG stream.
        """
        if sub.num_variables <= self.exact_limit:
            if caches is None:
                result = brute_force_minimum(sub)
                return dict(result.sample), float(result.energy)
            key = _subproblem_key(sub)
            hit = caches.exact.get(key)
            if hit is not None:
                caches.hits += 1
                return dict(hit[0]), hit[1]
            caches.misses += 1
            result = brute_force_minimum(sub)
            caches.exact[key] = (dict(result.sample), float(result.energy))
            return dict(result.sample), float(result.energy)
        if (
            compiled is None
            and caches is not None
            and self._subsolver_takes_compiled
        ):
            key = _subproblem_key(sub)
            compiled = caches.compiled.get(key)
            if compiled is not None:
                caches.hits += 1
            else:
                caches.misses += 1
                compiled = compile_bqm(sub)
                caches.compiled[key] = compiled
        extra = (
            {"compiled": compiled}
            if compiled is not None and self._subsolver_takes_compiled
            else {}
        )
        sample_set = self.subsolver.sample(
            sub, num_reads=self.sub_reads, seed=seed, **extra
        )
        best = sample_set.first
        return dict(best.sample), float(best.energy)

    def _initial_sample(
        self, bqm: BinaryQuadraticModel, rng: np.random.Generator, compiled=None
    ) -> Dict[Hashable, int]:
        """Incumbent from a full-model subsolver run (qbsolv-style).

        The classical local-search engine handles arbitrary sizes, so
        the decomposition loop starts from its best read (snapped into
        an exact single-flip minimum) and refines with exact sub-solves
        rather than climbing out of a random assignment.
        """
        extra = (
            {"compiled": compiled}
            if compiled is not None and self._subsolver_takes_compiled
            else {}
        )
        sample_set = self.subsolver.sample(
            bqm, num_reads=self.sub_reads, seed=int(rng.integers(2**31)), **extra
        )
        return greedy_descent(bqm, dict(sample_set.first.sample))


def greedy_descent(
    bqm: BinaryQuadraticModel, sample: Dict[Hashable, int]
) -> Dict[Hashable, int]:
    """Flip single variables until no flip improves (deterministic).

    Repeatedly applies the single most-improving flip (ties broken on
    ``str(var)``), maintaining flip gains incrementally — one flip
    costs ``O(degree)``, not a full model walk.
    """
    sample = dict(sample)
    lo, hi = bqm.vartype.values
    adjacency: Dict[Hashable, List[tuple]] = {v: [] for v in bqm.variables}
    for u, v, bias in bqm.interactions():
        adjacency[u].append((v, bias))
        adjacency[v].append((u, bias))
    gains = flip_energy_gains(bqm, sample)
    order: List[Hashable] = sorted(bqm.variables, key=str)
    for _ in range(8 * max(1, bqm.num_variables)):
        best = None
        for v in order:
            if gains[v] < -1e-12 and (best is None or gains[v] < gains[best]):
                best = v
        if best is None:
            break
        old = sample[best]
        new = lo + hi - old
        sample[best] = new
        gains[best] = -gains[best]
        for u, bias in adjacency[best]:
            # gain(u) = (flip_u - x_u) * field_u; field_u shifts by
            # bias * (new - old) when its neighbour flips
            gains[u] += (lo + hi - 2 * sample[u]) * bias * (new - old)
    return sample
