"""Tabu-search sampler for binary quadratic models.

The classical local-search engine of the hybrid decomposing solver —
an analogue of Ocean's ``tabu.TabuSampler`` ([Palubeckis 2004] style
single-flip tabu search).  Unlike pure descent, tabu search always
moves to the best admissible neighbour, *even uphill*, while recently
flipped variables stay tabu for ``tenure`` iterations; an aspiration
criterion admits tabu moves that would beat the best energy seen.
This lets the search walk out of the local minima that trap greedy
descent and simulated annealing at low temperature.

Everything runs in the spin domain (flips are sign changes and the
energy delta of flipping :math:`s_i` is :math:`-2 s_i f_i` with local
field :math:`f_i = h_i + \\sum_j J_{ij} s_j`), mirroring
:mod:`repro.annealing.simulated_annealing`.

All reads run *simultaneously*: the per-iteration work — flip deltas,
tabu/aspiration masks, best-move selection — is a handful of
``(num_reads, n)`` numpy operations instead of ``num_reads``
independent Python loops, over the compiled array form of the model
(:mod:`repro.qubo.compiled`).  Reads retire from the batch
independently when they hit their stall limit, exactly where the
per-read loop would have broken; a global iteration counter equals
each read's own count, so tabu expiries match the sequential search
move-for-move and results stay bit-identical to the seed
implementation (pinned by ``tests/test_golden_seed_compat.py``).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import SolverError
from repro.annealing.sampleset import SampleSet
from repro.qubo.bqm import BinaryQuadraticModel, Vartype
from repro.qubo.compiled import CompiledBQM, compile_bqm


class TabuSampler:
    """Single-flip tabu search over the Ising form of a BQM.

    Parameters
    ----------
    tenure:
        Iterations a flipped variable stays tabu.  Defaults to
        ``min(20, n // 4 + 1)`` per model (Ocean's heuristic).
    max_iter:
        Hard iteration cap per read (default ``50 * n``, at least 500).
    stall_limit:
        Stop a read after this many iterations without improving its
        best energy (default ``4 * n``, at least 100).
    seed:
        Default RNG seed; ``sample(..., seed=...)`` overrides per call.
    """

    def __init__(
        self,
        tenure: Optional[int] = None,
        max_iter: Optional[int] = None,
        stall_limit: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        if tenure is not None and tenure < 1:
            raise SolverError("tenure must be positive")
        self.tenure = tenure
        self.max_iter = max_iter
        self.stall_limit = stall_limit
        self.seed = seed

    # ------------------------------------------------------------------
    def sample(
        self,
        bqm: BinaryQuadraticModel,
        num_reads: int = 10,
        seed: Optional[int] = None,
        initial_states: Optional[Sequence[Mapping[Hashable, int]]] = None,
        compiled: Optional[CompiledBQM] = None,
    ) -> SampleSet:
        """Run ``num_reads`` independent tabu searches, batched.

        ``initial_states`` warm-starts the first reads (in the vartype
        of ``bqm``); remaining reads start from random assignments.
        ``compiled`` reuses a pre-compiled form of ``bqm``.  Returns a
        :class:`SampleSet` holding each read's best sample, in the
        vartype of the input model, duplicates merged into
        ``num_occurrences``.
        """
        if num_reads < 1:
            raise SolverError("num_reads must be positive")
        if bqm.num_variables == 0:
            return SampleSet.from_samples([{}], [bqm.offset], vartype=bqm.vartype)

        cbqm = compiled if compiled is not None else compile_bqm(bqm)
        spin = cbqm.spin
        n = spin.num_variables

        rng = np.random.default_rng(self.seed if seed is None else seed)
        tenure = self.tenure if self.tenure is not None else min(20, n // 4 + 1)
        max_iter = self.max_iter if self.max_iter is not None else max(500, 50 * n)
        stall_limit = (
            self.stall_limit if self.stall_limit is not None else max(100, 4 * n)
        )

        starts = self._initial_spins(
            bqm.vartype, spin.index, n, num_reads, initial_states, rng
        )

        best_spins, best_energies = self._search(
            starts, spin, tenure, max_iter, stall_limit
        )

        if bqm.vartype is Vartype.BINARY:
            states = (best_spins + 1.0) / 2.0  # exact: ±1 → {0, 1}
            return SampleSet.from_samples(
                cbqm.states_to_samples(states),
                cbqm.energies_compat(states),
                vartype=Vartype.BINARY,
                aggregate=True,
            )
        return SampleSet.from_samples(
            spin.states_to_samples(best_spins),
            best_energies,
            vartype=Vartype.SPIN,
            aggregate=True,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _initial_spins(
        vartype: Vartype,
        index: Dict[Hashable, int],
        n: int,
        num_reads: int,
        initial_states: Optional[Sequence[Mapping[Hashable, int]]],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-read start vectors: warm starts first, then random."""
        starts = rng.choice((-1.0, 1.0), size=(num_reads, n))
        for read, state in enumerate(initial_states or ()):
            if read >= num_reads:
                break
            for v, value in state.items():
                if v not in index:
                    raise SolverError(f"initial state has unknown variable {v!r}")
                if vartype is Vartype.BINARY:
                    value = 2 * int(value) - 1
                starts[read, index[v]] = float(value)
        return starts

    @staticmethod
    def _search(
        starts: np.ndarray,
        spin: CompiledBQM,
        tenure: int,
        max_iter: int,
        stall_limit: int,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """All tabu runs at once; returns (best spins, best energies).

        Every step below is the batched form of the per-read search:
        rows of the ``(num_reads, n)`` arrays evolve exactly as the
        sequential loop evolved one read (elementwise ops reassociate
        nothing, ``argmin`` keeps the lowest-index tie-break, and field
        updates are the same ``O(degree)`` scatter per flip), so each
        read's trajectory is bit-identical to running it alone.
        """
        num_reads, n = starts.shape
        neighbors = spin.neighbor_index
        couplings = spin.neighbor_bias

        spins = starts.copy()
        # per-(read, variable) 1-D dots replicate the sequential field
        # initialization (a gemv would round differently in rare cases)
        fields = np.broadcast_to(spin.linear, (num_reads, n)).copy()
        for r in range(num_reads):
            row = spins[r]
            frow = fields[r]
            for i in range(n):
                if len(neighbors[i]):
                    frow[i] += row[neighbors[i]] @ couplings[i]

        energies = spin.energies_compat(spins)
        best_spins, best_energies = spins.copy(), energies.copy()
        # iteration index until which each (read, variable) is tabu
        tabu_until = np.full((num_reads, n), -1, dtype=np.int64)
        stall = np.zeros(num_reads, dtype=np.int64)
        active = np.ones(num_reads, dtype=bool)

        for iteration in range(max_iter):
            deltas = -2.0 * spins * fields
            allowed = tabu_until < iteration
            # aspiration: a tabu move that beats the incumbent is allowed
            allowed |= (energies[:, None] + deltas) < best_energies[:, None] - 1e-12
            stuck = ~allowed.any(axis=1)
            if stuck.any():
                allowed[stuck] = True
            masked = np.where(allowed, deltas, np.inf)
            moves = np.argmin(masked, axis=1)  # ties: lowest index (deterministic)

            for r in np.flatnonzero(active):
                i = moves[r]
                spins[r, i] *= -1.0
                energies[r] += deltas[r, i]
                if len(neighbors[i]):
                    fields[r, neighbors[i]] += 2.0 * spins[r, i] * couplings[i]
                tabu_until[r, i] = iteration + tenure

                if energies[r] < best_energies[r] - 1e-12:
                    best_energies[r] = energies[r]
                    best_spins[r] = spins[r]
                    stall[r] = 0
                else:
                    stall[r] += 1
                    if stall[r] >= stall_limit:
                        active[r] = False
            if not active.any():
                break
        return best_spins, best_energies
