"""Tabu-search sampler for binary quadratic models.

The classical local-search engine of the hybrid decomposing solver —
an analogue of Ocean's ``tabu.TabuSampler`` ([Palubeckis 2004] style
single-flip tabu search).  Unlike pure descent, tabu search always
moves to the best admissible neighbour, *even uphill*, while recently
flipped variables stay tabu for ``tenure`` iterations; an aspiration
criterion admits tabu moves that would beat the best energy seen.
This lets the search walk out of the local minima that trap greedy
descent and simulated annealing at low temperature.

Everything runs in the spin domain (flips are sign changes and the
energy delta of flipping :math:`s_i` is :math:`-2 s_i f_i` with local
field :math:`f_i = h_i + \\sum_j J_{ij} s_j`), mirroring
:mod:`repro.annealing.simulated_annealing`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SolverError
from repro.annealing.sampleset import SampleSet
from repro.qubo.bqm import BinaryQuadraticModel, Vartype


class TabuSampler:
    """Single-flip tabu search over the Ising form of a BQM.

    Parameters
    ----------
    tenure:
        Iterations a flipped variable stays tabu.  Defaults to
        ``min(20, n // 4 + 1)`` per model (Ocean's heuristic).
    max_iter:
        Hard iteration cap per read (default ``50 * n``, at least 500).
    stall_limit:
        Stop a read after this many iterations without improving its
        best energy (default ``4 * n``, at least 100).
    seed:
        Default RNG seed; ``sample(..., seed=...)`` overrides per call.
    """

    def __init__(
        self,
        tenure: Optional[int] = None,
        max_iter: Optional[int] = None,
        stall_limit: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        if tenure is not None and tenure < 1:
            raise SolverError("tenure must be positive")
        self.tenure = tenure
        self.max_iter = max_iter
        self.stall_limit = stall_limit
        self.seed = seed

    # ------------------------------------------------------------------
    def sample(
        self,
        bqm: BinaryQuadraticModel,
        num_reads: int = 10,
        seed: Optional[int] = None,
        initial_states: Optional[Sequence[Mapping[Hashable, int]]] = None,
    ) -> SampleSet:
        """Run ``num_reads`` independent tabu searches.

        ``initial_states`` warm-starts the first reads (in the vartype
        of ``bqm``); remaining reads start from random assignments.
        Returns a :class:`SampleSet` holding each read's best sample,
        in the vartype of the input model.
        """
        if num_reads < 1:
            raise SolverError("num_reads must be positive")
        if bqm.num_variables == 0:
            return SampleSet.from_samples([{}], [bqm.offset], vartype=bqm.vartype)

        spin = bqm.change_vartype(Vartype.SPIN)
        order: List[Hashable] = list(spin.variables)
        index = {v: i for i, v in enumerate(order)}
        n = len(order)

        h = np.zeros(n)
        for v, bias in spin.linear.items():
            h[index[v]] = bias
        neighbors: List[np.ndarray] = [np.empty(0, dtype=np.intp)] * n
        couplings: List[np.ndarray] = [np.empty(0)] * n
        adjacency: Dict[int, List[Tuple[int, float]]] = {i: [] for i in range(n)}
        for u, v, bias in spin.interactions():
            adjacency[index[u]].append((index[v], bias))
            adjacency[index[v]].append((index[u], bias))
        for i, pairs in adjacency.items():
            if pairs:
                neighbors[i] = np.array([p[0] for p in pairs], dtype=np.intp)
                couplings[i] = np.array([p[1] for p in pairs], dtype=float)

        rng = np.random.default_rng(self.seed if seed is None else seed)
        tenure = self.tenure if self.tenure is not None else min(20, n // 4 + 1)
        max_iter = self.max_iter if self.max_iter is not None else max(500, 50 * n)
        stall_limit = (
            self.stall_limit if self.stall_limit is not None else max(100, 4 * n)
        )

        starts = self._initial_spins(
            bqm, spin, index, n, num_reads, initial_states, rng
        )

        samples, energies = [], []
        for read in range(num_reads):
            spins = starts[read].copy()
            best_spins, best_energy = self._search(
                spins, h, neighbors, couplings, spin, order,
                tenure, max_iter, stall_limit,
            )
            samples.append({order[i]: int(best_spins[i]) for i in range(n)})
            energies.append(best_energy)

        result = SampleSet.from_samples(samples, energies, vartype=Vartype.SPIN)
        if bqm.vartype is Vartype.BINARY:
            binary_samples = [
                {v: (s + 1) // 2 for v, s in r.sample.items()} for r in result
            ]
            binary_energies = [bqm.energy(s) for s in binary_samples]
            return SampleSet.from_samples(
                binary_samples, binary_energies, vartype=Vartype.BINARY
            )
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _initial_spins(
        bqm: BinaryQuadraticModel,
        spin: BinaryQuadraticModel,
        index: Dict[Hashable, int],
        n: int,
        num_reads: int,
        initial_states: Optional[Sequence[Mapping[Hashable, int]]],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-read start vectors: warm starts first, then random."""
        starts = rng.choice((-1.0, 1.0), size=(num_reads, n))
        for read, state in enumerate(initial_states or ()):
            if read >= num_reads:
                break
            for v, value in state.items():
                if v not in index:
                    raise SolverError(f"initial state has unknown variable {v!r}")
                if bqm.vartype is Vartype.BINARY:
                    value = 2 * int(value) - 1
                starts[read, index[v]] = float(value)
        return starts

    @staticmethod
    def _search(
        spins: np.ndarray,
        h: np.ndarray,
        neighbors: List[np.ndarray],
        couplings: List[np.ndarray],
        spin_bqm: BinaryQuadraticModel,
        order: List[Hashable],
        tenure: int,
        max_iter: int,
        stall_limit: int,
    ) -> Tuple[np.ndarray, float]:
        """One tabu run from one start; returns (best spins, energy)."""
        n = len(order)
        fields = h.copy()
        for i in range(n):
            if len(neighbors[i]):
                fields[i] += spins[neighbors[i]] @ couplings[i]

        energy = spin_bqm.energy({order[i]: int(spins[i]) for i in range(n)})
        best_spins, best_energy = spins.copy(), energy
        # iteration index until which each variable is tabu
        tabu_until = np.full(n, -1, dtype=np.int64)
        stall = 0

        for iteration in range(max_iter):
            deltas = -2.0 * spins * fields
            allowed = tabu_until < iteration
            # aspiration: a tabu move that beats the incumbent is allowed
            allowed |= (energy + deltas) < best_energy - 1e-12
            if not allowed.any():
                allowed = np.ones(n, dtype=bool)
            masked = np.where(allowed, deltas, np.inf)
            i = int(np.argmin(masked))  # ties: lowest index (deterministic)

            spins[i] *= -1.0
            energy += deltas[i]
            if len(neighbors[i]):
                fields[neighbors[i]] += 2.0 * spins[i] * couplings[i]
            tabu_until[i] = iteration + tenure

            if energy < best_energy - 1e-12:
                best_energy = energy
                best_spins = spins.copy()
                stall = 0
            else:
                stall += 1
                if stall >= stall_limit:
                    break
        return best_spins, best_energy
