"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``
    Run paper-reproduction experiment drivers by name (or ``all``)
    and print their tables.
``solve``
    Solve a generated problem with any solver from the unified
    registry (``--solver list`` shows the catalog).
``solve-mqo``
    Generate a random MQO instance and solve it on the chosen path.
``solve-join``
    Generate a query graph and solve the join ordering problem.
``info``
    Show the package's system inventory and reproduction targets.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro import __version__
from repro.exceptions import ConfigurationError


def _experiment_registry() -> Dict[str, Callable]:
    from repro.experiments.coherence_thresholds import run_coherence_thresholds
    from repro.experiments.jo_depths import run_figure13_qaoa, run_figure13_vqe
    from repro.experiments.jo_embedding import run_figure14_left, run_figure14_right
    from repro.experiments.jo_direct import run_direct_vs_two_step
    from repro.experiments.jo_qubits import run_figure11, run_figure12
    from repro.experiments.jo_table4 import run_table4
    from repro.experiments.hybrid_scaling import run_hybrid_scaling
    from repro.experiments.mqo_annealer import run_mqo_annealer_capacity
    from repro.experiments.mqo_depths import run_figure8, run_figure9
    from repro.experiments.noise_study import run_noise_study
    from repro.experiments.penalty_gap import run_penalty_gap_study
    from repro.experiments.quality import run_join_order_quality, run_mqo_quality
    from repro.experiments.tables import run_table_3, run_tables_1_2

    return {
        "tables12": run_tables_1_2,
        "table3": run_table_3,
        "table4": run_table4,
        "fig8": run_figure8,
        "fig9": run_figure9,
        "fig11": run_figure11,
        "fig12": run_figure12,
        "fig13-qaoa": run_figure13_qaoa,
        "fig13-vqe": run_figure13_vqe,
        "fig14-left": run_figure14_left,
        "fig14-right": run_figure14_right,
        "coherence": run_coherence_thresholds,
        "quality-mqo": run_mqo_quality,
        "quality-join": run_join_order_quality,
        "mqo-annealer": run_mqo_annealer_capacity,
        "noise": run_noise_study,
        "jo-direct": run_direct_vs_two_step,
        "penalty-gap": run_penalty_gap_study,
        "hybrid-scaling": run_hybrid_scaling,
    }


def _cmd_experiments(args: argparse.Namespace) -> int:
    registry = _experiment_registry()
    if args.name == "list":
        for name in registry:
            print(name)
        return 0
    names = list(registry) if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(registry)}", file=sys.stderr)
        return 2
    kwargs = {
        "workers": args.workers,
        "cache": not args.no_cache,
        "cache_dir": args.cache_dir,
    }
    if args.seed is not None:
        kwargs["seed"] = args.seed
    for name in names:
        table = registry[name](**kwargs)
        print(table.format())
        print()
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.exceptions import SolverError
    from repro.hybrid import make_solver, solver_catalog
    from repro.mqo import random_mqo_problem
    from repro.mqo.solvers import solve_with_solver

    if args.solver == "list":
        for row in solver_catalog():
            limit = row["max_variables"]
            print(
                f"{row['name']:12} "
                f"max_variables={limit if limit is not None else '-':<4} "
                f"[{row['capabilities']}]"
            )
        return 0

    options = {}
    if args.solver == "hybrid" and args.sub_size is not None:
        options["sub_size"] = args.sub_size
    try:
        solver = make_solver(args.solver, **options)
    except SolverError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    problem = random_mqo_problem(args.queries, args.ppq, seed=args.seed)
    print(
        f"instance: mqo, {problem.num_queries} queries x {args.ppq} plans "
        f"({problem.num_plans} QUBO variables, {len(problem.savings)} savings)"
    )
    try:
        solution = solve_with_solver(problem, solver, seed=args.seed)
    except SolverError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"{solution.method}: plans {solution.selected_plans} "
        f"cost {solution.cost:g} valid={solution.valid}"
    )
    return 0


def _cmd_solve_mqo(args: argparse.Namespace) -> int:
    from repro.mqo import (
        random_mqo_problem,
        solve_exhaustive,
        solve_genetic,
        solve_greedy_local,
        solve_with_annealer,
        solve_with_minimum_eigen,
    )
    from repro.variational import QAOA, Cobyla

    problem = random_mqo_problem(args.queries, args.ppq, seed=args.seed)
    print(
        f"instance: {problem.num_queries} queries x {args.ppq} plans "
        f"({problem.num_plans} total, {len(problem.savings)} savings)"
    )
    if args.solver == "greedy":
        solution = solve_greedy_local(problem)
    elif args.solver == "exhaustive":
        solution = solve_exhaustive(problem)
    elif args.solver == "genetic":
        solution = solve_genetic(problem, seed=args.seed)
    elif args.solver == "annealing":
        solution = solve_with_annealer(problem, seed=args.seed)
    else:  # qaoa
        solution = solve_with_minimum_eigen(
            problem, QAOA(optimizer=Cobyla(maxiter=150), seed=args.seed)
        )
    print(f"{args.solver}: plans {solution.selected_plans} cost {solution.cost:g}")
    return 0


def _cmd_solve_join(args: argparse.Namespace) -> int:
    from repro.joinorder import (
        JoinOrderQuantumPipeline,
        chain_query,
        clique_query,
        cycle_query,
        solve_dp_left_deep,
        solve_genetic,
        solve_greedy,
        star_query,
    )
    from repro.joinorder.direct_qubo import (
        DirectJoinOrderQubo,
        solve_direct_with_annealer,
    )
    from repro.joinorder.ikkbz import solve_ikkbz

    makers = {
        "chain": chain_query,
        "star": star_query,
        "cycle": cycle_query,
        "clique": clique_query,
    }
    graph = makers[args.shape](args.relations, seed=args.seed)
    print(
        f"query: {args.shape} over {graph.num_relations} relations "
        f"({graph.num_predicates} predicates)"
    )
    if args.solver == "dp":
        result = solve_dp_left_deep(graph)
    elif args.solver == "ikkbz":
        result = solve_ikkbz(graph)
    elif args.solver == "greedy":
        result = solve_greedy(graph)
    elif args.solver == "genetic":
        result = solve_genetic(graph, seed=args.seed)
    elif args.solver == "qubo-annealing":
        pipeline = JoinOrderQuantumPipeline(graph, precision_exponent=0)
        report = pipeline.report()
        print(
            f"two-step encoding: {report.num_qubits} qubits, "
            f"{report.num_quadratic_terms} quadratic terms"
        )
        result = pipeline.solve_with_annealer(num_reads=args.reads, seed=args.seed)
    else:  # direct-qubo
        builder = DirectJoinOrderQubo(graph)
        print(f"direct encoding: {builder.num_qubits} qubits")
        result = solve_direct_with_annealer(
            builder, num_reads=args.reads, seed=args.seed
        )
    print(f"{args.solver}: {' >> '.join(result.order)}  C_out = {result.cost:,.0f}")
    return 0


def _cmd_info(_: argparse.Namespace) -> int:
    import repro

    print(repro.__doc__)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quantum computing for database query optimization "
        "(SIGMOD 2022 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    experiments = sub.add_parser(
        "experiments", help="run paper-reproduction experiments"
    )
    experiments.add_argument(
        "name",
        help="experiment name, 'all', or 'list'",
    )
    experiments.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel worker processes per sweep "
        "(default: REPRO_BENCH_WORKERS or 1)",
    )
    experiments.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root seed override (per-point seeds derive from it)",
    )
    experiments.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every grid point, ignoring results/.cache",
    )
    experiments.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: REPRO_CACHE_DIR or results/.cache)",
    )
    experiments.set_defaults(func=_cmd_experiments)

    solve = sub.add_parser(
        "solve", help="solve a generated problem with a registry solver"
    )
    solve.add_argument(
        "--problem", choices=("mqo",), default="mqo",
        help="problem family to generate",
    )
    solve.add_argument("--queries", type=int, default=10)
    solve.add_argument("--ppq", type=int, default=3)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--solver", default="hybrid",
        help="registry solver name, or 'list' to show the catalog",
    )
    solve.add_argument(
        "--sub-size", type=int, default=None,
        help="hybrid only: maximum subproblem size",
    )
    solve.set_defaults(func=_cmd_solve)

    mqo = sub.add_parser("solve-mqo", help="solve a random MQO instance")
    mqo.add_argument("--queries", type=int, default=3)
    mqo.add_argument("--ppq", type=int, default=3)
    mqo.add_argument("--seed", type=int, default=0)
    mqo.add_argument(
        "--solver",
        choices=("greedy", "exhaustive", "genetic", "annealing", "qaoa"),
        default="annealing",
    )
    mqo.set_defaults(func=_cmd_solve_mqo)

    join = sub.add_parser("solve-join", help="solve a join ordering problem")
    join.add_argument("--shape", choices=("chain", "star", "cycle", "clique"), default="chain")
    join.add_argument("--relations", type=int, default=6)
    join.add_argument("--seed", type=int, default=0)
    join.add_argument("--reads", type=int, default=100)
    join.add_argument(
        "--solver",
        choices=("dp", "ikkbz", "greedy", "genetic", "qubo-annealing", "direct-qubo"),
        default="dp",
    )
    join.set_defaults(func=_cmd_solve_join)

    info = sub.add_parser("info", help="package overview")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv=None) -> int:
    """Entry point for ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
