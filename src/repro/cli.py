"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``
    Run paper-reproduction experiment drivers by name (or ``all``)
    and print their tables.
``solve``
    Solve a generated problem with any solver from the unified
    registry (``--solver list`` shows the catalog).
``solve-mqo``
    Generate a random MQO instance and solve it on the chosen path.
``solve-join``
    Generate a query graph and solve the join ordering problem.
``optimize``
    Serve a single optimization request (from a JSON file or generator
    parameters) through the deadline-aware service.
``sql``
    The SQL front door: parse, explain or optimize a SQL join query
    against the TPC-H-style catalog, or generate a seeded workload.
``serve-bench``
    Drive the optimization service with a synthetic request workload
    (thread or process backend) and print a metrics snapshot.
``replay``
    Stream a Zipfian-duplicated request workload (lazily generated,
    10^3–10^6 requests) through a scheduler backend at a configurable
    arrival rate and report cache/coalescing hit rates, rejections,
    deadline misses, and tail latency.
``serve``
    Run the HTTP gateway over a scheduler backend: ``POST /optimize``,
    ``POST /sql``, ``GET /stats``, ``GET /healthz``; graceful drain on
    SIGINT/SIGTERM.  ``--smoke`` runs a self-test and exits.
``verify``
    Run the cross-solver differential verification sweep: every
    registry solver plus the service fallback chain against exact
    oracles, with the encoding-invariant catalog.
``info``
    Show the package's system inventory and reproduction targets.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro import __version__
from repro.exceptions import ConfigurationError, SolverError


def _experiment_registry() -> Dict[str, Callable]:
    from repro.experiments.coherence_thresholds import run_coherence_thresholds
    from repro.experiments.jo_depths import run_figure13_qaoa, run_figure13_vqe
    from repro.experiments.jo_embedding import run_figure14_left, run_figure14_right
    from repro.experiments.jo_direct import run_direct_vs_two_step
    from repro.experiments.jo_qubits import run_figure11, run_figure12
    from repro.experiments.jo_table4 import run_table4
    from repro.experiments.hybrid_scaling import run_hybrid_scaling
    from repro.experiments.mqo_annealer import run_mqo_annealer_capacity
    from repro.experiments.mqo_depths import run_figure8, run_figure9
    from repro.experiments.noise_study import run_noise_study
    from repro.experiments.penalty_gap import run_penalty_gap_study
    from repro.experiments.fleet_scaling import run_fleet_scaling
    from repro.experiments.quality import run_join_order_quality, run_mqo_quality
    from repro.experiments.replay import run_replay_experiment
    from repro.experiments.routed_vs_static import run_routed_vs_static
    from repro.experiments.sql_workload import run_sql_workload
    from repro.experiments.tables import run_table_3, run_tables_1_2

    return {
        "tables12": run_tables_1_2,
        "table3": run_table_3,
        "table4": run_table4,
        "fig8": run_figure8,
        "fig9": run_figure9,
        "fig11": run_figure11,
        "fig12": run_figure12,
        "fig13-qaoa": run_figure13_qaoa,
        "fig13-vqe": run_figure13_vqe,
        "fig14-left": run_figure14_left,
        "fig14-right": run_figure14_right,
        "coherence": run_coherence_thresholds,
        "quality-mqo": run_mqo_quality,
        "quality-join": run_join_order_quality,
        "mqo-annealer": run_mqo_annealer_capacity,
        "noise": run_noise_study,
        "jo-direct": run_direct_vs_two_step,
        "penalty-gap": run_penalty_gap_study,
        "hybrid-scaling": run_hybrid_scaling,
        "sql-workload": run_sql_workload,
        "routed-vs-static": run_routed_vs_static,
        "replay": run_replay_experiment,
        "fleet-scaling": run_fleet_scaling,
    }


def _cmd_experiments(args: argparse.Namespace) -> int:
    registry = _experiment_registry()
    if args.name == "list":
        for name in registry:
            print(name)
        return 0
    names = list(registry) if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(registry)}", file=sys.stderr)
        return 2
    kwargs = {
        "workers": args.workers,
        "cache": not args.no_cache,
        "cache_dir": args.cache_dir,
    }
    if args.seed is not None:
        kwargs["seed"] = args.seed
    for name in names:
        table = registry[name](**kwargs)
        print(table.format())
        print()
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.exceptions import SolverError
    from repro.hybrid import make_solver, solver_catalog
    from repro.mqo import random_mqo_problem
    from repro.mqo.solvers import solve_with_solver

    if args.solver == "list":
        for row in solver_catalog():
            limit = row["max_variables"]
            print(
                f"{row['name']:12} "
                f"max_variables={limit if limit is not None else '-':<4} "
                f"[{row['capabilities']}]"
            )
        return 0

    options = {}
    if args.solver == "hybrid" and args.sub_size is not None:
        options["sub_size"] = args.sub_size
    try:
        solver = make_solver(args.solver, **options)
    except SolverError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    problem = random_mqo_problem(args.queries, args.ppq, seed=args.seed)
    print(
        f"instance: mqo, {problem.num_queries} queries x {args.ppq} plans "
        f"({problem.num_plans} QUBO variables, {len(problem.savings)} savings)"
    )
    try:
        solution = solve_with_solver(problem, solver, seed=args.seed)
    except SolverError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"{solution.method}: plans {solution.selected_plans} "
        f"cost {solution.cost:g} valid={solution.valid}"
    )
    return 0


def _cmd_solve_mqo(args: argparse.Namespace) -> int:
    from repro.mqo import (
        random_mqo_problem,
        solve_exhaustive,
        solve_genetic,
        solve_greedy_local,
        solve_with_annealer,
        solve_with_minimum_eigen,
    )
    from repro.variational import QAOA, Cobyla

    problem = random_mqo_problem(args.queries, args.ppq, seed=args.seed)
    print(
        f"instance: {problem.num_queries} queries x {args.ppq} plans "
        f"({problem.num_plans} total, {len(problem.savings)} savings)"
    )
    if args.solver == "greedy":
        solution = solve_greedy_local(problem)
    elif args.solver == "exhaustive":
        solution = solve_exhaustive(problem)
    elif args.solver == "genetic":
        solution = solve_genetic(problem, seed=args.seed)
    elif args.solver == "annealing":
        solution = solve_with_annealer(problem, seed=args.seed)
    else:  # qaoa
        solution = solve_with_minimum_eigen(
            problem, QAOA(optimizer=Cobyla(maxiter=150), seed=args.seed)
        )
    print(f"{args.solver}: plans {solution.selected_plans} cost {solution.cost:g}")
    return 0


def _cmd_solve_join(args: argparse.Namespace) -> int:
    from repro.joinorder import (
        JoinOrderQuantumPipeline,
        chain_query,
        clique_query,
        cycle_query,
        solve_dp_left_deep,
        solve_genetic,
        solve_greedy,
        star_query,
    )
    from repro.joinorder.direct_qubo import (
        DirectJoinOrderQubo,
        solve_direct_with_annealer,
    )
    from repro.joinorder.ikkbz import solve_ikkbz

    makers = {
        "chain": chain_query,
        "star": star_query,
        "cycle": cycle_query,
        "clique": clique_query,
    }
    graph = makers[args.shape](args.relations, seed=args.seed)
    print(
        f"query: {args.shape} over {graph.num_relations} relations "
        f"({graph.num_predicates} predicates)"
    )
    if args.solver == "dp":
        result = solve_dp_left_deep(graph)
    elif args.solver == "ikkbz":
        result = solve_ikkbz(graph)
    elif args.solver == "greedy":
        result = solve_greedy(graph)
    elif args.solver == "genetic":
        result = solve_genetic(graph, seed=args.seed)
    elif args.solver == "qubo-annealing":
        pipeline = JoinOrderQuantumPipeline(graph, precision_exponent=0)
        report = pipeline.report()
        print(
            f"two-step encoding: {report.num_qubits} qubits, "
            f"{report.num_quadratic_terms} quadratic terms"
        )
        result = pipeline.solve_with_annealer(num_reads=args.reads, seed=args.seed)
    else:  # direct-qubo
        builder = DirectJoinOrderQubo(graph)
        print(f"direct encoding: {builder.num_qubits} qubits")
        result = solve_direct_with_annealer(
            builder, num_reads=args.reads, seed=args.seed
        )
    print(f"{args.solver}: {' >> '.join(result.order)}  C_out = {result.cost:,.0f}")
    return 0


def _print_service_stats(stats: Dict) -> None:
    counters = stats.get("counters", {})
    histograms = stats.get("histograms", {})
    cache = stats.get("cache", {})
    total = counters.get("requests_total", 0)
    ok = counters.get("requests_ok", 0)
    rejected = counters.get("requests_rejected", 0)
    print("--- service metrics ---")
    print(f"requests: {total} total, {ok} ok, {rejected} rejected")
    latency = histograms.get("latency_ms", {})
    if latency.get("count"):
        print(
            f"latency ms: p50 {latency['p50']:.1f} p95 {latency['p95']:.1f} "
            f"max {latency['max']:.1f} (mean {latency['mean']:.1f})"
        )
    stages = {
        name.split(".", 1)[1]: value
        for name, value in counters.items()
        if name.startswith("served_by.")
    }
    if stages:
        print(
            "served by: "
            + " ".join(f"{stage}={count}" for stage, count in sorted(stages.items()))
        )
    print(f"deadline exceeded: {counters.get('deadline_exceeded', 0)}")
    results_cache = cache.get("results", {})
    compiled_cache = cache.get("compiled", {})
    if results_cache:
        print(
            f"cache: result hits {results_cache['hits']}/"
            f"{results_cache['hits'] + results_cache['misses']} "
            f"({100.0 * results_cache['hit_rate']:.1f}%), "
            f"compile hits {compiled_cache.get('hits', 0)}"
        )
    routing = stats.get("routing")
    if routing and routing.get("enabled"):
        regret = routing.get("regret_ms", {})
        regret_p50 = f"{regret['p50']:.1f}" if regret.get("count") else "-"
        print(
            f"routing: {routing.get('requests', 0)} routed, "
            f"miss rate {100.0 * routing.get('deadline_miss_rate', 0.0):.1f}%, "
            f"fallthrough {routing.get('fallthrough', 0)}, "
            f"regret p50 {regret_p50} ms"
        )
    scheduler = stats.get("scheduler")
    if scheduler:
        coalesce = scheduler.get("coalesce", {})
        print(
            f"scheduler: backend={scheduler.get('backend')} "
            f"workers={scheduler.get('workers')} "
            f"coalesced {coalesce.get('hits', 0)}/"
            f"{coalesce.get('hits', 0) + coalesce.get('misses', 0)} "
            f"({100.0 * coalesce.get('hit_rate', 0.0):.1f}%)"
        )


def _format_plan(result) -> str:
    if result.kind == "mqo":
        return f"plans {result.plan.get('selected_plans')}"
    return " >> ".join(result.plan.get("order", ())) or "(no order)"


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro import serialization
    from repro.exceptions import ProblemError
    from repro.joinorder import chain_query, clique_query, cycle_query, star_query
    from repro.joinorder.query_graph import QueryGraph
    from repro.mqo import random_mqo_problem
    from repro.mqo.problem import MqoProblem
    from repro.service import OptimizationRequest, OptimizationService, parse_policy

    policy = parse_policy(args.policy) if args.policy else None
    mode = args.mode.replace("-", "_")

    if args.input is not None:
        payload = serialization.load(args.input)
        if isinstance(payload, OptimizationRequest):
            request = payload
        elif isinstance(payload, MqoProblem):
            request = OptimizationRequest(
                request_id="cli", kind="mqo", problem=payload,
                deadline_ms=args.deadline_ms, seed=args.seed, policy=policy, mode=mode,
            )
        elif isinstance(payload, QueryGraph):
            request = OptimizationRequest(
                request_id="cli", kind="join_order", problem=payload,
                deadline_ms=args.deadline_ms, seed=args.seed, policy=policy, mode=mode,
            )
        else:
            from repro.sql import SqlQuery

            if isinstance(payload, SqlQuery):
                request = OptimizationRequest(
                    request_id="cli", kind="sql", problem=payload,
                    deadline_ms=args.deadline_ms, seed=args.seed,
                    policy=policy, mode=mode,
                )
            else:
                print(
                    f"error: {args.input} holds a {type(payload).__name__}, "
                    "expected a request, MQO problem, query graph or SQL query",
                    file=sys.stderr,
                )
                return 2
    elif args.problem == "mqo":
        problem = random_mqo_problem(args.queries, args.ppq, seed=args.seed)
        request = OptimizationRequest(
            request_id="cli", kind="mqo", problem=problem,
            deadline_ms=args.deadline_ms, seed=args.seed, policy=policy, mode=mode,
        )
    else:
        makers = {
            "chain": chain_query, "star": star_query,
            "cycle": cycle_query, "clique": clique_query,
        }
        graph = makers[args.shape](args.relations, seed=args.seed)
        request = OptimizationRequest(
            request_id="cli", kind="join_order", problem=graph,
            deadline_ms=args.deadline_ms, seed=args.seed, policy=policy, mode=mode,
        )

    routing = None
    if args.route:
        from repro.routing import RoutingPolicy

        routing = RoutingPolicy(candidates=policy)
    service = OptimizationService(
        seed=args.seed if args.seed is not None else 0, routing=routing
    )
    try:
        result = service.optimize(request)
    except ProblemError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"{result.request_id}: kind={result.kind} served_by={result.served_by} "
        f"{_format_plan(result)} cost={result.cost:g} valid={result.valid} "
        f"deadline_exceeded={result.deadline_exceeded} "
        f"elapsed={result.elapsed_ms:.1f}ms"
    )
    for entry in result.stage_trace:
        energy = "-" if entry.get("energy") is None else f"{entry['energy']:.3f}"
        print(
            f"  stage {entry['stage']}: {1000.0 * entry['seconds']:.1f}ms "
            f"energy={energy} valid={entry['valid']}"
        )
    if args.output is not None:
        serialization.save(result, args.output)
        print(f"result written to {args.output}")
    _print_service_stats(service.stats())
    return 0 if result.valid else 1


def _cmd_sql(args: argparse.Namespace) -> int:
    from repro import serialization
    from repro.exceptions import ProblemError
    from repro.service import OptimizationRequest, OptimizationService, parse_policy
    from repro.sql import (
        SqlQuery,
        generate_workload,
        parse_sql,
        plan_query,
        tpch_catalog,
    )

    catalog = tpch_catalog(scale=args.catalog_scale)

    if args.action == "generate":
        statements = generate_workload(
            args.count,
            seed=args.seed,
            catalog=catalog,
            min_tables=args.min_tables,
            max_tables=args.max_tables,
        )
        for statement in statements:
            print(f"{statement};")
        return 0

    if args.query is None:
        print(f"error: sql {args.action} needs a query argument", file=sys.stderr)
        return 2
    sql = sys.stdin.read() if args.query == "-" else args.query

    if args.action == "parse":
        statement = parse_sql(sql)
        tables = ", ".join(
            f"{t.table} AS {t.alias}" if t.alias != t.table else t.table
            for t in statement.tables
        )
        print(statement)
        print(f"tables: {tables}")
        print(f"predicates: {len(statement.predicates)}")
        return 0

    plan = plan_query(sql, catalog=catalog)
    if args.action == "explain":
        print(plan.explain())
        graph = plan.graph
        print(
            f"join graph: {graph.num_relations} relations, "
            f"{graph.num_predicates} join predicates, "
            f"estimated rows ~{plan.estimated_rows:.6g}"
        )
        return 0

    # optimize: serve the raw SQL through the deadline-aware service
    policy = parse_policy(args.policy) if args.policy else None
    request = OptimizationRequest(
        request_id="sql-cli",
        kind="sql",
        problem=SqlQuery(sql=sql, catalog=catalog),
        deadline_ms=args.deadline_ms,
        seed=args.seed,
        policy=policy,
        mode=args.mode.replace("-", "_"),
    )
    service = OptimizationService(seed=args.seed)
    try:
        result = service.optimize(request)
    except ProblemError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    order = result.plan.get("order", ())
    print(
        f"order: {' >> '.join(order) or '(none)'}\n"
        f"C_out={result.cost:g} served_by={result.served_by} "
        f"valid={result.valid} deadline_exceeded={result.deadline_exceeded} "
        f"elapsed={result.elapsed_ms:.1f}ms"
    )
    if args.output is not None:
        serialization.save(result, args.output)
        print(f"result written to {args.output}")
    return 0 if result.valid else 1


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json as _json

    from repro import serialization
    from repro.server import ServiceConfig, make_scheduler
    from repro.service import make_adapter, parse_policy, result_to_dict, synthetic_requests

    policy = parse_policy(args.policy) if args.policy else None
    requests = synthetic_requests(
        args.requests,
        seed=args.seed,
        deadline_ms=args.deadline_ms,
        mqo_fraction=args.mqo_fraction,
        duplicate_fraction=args.duplicates,
        sql_fraction=args.sql_fraction,
        policy=policy,
        mode=args.mode.replace("-", "_"),
    )
    import time as _time

    start = _time.perf_counter()
    with make_scheduler(
        args.backend,
        config=ServiceConfig(seed=args.seed, routing=args.route),
        workers=args.workers,
        queue_limit=args.queue_limit,
        coalesce=not args.no_coalesce,
    ) as scheduler:
        # the pool is up before the clock starts; wall measures serving
        start = _time.perf_counter()
        results = scheduler.run(requests)
        wall = _time.perf_counter() - start
        stats = scheduler.stats()

    invalid = 0
    for request, result in zip(requests, results):
        if result.status == "rejected":
            print(f"{result.request_id}: REJECTED ({result.reject_reason})")
            continue
        ok = result.valid and make_adapter(request.kind, request.problem).validate(
            result.plan
        )
        invalid += 0 if ok else 1
        print(
            f"{result.request_id}: kind={result.kind} served_by={result.served_by} "
            f"{_format_plan(result)} cost={result.cost:g} valid={ok} "
            f"cache={'hit' if result.cache_hit else 'miss'} "
            f"deadline_exceeded={result.deadline_exceeded}"
        )
    served = sum(1 for r in results if r.status == "ok")
    print()
    print(f"throughput: {served / wall:.1f} req/s ({served} served in {wall:.2f}s wall)")
    _print_service_stats(stats)
    if args.json_out is not None:
        import os as _os

        payload = {
            "config": {
                "requests": args.requests, "workers": args.workers,
                "backend": args.backend, "coalesce": not args.no_coalesce,
                "deadline_ms": args.deadline_ms, "seed": args.seed,
                "routing": args.route, "cpu_count": _os.cpu_count(),
            },
            "wall_seconds": wall,
            "throughput_rps": served / wall if wall > 0 else None,
            "results": [
                serialization.to_jsonable(result_to_dict(r)) for r in results
            ],
            "stats": serialization.to_jsonable(stats),
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            _json.dump(payload, handle, indent=2)
        print(f"bench results written to {args.json_out}")
    if invalid:
        print(f"error: {invalid} response(s) failed validity checks", file=sys.stderr)
        return 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json as _json

    from repro.replay import replay_stream, run_replay
    from repro.server import ServiceConfig, make_scheduler

    count = 1000 if args.smoke else args.requests
    unique = min(args.unique, 64) if args.smoke else args.unique
    backends = ("thread", "process") if args.backend == "both" else (args.backend,)

    reports = {}
    failures = 0
    for backend in backends:
        print(f"--- replay: {count} requests via {backend} backend ---")
        with make_scheduler(
            backend,
            config=ServiceConfig(seed=args.seed, routing=args.route),
            workers=args.workers,
            queue_limit=args.queue_limit,
        ) as scheduler:
            stream = replay_stream(
                count,
                seed=args.seed,
                unique=unique,
                zipf_s=args.zipf_s,
                deadline_ms=args.deadline_ms,
                mqo_fraction=args.mqo_fraction,
                sql_fraction=args.sql_fraction,
            )
            report = run_replay(
                scheduler,
                stream,
                rate=args.rate,
                max_in_flight=args.max_in_flight,
                progress=lambda n: print(f"  {n} submitted..."),
                progress_every=max(1000, count // 10),
            )
        reports[backend] = report
        latency = report.latency_ms
        print(
            f"{report.requests} requests in {report.wall_seconds:.2f}s "
            f"({report.throughput_rps:.1f} req/s)"
        )
        print(
            f"latency ms: p50 {latency.get('p50', float('nan')):.2f} "
            f"p95 {latency.get('p95', float('nan')):.2f} "
            f"p99 {latency.get('p99', float('nan')):.2f} "
            f"max {latency.get('max', float('nan')):.1f}"
        )
        print(
            f"cache hit {100.0 * report.cache.get('hit_rate', 0.0):.1f}%  "
            f"coalesce hit {100.0 * report.coalesce.get('hit_rate', 0.0):.1f}%  "
            f"rejected {100.0 * report.rejection_rate:.2f}%  "
            f"deadline miss {100.0 * report.deadline_miss_rate:.2f}%  "
            f"errors {report.errors}"
        )
        if report.errors or report.ok == 0:
            failures += 1
    if args.json_out is not None:
        payload = {
            "config": {
                "requests": count, "unique": unique, "zipf_s": args.zipf_s,
                "deadline_ms": args.deadline_ms, "seed": args.seed,
                "rate": args.rate, "max_in_flight": args.max_in_flight,
                "workers": args.workers, "queue_limit": args.queue_limit,
                "routing": args.route,
            },
            "backends": {name: r.to_dict() for name, r in reports.items()},
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            _json.dump(payload, handle, indent=2)
        print(f"replay results written to {args.json_out}")
    return 1 if failures else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import ServiceConfig, make_scheduler, run_gateway
    from repro.service import parse_policy

    config = ServiceConfig(
        policy=parse_policy(args.policy) if args.policy else None,
        seed=args.seed,
        routing=args.route,
    )
    scheduler = make_scheduler(
        args.backend,
        config=config,
        workers=args.workers,
        queue_limit=args.queue_limit,
        warmup=[] if args.no_warmup else None,
    )
    if args.smoke:
        return _serve_smoke(scheduler, args)
    run_gateway(
        scheduler,
        host=args.host,
        port=args.port,
        default_deadline_ms=args.deadline_ms,
    )
    return 0


def _serve_smoke(scheduler, args: argparse.Namespace) -> int:
    """End-to-end gateway self-test on an ephemeral port (CI smoke)."""
    import json as _json
    import urllib.error
    import urllib.request

    from repro.mqo import random_mqo_problem
    from repro.server import serve_in_background
    from repro.service.request import problem_to_dict

    def _call(url: str, body=None, expect: int = 200):
        data = None if body is None else _json.dumps(body).encode("utf-8")
        req = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                return resp.status, _json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            return exc.code, _json.loads(exc.read().decode("utf-8"))

    failures = []
    with serve_in_background(
        scheduler, host=args.host, default_deadline_ms=args.deadline_ms
    ) as handle:
        url = handle.url
        status, health = _call(f"{url}/healthz")
        if status != 200 or health.get("status") != "ok":
            failures.append(f"/healthz: {status} {health}")
        status, result = _call(
            f"{url}/optimize",
            body={
                "kind": "mqo",
                "problem": problem_to_dict(
                    "mqo", random_mqo_problem(2, 2, seed=args.seed)
                ),
                "deadline_ms": args.deadline_ms,
            },
        )
        if status != 200 or result.get("status") != "ok" or not result.get("valid"):
            failures.append(f"/optimize: {status} {result}")
        status, result = _call(
            f"{url}/sql",
            body={
                "sql": "SELECT * FROM lineitem, orders, customer "
                "WHERE lineitem.l_orderkey = orders.o_orderkey "
                "AND orders.o_custkey = customer.c_custkey",
                "deadline_ms": args.deadline_ms,
            },
        )
        if status != 200 or result.get("status") != "ok" or not result.get("valid"):
            failures.append(f"/sql: {status} {result}")
        status, stats = _call(f"{url}/stats")
        requests_total = (
            stats.get("counters", {}).get("requests_total", 0) if status == 200 else 0
        )
        if status != 200 or requests_total < 2:
            failures.append(f"/stats: {status} requests_total={requests_total}")
        status, body = _call(f"{url}/optimize", body={"kind": "unknown-kind"})
        if status != 400:
            failures.append(f"/optimize bad kind: expected 400, got {status} {body}")
    if failures:
        for failure in failures:
            print(f"smoke FAIL {failure}", file=sys.stderr)
        return 1
    print(
        f"smoke OK: backend={args.backend} workers={scheduler.workers} — "
        f"optimize, sql, stats, healthz, 400-path all good; drained cleanly"
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import json as _json
    import os

    from repro.verify import run_verification

    if args.cache_dir is not None:
        # the oracle cache resolves its directory from the environment
        # inside harness worker processes; flags must win over it
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
    solvers = None
    if args.solver:
        solvers = [s for s in (p.strip() for p in args.solver.split(",")) if s]

    report = run_verification(
        suite=args.suite,
        solvers=solvers,
        seed=args.seed,
        workers=args.workers,
        inject=args.inject,
        oracle_cache=not args.no_cache,
        include_chain=not args.no_chain,
        include_gate=not args.no_gate,
    )
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format_text())
    if not report.ok:
        first = report.first_violation()
        print(
            f"error: {len(report.violations)} verification violation(s); "
            f"first: invariant '{first.get('invariant')}' violated by "
            f"{first.get('subject')}: {first.get('message')}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_info(_: argparse.Namespace) -> int:
    import repro

    print(repro.__doc__)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quantum computing for database query optimization "
        "(SIGMOD 2022 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    experiments = sub.add_parser(
        "experiments", help="run paper-reproduction experiments"
    )
    experiments.add_argument(
        "name",
        help="experiment name, 'all', or 'list'",
    )
    experiments.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel worker processes per sweep "
        "(default: REPRO_BENCH_WORKERS or 1)",
    )
    experiments.add_argument(
        "--seed",
        type=int,
        default=None,
        help="root seed override (per-point seeds derive from it)",
    )
    experiments.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every grid point, ignoring results/.cache",
    )
    experiments.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: REPRO_CACHE_DIR or results/.cache)",
    )
    experiments.set_defaults(func=_cmd_experiments)

    solve = sub.add_parser(
        "solve", help="solve a generated problem with a registry solver"
    )
    solve.add_argument(
        "--problem", choices=("mqo",), default="mqo",
        help="problem family to generate",
    )
    solve.add_argument("--queries", type=int, default=10)
    solve.add_argument("--ppq", type=int, default=3)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--solver", default="hybrid",
        help="registry solver name, or 'list' to show the catalog",
    )
    solve.add_argument(
        "--sub-size", type=int, default=None,
        help="hybrid only: maximum subproblem size",
    )
    solve.set_defaults(func=_cmd_solve)

    mqo = sub.add_parser("solve-mqo", help="solve a random MQO instance")
    mqo.add_argument("--queries", type=int, default=3)
    mqo.add_argument("--ppq", type=int, default=3)
    mqo.add_argument("--seed", type=int, default=0)
    mqo.add_argument(
        "--solver",
        choices=("greedy", "exhaustive", "genetic", "annealing", "qaoa"),
        default="annealing",
    )
    mqo.set_defaults(func=_cmd_solve_mqo)

    join = sub.add_parser("solve-join", help="solve a join ordering problem")
    join.add_argument("--shape", choices=("chain", "star", "cycle", "clique"), default="chain")
    join.add_argument("--relations", type=int, default=6)
    join.add_argument("--seed", type=int, default=0)
    join.add_argument("--reads", type=int, default=100)
    join.add_argument(
        "--solver",
        choices=("dp", "ikkbz", "greedy", "genetic", "qubo-annealing", "direct-qubo"),
        default="dp",
    )
    join.set_defaults(func=_cmd_solve_join)

    optimize = sub.add_parser(
        "optimize",
        help="serve one optimization request through the deadline-aware service",
    )
    optimize.add_argument(
        "--input", default=None,
        help="JSON file holding an optimization_request, mqo_problem or query_graph",
    )
    optimize.add_argument(
        "--problem", choices=("mqo", "join"), default="mqo",
        help="generated problem family when --input is not given",
    )
    optimize.add_argument("--queries", type=int, default=8)
    optimize.add_argument("--ppq", type=int, default=3)
    optimize.add_argument(
        "--shape", choices=("chain", "star", "cycle", "clique"), default="chain"
    )
    optimize.add_argument("--relations", type=int, default=6)
    optimize.add_argument("--deadline-ms", type=float, default=200.0)
    optimize.add_argument("--seed", type=int, default=0)
    optimize.add_argument(
        "--policy", default=None,
        help="comma-separated fallback chain (default: hybrid,tabu,sa,greedy)",
    )
    optimize.add_argument(
        "--mode", choices=("first-valid", "exhaust"), default="first-valid",
        help="stop at the first valid stage, or run every stage that fits",
    )
    optimize.add_argument(
        "--output", default=None, help="write the optimization_result JSON here"
    )
    optimize.add_argument(
        "--route", action="store_true",
        help="deadline-aware routing: pick chain order and budget split from "
        "a learned per-solver cost model (ignored when --policy is given)",
    )
    optimize.set_defaults(func=_cmd_optimize)

    sql = sub.add_parser(
        "sql",
        help="SQL front door: text-to-plan pipeline over a TPC-H-style catalog",
    )
    sql.add_argument(
        "action", choices=("parse", "explain", "optimize", "generate"),
        help="parse: canonical statement; explain: pushed-down algebra tree; "
        "optimize: serve through the fallback chain; generate: seeded workload",
    )
    sql.add_argument(
        "query", nargs="?", default=None,
        help="SQL text ('-' reads stdin); ignored by 'generate'",
    )
    sql.add_argument(
        "--catalog-scale", type=float, default=0.01,
        help="TPC-H scale factor for the built-in catalog (default 0.01)",
    )
    sql.add_argument("--seed", type=int, default=0)
    sql.add_argument("--deadline-ms", type=float, default=500.0)
    sql.add_argument(
        "--policy", default=None,
        help="comma-separated fallback chain (default: hybrid,tabu,sa,greedy)",
    )
    sql.add_argument(
        "--mode", choices=("first-valid", "exhaust"), default="first-valid"
    )
    sql.add_argument(
        "--output", default=None, help="write the optimization_result JSON here"
    )
    sql.add_argument(
        "--count", type=int, default=5, help="generate: number of queries"
    )
    sql.add_argument("--min-tables", type=int, default=2)
    sql.add_argument("--max-tables", type=int, default=6)
    sql.set_defaults(func=_cmd_sql)

    bench = sub.add_parser(
        "serve-bench",
        help="drive the optimization service with a synthetic workload",
    )
    bench.add_argument("--requests", type=int, default=32)
    bench.add_argument(
        "--workers", type=int, default=None,
        help="scheduler worker threads (default: REPRO_BENCH_WORKERS or 1)",
    )
    bench.add_argument("--deadline-ms", type=float, default=200.0)
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--mqo-fraction", type=float, default=0.5)
    bench.add_argument(
        "--sql-fraction", type=float, default=0.0,
        help="fraction of requests arriving as raw SQL (kind='sql')",
    )
    bench.add_argument(
        "--duplicates", type=float, default=0.25,
        help="fraction of requests repeating an earlier problem (cache exercise)",
    )
    bench.add_argument(
        "--queue-limit", type=int, default=None,
        help="admission control: max in-flight requests before rejection",
    )
    bench.add_argument("--policy", default=None)
    bench.add_argument(
        "--mode", choices=("first-valid", "exhaust"), default="first-valid"
    )
    bench.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="executor backend: GIL-bound threads or one process per worker",
    )
    bench.add_argument(
        "--no-coalesce", action="store_true",
        help="disable in-flight duplicate-request coalescing",
    )
    bench.add_argument(
        "--route", action="store_true",
        help="enable the deadline-aware per-request router in every worker",
    )
    bench.add_argument(
        "--json-out", default=None, help="dump results + metrics JSON here"
    )
    bench.set_defaults(func=_cmd_serve_bench)

    replay = sub.add_parser(
        "replay",
        help="stream a Zipfian-duplicated workload through a scheduler "
        "backend at production-like volume",
    )
    replay.add_argument(
        "--requests", type=int, default=100_000,
        help="stream length (lazily generated; 10^5-10^6 is the intended range)",
    )
    replay.add_argument(
        "--unique", type=int, default=512,
        help="distinct problem slots behind the Zipf distribution",
    )
    replay.add_argument(
        "--zipf-s", type=float, default=1.1,
        help="Zipf exponent: higher = hotter head, more duplication",
    )
    replay.add_argument(
        "--backend", choices=("thread", "process", "both"), default="thread",
        help="scheduler backend(s) to replay through",
    )
    replay.add_argument(
        "--workers", type=int, default=None,
        help="scheduler workers (default: REPRO_BENCH_WORKERS or 1)",
    )
    replay.add_argument(
        "--rate", type=float, default=None,
        help="open-loop arrival rate in req/s (default: closed loop, "
        "submit as fast as the in-flight window allows)",
    )
    replay.add_argument(
        "--max-in-flight", type=int, default=256,
        help="client-side concurrency window (bounds harness memory)",
    )
    replay.add_argument(
        "--queue-limit", type=int, default=None,
        help="admission control: max in-flight requests before rejection",
    )
    replay.add_argument("--deadline-ms", type=float, default=200.0)
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--mqo-fraction", type=float, default=0.5)
    replay.add_argument("--sql-fraction", type=float, default=0.2)
    replay.add_argument(
        "--route", action="store_true",
        help="enable the deadline-aware per-request router",
    )
    replay.add_argument(
        "--json-out", default=None, help="dump per-backend replay reports here"
    )
    replay.add_argument(
        "--smoke", action="store_true",
        help="CI smoke: 10^3 requests over at most 64 slots",
    )
    replay.set_defaults(func=_cmd_replay)

    serve = sub.add_parser(
        "serve",
        help="HTTP gateway: POST /optimize, POST /sql, GET /stats, GET /healthz",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080, help="listen port (0 = ephemeral)"
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="solver workers (default: REPRO_BENCH_WORKERS or 1)",
    )
    serve.add_argument(
        "--backend", choices=("process", "thread"), default="process",
        help="executor backend behind the gateway (default: process)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=None,
        help="admission control: max in-flight requests before 503",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--policy", default=None,
        help="comma-separated fallback chain (default: hybrid,tabu,sa,greedy)",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=200.0,
        help="default per-request deadline when the body omits one",
    )
    serve.add_argument(
        "--no-warmup", action="store_true",
        help="skip per-worker compilation-cache warmup",
    )
    serve.add_argument(
        "--route", action="store_true",
        help="enable the deadline-aware per-request router in every worker",
    )
    serve.add_argument(
        "--smoke", action="store_true",
        help="self-test: bind an ephemeral port, serve one MQO and one SQL "
        "request, check /healthz and /stats, drain, exit 0/1",
    )
    serve.set_defaults(func=_cmd_serve)

    verify = sub.add_parser(
        "verify",
        help="differential verification: all solvers vs exact oracles",
    )
    verify.add_argument(
        "--suite", choices=("quick", "full"), default="quick",
        help="corpus size: quick (CI smoke) or full",
    )
    verify.add_argument(
        "--solver", default=None,
        help="comma-separated registry solver subset (default: all)",
    )
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument(
        "--workers", type=int, default=None,
        help="parallel worker processes (default: REPRO_BENCH_WORKERS or 1); "
        "the report is identical for any worker count",
    )
    verify.add_argument(
        "--json", action="store_true",
        help="print the deterministic JSON report instead of the table",
    )
    verify.add_argument(
        "--no-cache", action="store_true",
        help="recompute oracle ground truths, ignoring results/.cache",
    )
    verify.add_argument(
        "--cache-dir", default=None,
        help="oracle-cache directory (default: REPRO_CACHE_DIR or results/.cache)",
    )
    verify.add_argument(
        "--no-chain", action="store_true",
        help="skip the service fallback-chain points",
    )
    verify.add_argument(
        "--no-gate", action="store_true",
        help="skip the transpiled-circuit equivalence points",
    )
    verify.add_argument(
        "--inject",
        choices=(
            "none", "offset", "ising", "decode", "energy", "compiled", "sql",
            "router", "shard",
        ),
        default="none",
        help="plant a known bug to prove the harness catches it "
        "(must exit non-zero)",
    )
    verify.set_defaults(func=_cmd_verify)

    info = sub.add_parser("info", help="package overview")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv=None) -> int:
    """Entry point for ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ConfigurationError, SolverError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
