"""SQL front door: text-to-plan pipeline for the QUBO optimizers.

The missing first mile of the reproduction: real systems start from SQL
text, not pre-built problem objects.  This package parses a SQL subset
(SELECT–FROM–WHERE, inner joins, conjunctive predicates), binds it
against a :class:`~repro.sql.catalog.Catalog` of table statistics,
builds a relational-algebra tree with predicate pushdown, estimates
selectivities System-R-style, and extracts the
:class:`~repro.joinorder.query_graph.QueryGraph` the existing solvers
and the serving layer consume.  A TPC-H-like schema and a seeded query
generator provide realistic workloads.

Importing :mod:`repro.sql` registers the ``sql`` problem kind with the
service layer and the ``sql_query``/``catalog`` payload kinds with
:mod:`repro.serialization`; both registries also lazily import this
package on first use, so the kinds work without explicit imports.
"""

from repro.sql.algebra import (
    BoundQuery,
    Filter,
    Join,
    PlanNode,
    Project,
    Scan,
    bind,
    canonical_plan,
    estimated_cardinality,
    explain_plan,
    push_down_predicates,
)
from repro.sql.ast import (
    ColumnRef,
    Comparison,
    Literal,
    SelectItem,
    SelectStatement,
    Star,
    TableRef,
)
from repro.sql.catalog import (
    Catalog,
    ColumnStats,
    TableStats,
    catalog_from_dict,
    catalog_to_dict,
    comparison_selectivity,
)
from repro.sql.extract import cost_from_plan, extract_query_graph
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_statement
from repro.sql.pipeline import (
    SqlAdapter,
    SqlPlan,
    SqlQuery,
    parse_sql,
    plan_query,
    sql_query_from_dict,
    sql_query_to_dict,
)
from repro.sql.schema import JOIN_EDGES, tpch_catalog
from repro.sql.workload import generate_query, generate_workload, workload_to_mqo

__all__ = [
    "BoundQuery",
    "Catalog",
    "ColumnRef",
    "ColumnStats",
    "Comparison",
    "Filter",
    "JOIN_EDGES",
    "Join",
    "Literal",
    "PlanNode",
    "Project",
    "Scan",
    "SelectItem",
    "SelectStatement",
    "SqlAdapter",
    "SqlPlan",
    "SqlQuery",
    "Star",
    "TableRef",
    "TableStats",
    "bind",
    "canonical_plan",
    "catalog_from_dict",
    "catalog_to_dict",
    "comparison_selectivity",
    "cost_from_plan",
    "estimated_cardinality",
    "explain_plan",
    "extract_query_graph",
    "generate_query",
    "generate_workload",
    "parse_sql",
    "parse_statement",
    "plan_query",
    "push_down_predicates",
    "sql_query_from_dict",
    "sql_query_to_dict",
    "tokenize",
    "tpch_catalog",
    "workload_to_mqo",
]
