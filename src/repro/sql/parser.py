"""Recursive-descent parser for the supported SQL subset.

Grammar (case-insensitive keywords)::

    statement   := SELECT select_list FROM table_expr where_opt ';'? END
    select_list := '*' | select_item (',' select_item)*
    select_item := column_ref (AS? name)?
    table_expr  := table_ref ((',' | INNER? JOIN) table_ref on_opt)*
    table_ref   := name (AS? name)?
    on_opt      := (ON conjunction)?          -- required after JOIN
    where_opt   := (WHERE conjunction)?
    conjunction := comparison (AND comparison)*
    comparison  := operand op operand         -- op in = <> < <= > >=
    operand     := column_ref | '-'? number | string
    column_ref  := name ('.' name)?

Anything outside the subset — outer joins, ``OR``/``NOT``, subqueries,
``GROUP BY`` and friends — raises :class:`SqlSyntaxError` with a message
naming the unsupported construct.  Alias collisions raise
:class:`SqlSemanticError`: the statement is well-formed text but does
not bind a usable scope.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.exceptions import SqlSemanticError, SqlSyntaxError
from repro.sql.ast import (
    ColumnRef,
    Comparison,
    Literal,
    Operand,
    SelectItem,
    SelectStatement,
    Star,
    TableRef,
)
from repro.sql.lexer import Token, tokenize

__all__ = ["parse_statement"]

#: keywords that may legally follow a table reference without an alias
_CLAUSE_KEYWORDS = frozenset({"where", "join", "inner", "on", "and"})

_UNSUPPORTED_JOINS = frozenset({"left", "right", "full", "outer", "natural"})


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- token plumbing -------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "end":
            self.index += 1
        return token

    def accept(self, kind: str, value: str = "") -> bool:
        if self.current.matches(kind, value):
            self.advance()
            return True
        return False

    def expect(self, kind: str, value: str = "", what: str = "") -> Token:
        if self.current.matches(kind, value):
            return self.advance()
        expected = what or value or kind
        return self.fail(f"expected {expected}")

    def fail(self, message: str) -> "Token":
        token = self.current
        shown = token.value if token.kind != "end" else "end of input"
        raise SqlSyntaxError(
            f"{message}, found {shown!r} at position {token.position}"
        )

    # -- grammar --------------------------------------------------------
    def statement(self) -> SelectStatement:
        self.expect("keyword", "select", "SELECT")
        projections = self.select_list()
        self.expect("keyword", "from", "FROM")
        tables, predicates = self.table_expr()
        if self.accept("keyword", "where"):
            predicates.extend(self.conjunction())
        self.accept("punct", ";")
        if self.current.kind != "end":
            self.fail("unexpected trailing input")
        self.check_aliases(tables)
        return SelectStatement(
            projections=tuple(projections),
            tables=tuple(tables),
            predicates=tuple(predicates),
        )

    def select_list(self) -> List[Union[SelectItem, Star]]:
        if self.accept("punct", "*"):
            return [Star()]
        items: List[Union[SelectItem, Star]] = [self.select_item()]
        while self.accept("punct", ","):
            items.append(self.select_item())
        return items

    def select_item(self) -> SelectItem:
        if self.current.matches("keyword", "distinct"):
            self.fail("DISTINCT is not supported")
        column = self.column_ref()
        alias = None
        if self.accept("keyword", "as"):
            alias = self.expect("name", what="projection alias").value
        elif self.current.kind == "name":
            alias = self.advance().value
        return SelectItem(expr=column, alias=alias)

    def table_expr(self) -> Tuple[List[TableRef], List[Comparison]]:
        tables = [self.table_ref()]
        predicates: List[Comparison] = []
        while True:
            if self.accept("punct", ","):
                tables.append(self.table_ref())
                continue
            if self.current.kind == "keyword" and self.current.value in _UNSUPPORTED_JOINS:
                self.fail(f"{self.current.value.upper()} JOIN is not supported")
            if self.current.matches("keyword", "cross"):
                self.fail(
                    "CROSS JOIN is not supported; join tables with an ON "
                    "condition or list them in FROM with WHERE predicates"
                )
            saw_inner = self.accept("keyword", "inner")
            if self.accept("keyword", "join"):
                tables.append(self.table_ref())
                self.expect("keyword", "on", "ON after JOIN")
                predicates.extend(self.conjunction())
                continue
            if saw_inner:
                self.fail("expected JOIN after INNER")
            break
        return tables, predicates

    def table_ref(self) -> TableRef:
        name = self.expect("name", what="table name").value
        alias = name
        if self.accept("keyword", "as"):
            alias = self.expect("name", what="table alias").value
        elif self.current.kind == "name":
            alias = self.advance().value
        return TableRef(table=name, alias=alias)

    def conjunction(self) -> List[Comparison]:
        predicates = [self.comparison()]
        while True:
            if self.current.matches("keyword", "or"):
                self.fail("OR is not supported; only conjunctive predicates")
            if self.accept("keyword", "and"):
                predicates.append(self.comparison())
                continue
            break
        return predicates

    def comparison(self) -> Comparison:
        if self.current.matches("keyword", "not"):
            self.fail("NOT is not supported; only conjunctive predicates")
        if self.current.matches("punct", "("):
            self.fail("parenthesised predicates and subqueries are not supported")
        left = self.operand()
        for unsupported in ("between", "in", "like", "is"):
            if self.current.matches("keyword", unsupported):
                self.fail(f"{unsupported.upper()} predicates are not supported")
        op = self.expect("operator", what="comparison operator").value
        right = self.operand()
        return Comparison(left=left, op=op, right=right)

    def operand(self) -> Operand:
        if self.accept("punct", "-"):
            token = self.expect("number", what="number after unary '-'")
            return Literal(value=-float(token.value))
        if self.current.kind == "number":
            return Literal(value=float(self.advance().value))
        if self.current.kind == "string":
            return Literal(value=self.advance().value)
        if self.current.kind == "name":
            return self.column_ref()
        return self.fail("expected a column reference or literal")

    def column_ref(self) -> ColumnRef:
        first = self.expect("name", what="column reference").value
        if self.accept("punct", "."):
            column = self.expect("name", what="column name after '.'").value
            return ColumnRef(table=first, column=column)
        return ColumnRef(table=None, column=first)

    # -- semantic checks done at parse time -----------------------------
    def check_aliases(self, tables: List[TableRef]) -> None:
        seen = set()
        for ref in tables:
            if ref.alias in seen:
                raise SqlSemanticError(
                    f"duplicate table alias {ref.alias!r}; give each FROM "
                    "entry a distinct alias"
                )
            seen.add(ref.alias)


def parse_statement(text: str) -> SelectStatement:
    """Parse one SELECT statement of the supported subset.

    Raises :class:`SqlSyntaxError` for malformed or unsupported text and
    :class:`SqlSemanticError` for alias collisions.
    """
    return _Parser(text).statement()
