"""Parsed form of the supported SQL subset.

The parser emits one :class:`SelectStatement` per query: a projection
list, the FROM tables (with aliases), and a single conjunction of
:class:`Comparison` predicates — ``ON`` conditions and the ``WHERE``
clause are normalised into the same list, because for inner joins they
are semantically interchangeable and the planner treats them uniformly
(predicate pushdown re-sites every predicate anyway).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

__all__ = [
    "COMPARISON_OPERATORS",
    "ColumnRef",
    "Comparison",
    "Literal",
    "Operand",
    "SelectItem",
    "SelectStatement",
    "Star",
    "TableRef",
]

#: normalised comparison operators (``!=`` lexes to ``<>``)
COMPARISON_OPERATORS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class ColumnRef:
    """A possibly-qualified column reference (``alias.column``)."""

    table: Optional[str]  # alias qualifier, None when unqualified
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal:
    """A numeric or string constant."""

    value: Union[float, str]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return f"{self.value:g}"


Operand = Union[ColumnRef, Literal]


@dataclass(frozen=True)
class Comparison:
    """One conjunct: ``left op right``."""

    left: Operand
    op: str
    right: Operand

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"

    def column_refs(self) -> Tuple[ColumnRef, ...]:
        return tuple(
            side for side in (self.left, self.right) if isinstance(side, ColumnRef)
        )


@dataclass(frozen=True)
class Star:
    """``SELECT *``."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class SelectItem:
    """One projection: a column, optionally renamed with ``AS``."""

    expr: ColumnRef
    alias: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.expr} AS {self.alias}" if self.alias else str(self.expr)


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause table with its binding alias.

    ``alias`` is always populated (defaulting to the table name), so
    downstream code resolves columns against aliases only.
    """

    table: str
    alias: str

    def __str__(self) -> str:
        return self.table if self.alias == self.table else f"{self.table} AS {self.alias}"


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT–FROM–WHERE query."""

    projections: Tuple[Union[SelectItem, Star], ...]
    tables: Tuple[TableRef, ...]
    predicates: Tuple[Comparison, ...]

    def __str__(self) -> str:
        select = ", ".join(str(p) for p in self.projections)
        from_ = ", ".join(str(t) for t in self.tables)
        where = " AND ".join(str(p) for p in self.predicates)
        text = f"SELECT {select} FROM {from_}"
        return f"{text} WHERE {where}" if where else text
