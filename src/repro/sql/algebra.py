"""Relational-algebra trees: binding, pushdown, cardinality estimation.

The pipeline from parsed AST to join graph goes through three steps
here:

1. :func:`bind` resolves every table and column reference of a
   :class:`~repro.sql.ast.SelectStatement` against a
   :class:`~repro.sql.catalog.Catalog`, producing a :class:`BoundQuery`
   whose predicates are fully alias-qualified.
2. :func:`canonical_plan` builds the naive tree — a left-deep cascade of
   predicate-free joins in FROM order with every predicate in a stack of
   :class:`Filter` nodes on top.
3. :func:`push_down_predicates` re-sites each predicate at the lowest
   node that sees all referenced aliases: single-table predicates land
   directly above their :class:`Scan`, join predicates on the first
   :class:`Join` covering both sides.

Cardinality estimation multiplies base cardinalities by predicate
selectivities under independence, so pushdown provably preserves the
root estimate (the product just re-associates) — a property pinned by
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple, Union

from repro.exceptions import SqlSemanticError
from repro.sql.ast import (
    ColumnRef,
    Comparison,
    Literal,
    SelectItem,
    SelectStatement,
    Star,
)
from repro.sql.catalog import Catalog, TableStats, comparison_selectivity

__all__ = [
    "BoundQuery",
    "Filter",
    "Join",
    "PlanNode",
    "Project",
    "Scan",
    "bind",
    "canonical_plan",
    "estimated_cardinality",
    "explain_plan",
    "plan_aliases",
    "predicate_aliases",
    "predicate_selectivity",
    "push_down_predicates",
]


# -- bound query --------------------------------------------------------

@dataclass(frozen=True)
class BoundQuery:
    """A statement whose names are all resolved against a catalog.

    ``aliases`` maps each FROM alias to its table statistics in FROM
    order; every :class:`ColumnRef` inside ``predicates`` and
    ``projections`` carries its alias qualifier.
    """

    statement: SelectStatement
    catalog: Catalog
    aliases: Mapping[str, TableStats]
    predicates: Tuple[Comparison, ...]
    projections: Tuple[Union[SelectItem, Star], ...]

    def stats_for(self, ref: ColumnRef):
        """Column statistics for a fully-qualified reference."""
        assert ref.table is not None
        return self.aliases[ref.table].column(ref.column)


def _resolve_column(
    ref: ColumnRef, aliases: Mapping[str, TableStats]
) -> ColumnRef:
    if ref.table is not None:
        if ref.table not in aliases:
            raise SqlSemanticError(
                f"unknown table alias {ref.table!r} in reference {ref}"
            )
        aliases[ref.table].column(ref.column)  # raises if missing
        return ref
    owners = [alias for alias, stats in aliases.items() if stats.has_column(ref.column)]
    if not owners:
        raise SqlSemanticError(
            f"unknown column {ref.column!r}: no table in scope has it"
        )
    if len(owners) > 1:
        raise SqlSemanticError(
            f"ambiguous column {ref.column!r}: present on "
            f"{', '.join(sorted(owners))}; qualify it with an alias"
        )
    return ColumnRef(table=owners[0], column=ref.column)


def _resolve_predicate(
    pred: Comparison, aliases: Mapping[str, TableStats]
) -> Comparison:
    left = (
        _resolve_column(pred.left, aliases)
        if isinstance(pred.left, ColumnRef)
        else pred.left
    )
    right = (
        _resolve_column(pred.right, aliases)
        if isinstance(pred.right, ColumnRef)
        else pred.right
    )
    if isinstance(left, Literal) and isinstance(right, Literal):
        raise SqlSemanticError(
            f"constant-only predicate {pred} is not supported"
        )
    if (
        isinstance(left, ColumnRef)
        and isinstance(right, ColumnRef)
        and left.table == right.table
    ):
        # a self-comparison within one table is a (weird) local filter;
        # supported, estimated with the default guess downstream
        pass
    return Comparison(left=left, op=pred.op, right=right)


def bind(statement: SelectStatement, catalog: Catalog) -> BoundQuery:
    """Resolve all names in ``statement`` against ``catalog``."""
    aliases: Dict[str, TableStats] = {}
    for ref in statement.tables:
        aliases[ref.alias] = catalog.table(ref.table)
    predicates = tuple(
        _resolve_predicate(pred, aliases) for pred in statement.predicates
    )
    projections: List[Union[SelectItem, Star]] = []
    for item in statement.projections:
        if isinstance(item, Star):
            projections.append(item)
        else:
            projections.append(
                SelectItem(
                    expr=_resolve_column(item.expr, aliases), alias=item.alias
                )
            )
    return BoundQuery(
        statement=statement,
        catalog=catalog,
        aliases=aliases,
        predicates=predicates,
        projections=tuple(projections),
    )


def predicate_aliases(pred: Comparison) -> FrozenSet[str]:
    """The set of table aliases a (bound) predicate references."""
    return frozenset(
        ref.table for ref in pred.column_refs() if ref.table is not None
    )


def predicate_selectivity(bound: BoundQuery, pred: Comparison) -> float:
    """System-R selectivity of one bound predicate."""
    left_stats = (
        bound.stats_for(pred.left) if isinstance(pred.left, ColumnRef) else None
    )
    right_stats = (
        bound.stats_for(pred.right) if isinstance(pred.right, ColumnRef) else None
    )
    literal: Optional[Union[float, str]] = None
    if isinstance(pred.left, Literal):
        literal = pred.left.value
    elif isinstance(pred.right, Literal):
        literal = pred.right.value
    return comparison_selectivity(pred.op, left_stats, right_stats, literal)


# -- plan nodes ---------------------------------------------------------

@dataclass(frozen=True)
class Scan:
    """Read one base table under its alias."""

    alias: str
    table: str


@dataclass(frozen=True)
class Filter:
    """Apply one predicate to the child's rows."""

    child: "PlanNode"
    predicate: Comparison


@dataclass(frozen=True)
class Join:
    """Inner join; with no predicates it is a cross product."""

    left: "PlanNode"
    right: "PlanNode"
    predicates: Tuple[Comparison, ...] = ()


@dataclass(frozen=True)
class Project:
    """Keep only the projected columns (cardinality-neutral)."""

    child: "PlanNode"
    projections: Tuple[Union[SelectItem, Star], ...]


PlanNode = Union[Scan, Filter, Join, Project]


def plan_aliases(node: PlanNode) -> FrozenSet[str]:
    """All table aliases produced by the subtree rooted at ``node``."""
    if isinstance(node, Scan):
        return frozenset((node.alias,))
    if isinstance(node, (Filter, Project)):
        return plan_aliases(node.child)
    return plan_aliases(node.left) | plan_aliases(node.right)


def canonical_plan(bound: BoundQuery) -> PlanNode:
    """The naive tree: FROM-order cross joins, all predicates on top."""
    aliases = list(bound.aliases)
    node: PlanNode = Scan(alias=aliases[0], table=bound.aliases[aliases[0]].name)
    for alias in aliases[1:]:
        node = Join(
            left=node,
            right=Scan(alias=alias, table=bound.aliases[alias].name),
        )
    for pred in bound.predicates:
        node = Filter(child=node, predicate=pred)
    return Project(child=node, projections=bound.projections)


def _strip(node: PlanNode, collected: List[Comparison]) -> PlanNode:
    """Remove every Filter and join predicate, collecting them."""
    if isinstance(node, Scan):
        return node
    if isinstance(node, Filter):
        collected.append(node.predicate)
        return _strip(node.child, collected)
    if isinstance(node, Join):
        collected.extend(node.predicates)
        return Join(
            left=_strip(node.left, collected),
            right=_strip(node.right, collected),
        )
    return Project(
        child=_strip(node.child, collected), projections=node.projections
    )


def _place(node: PlanNode, preds: List[Comparison]) -> PlanNode:
    """Re-site each predicate at the lowest covering node."""
    if isinstance(node, Project):
        return Project(child=_place(node.child, preds), projections=node.projections)
    if isinstance(node, Scan):
        here = frozenset((node.alias,))
        placed: PlanNode = node
        for pred in [p for p in preds if predicate_aliases(p) <= here]:
            preds.remove(pred)
            placed = Filter(child=placed, predicate=pred)
        return placed
    if isinstance(node, Join):
        left = _place(node.left, preds)
        right = _place(node.right, preds)
        covered = plan_aliases(left) | plan_aliases(right)
        mine = tuple(p for p in preds if predicate_aliases(p) <= covered)
        for pred in mine:
            preds.remove(pred)
        return Join(left=left, right=right, predicates=mine)
    raise AssertionError(f"unexpected node {node!r}")  # pragma: no cover


def push_down_predicates(plan: PlanNode) -> PlanNode:
    """Push every predicate to the lowest node covering its aliases.

    The transform is purely structural: the multiset of predicates and
    the join shape are unchanged, only the placement moves, so the
    estimated root cardinality is identical (the selectivity product
    re-associates).
    """
    collected: List[Comparison] = []
    stripped = _strip(plan, collected)
    placed = _place(stripped, collected)
    assert not collected, f"unplaced predicates: {collected}"
    return placed


# -- estimation and explain --------------------------------------------

def estimated_cardinality(node: PlanNode, bound: BoundQuery) -> float:
    """Estimated output rows of ``node`` under independence."""
    if isinstance(node, Scan):
        return float(bound.aliases[node.alias].cardinality)
    if isinstance(node, Filter):
        return estimated_cardinality(node.child, bound) * predicate_selectivity(
            bound, node.predicate
        )
    if isinstance(node, Project):
        return estimated_cardinality(node.child, bound)
    size = estimated_cardinality(node.left, bound) * estimated_cardinality(
        node.right, bound
    )
    for pred in node.predicates:
        size *= predicate_selectivity(bound, pred)
    return size


def explain_plan(node: PlanNode, bound: BoundQuery, indent: int = 0) -> str:
    """Human-readable indented tree with per-node row estimates."""
    pad = "  " * indent
    rows = estimated_cardinality(node, bound)
    if isinstance(node, Scan):
        shown = node.alias if node.alias == node.table else f"{node.table} AS {node.alias}"
        return f"{pad}Scan {shown}  (rows≈{rows:.6g})"
    if isinstance(node, Filter):
        return (
            f"{pad}Filter {node.predicate}  (rows≈{rows:.6g})\n"
            + explain_plan(node.child, bound, indent + 1)
        )
    if isinstance(node, Project):
        cols = ", ".join(str(p) for p in node.projections)
        return (
            f"{pad}Project [{cols}]  (rows≈{rows:.6g})\n"
            + explain_plan(node.child, bound, indent + 1)
        )
    label = " AND ".join(str(p) for p in node.predicates) or "<cross product>"
    return (
        f"{pad}Join on {label}  (rows≈{rows:.6g})\n"
        + explain_plan(node.left, bound, indent + 1)
        + "\n"
        + explain_plan(node.right, bound, indent + 1)
    )
