"""Join-graph extraction: relational algebra → ``QueryGraph``.

The bridge between the SQL layer and the existing QUBO pipeline.  From a
pushed-down plan we derive exactly the inputs
:class:`~repro.joinorder.query_graph.QueryGraph` wants:

* one relation per FROM alias whose *effective* cardinality is the base
  table size multiplied by the selectivities of its local (single-table)
  filters — System-R's standard reduction before join ordering;
* one predicate per joined alias pair whose selectivity is the product
  of all comparisons connecting the pair (clamped into ``(0, 1]``).

Queries whose predicate graph does not connect all aliases are rejected
with :class:`SqlSemanticError`: they force cross products, which the
paper's formulation (and the parser) excludes.

:func:`cost_from_plan` recomputes the C_out cost of a join order
directly from the algebra tree, bypassing ``QueryGraph`` entirely — the
differential-verification harness compares it against
:func:`repro.joinorder.cost.cout_cost` on the extracted graph
(`sql-plan-consistency`).  Its ``selectivity_scale`` knob exists purely
for bug injection: scaling join selectivities models estimator drift
between the two code paths.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.exceptions import SqlSemanticError
from repro.sql.algebra import (
    BoundQuery,
    Filter,
    PlanNode,
    Project,
    Scan,
    predicate_aliases,
    predicate_selectivity,
)
from repro.sql.ast import Comparison
from repro.sql.catalog import MIN_SELECTIVITY
from repro.joinorder.query_graph import Predicate, QueryGraph, Relation

__all__ = [
    "cost_from_plan",
    "extract_query_graph",
    "plan_predicates",
]


def _clamp_selectivity(value: float) -> float:
    return min(1.0, max(MIN_SELECTIVITY, value))


def plan_predicates(
    plan: PlanNode,
) -> Tuple[Dict[str, List[Comparison]], List[Comparison]]:
    """Split a plan's predicates into per-alias local filters and joins.

    Returns ``(local, joins)`` where ``local`` maps each alias to the
    single-table predicates applied to it anywhere in the tree and
    ``joins`` lists every multi-table predicate.
    """
    local: Dict[str, List[Comparison]] = {}
    joins: List[Comparison] = []

    def visit(node: PlanNode) -> None:
        if isinstance(node, Scan):
            local.setdefault(node.alias, [])
            return
        if isinstance(node, Project):
            visit(node.child)
            return
        if isinstance(node, Filter):
            _classify(node.predicate)
            visit(node.child)
            return
        for pred in node.predicates:
            _classify(pred)
        visit(node.left)
        visit(node.right)

    def _classify(pred: Comparison) -> None:
        aliases = predicate_aliases(pred)
        if len(aliases) <= 1:
            alias = next(iter(aliases))
            local.setdefault(alias, []).append(pred)
        else:
            joins.append(pred)

    visit(plan)
    return local, joins


def _effective_cardinalities(
    bound: BoundQuery, local: Dict[str, List[Comparison]]
) -> Dict[str, float]:
    cards: Dict[str, float] = {}
    for alias, stats in bound.aliases.items():
        card = float(stats.cardinality)
        for pred in local.get(alias, ()):
            card *= predicate_selectivity(bound, pred)
        cards[alias] = max(1.0, card)
    return cards


def _pair_selectivities(
    bound: BoundQuery,
    joins: Sequence[Comparison],
    scale: float = 1.0,
) -> Dict[FrozenSet[str], float]:
    pairs: Dict[FrozenSet[str], float] = {}
    for pred in joins:
        aliases = predicate_aliases(pred)
        if len(aliases) != 2:
            raise SqlSemanticError(
                f"predicate {pred} references {len(aliases)} tables; only "
                "binary join predicates are supported"
            )
        sel = predicate_selectivity(bound, pred) * scale
        pairs[aliases] = pairs.get(aliases, 1.0) * sel
    return {pair: _clamp_selectivity(sel) for pair, sel in pairs.items()}


def _check_connected(
    aliases: Sequence[str], pairs: Dict[FrozenSet[str], float]
) -> None:
    if not aliases:
        return
    adjacency: Dict[str, set] = {alias: set() for alias in aliases}
    for pair in pairs:
        a, b = sorted(pair)
        adjacency[a].add(b)
        adjacency[b].add(a)
    seen = {aliases[0]}
    frontier = [aliases[0]]
    while frontier:
        for neighbour in adjacency[frontier.pop()]:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    missing = [alias for alias in aliases if alias not in seen]
    if missing:
        raise SqlSemanticError(
            "query forces a cross product: no join predicate connects "
            f"{', '.join(sorted(missing))} to the rest of the FROM clause"
        )


def extract_query_graph(bound: BoundQuery, plan: PlanNode) -> QueryGraph:
    """Derive the join-ordering ``QueryGraph`` from a (pushed-down) plan.

    Relation names are the FROM aliases; cardinalities are filter-reduced
    base sizes; each joined pair gets one predicate whose selectivity is
    the product of its comparisons.
    """
    aliases = list(bound.aliases)
    if len(aliases) < 2:
        raise SqlSemanticError(
            "join optimization needs at least two tables in FROM; "
            f"got {len(aliases)}"
        )
    local, joins = plan_predicates(plan)
    pairs = _pair_selectivities(bound, joins)
    _check_connected(aliases, pairs)
    cards = _effective_cardinalities(bound, local)
    relations = tuple(
        Relation(name=alias, cardinality=cards[alias]) for alias in aliases
    )
    predicates = tuple(
        Predicate(first=min(pair), second=max(pair), selectivity=sel)
        for pair, sel in sorted(pairs.items(), key=lambda item: sorted(item[0]))
    )
    return QueryGraph(relations=relations, predicates=predicates)


def cost_from_plan(
    bound: BoundQuery,
    plan: PlanNode,
    order: Sequence[str],
    selectivity_scale: float = 1.0,
) -> float:
    """C_out cost of a left-deep ``order``, computed from the algebra tree.

    Independent re-derivation of what
    :func:`repro.joinorder.cost.cout_cost` computes on the extracted
    graph: the sum over prefixes of ``∏ effective cardinalities × ∏ pair
    selectivities within the prefix``.  ``selectivity_scale`` multiplies
    every join selectivity — ``1.0`` for the honest estimate, anything
    else simulates estimator drift for `--inject` verification runs.
    """
    aliases = set(bound.aliases)
    if sorted(order) != sorted(aliases):
        raise SqlSemanticError(
            f"{list(order)} is not a permutation of the query's aliases "
            f"{sorted(aliases)}"
        )
    local, joins = plan_predicates(plan)
    cards = _effective_cardinalities(bound, local)
    pairs = _pair_selectivities(bound, joins, scale=selectivity_scale)
    cost = 0.0
    for i in range(2, len(order) + 1):
        prefix = set(order[:i])
        size = 1.0
        for alias in order[:i]:
            size *= cards[alias]
        for pair, sel in pairs.items():
            if pair <= prefix:
                size *= sel
        cost += size
    return cost
