"""Tokenizer for the supported SQL subset.

Stdlib-only, single pass, position-tracked.  The lexer is deliberately
small: keywords, identifiers (bare or ``"quoted"``), numeric and
``'string'`` literals, comparison operators and punctuation.  Bare
identifiers fold to lower case (the SQL standard's behaviour for
unquoted names); quoted identifiers preserve case and may contain any
character, with ``""`` as the escape for an embedded quote.

Keywords the parser does not support (``GROUP``, ``UNION``, ``LEFT``,
...) are still lexed as keywords so they cannot silently become table
aliases — the parser turns them into targeted "unsupported construct"
errors instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.exceptions import SqlSyntaxError

__all__ = ["KEYWORDS", "Token", "tokenize"]

#: every word with reserved meaning, supported or not (lower case)
KEYWORDS = frozenset(
    {
        # supported
        "select", "from", "where", "and", "join", "inner", "on", "as",
        # recognised so we can reject them with a useful message
        "or", "not", "cross", "left", "right", "full", "outer", "natural",
        "union", "group", "order", "by", "having", "limit", "distinct",
        "between", "in", "like", "is", "null", "exists",
    }
)

#: multi-character operators first so ``<=`` never lexes as ``<`` ``=``
_OPERATORS: Tuple[str, ...] = ("<=", ">=", "<>", "!=", "=", "<", ">")
#: ``-`` is punctuation, not an operator: the subset has no arithmetic,
#: so it can only appear as the unary minus of a numeric literal
_PUNCTUATION = frozenset({",", ".", "(", ")", "*", ";", "-"})


@dataclass(frozen=True)
class Token:
    """One lexeme: ``kind`` is ``keyword``, ``name``, ``number``,
    ``string``, ``operator``, ``punct`` or ``end``."""

    kind: str
    value: str
    position: int

    def matches(self, kind: str, value: str = "") -> bool:
        return self.kind == kind and (not value or self.value == value)


def _error(text: str, position: int, message: str) -> SqlSyntaxError:
    snippet = text[max(0, position - 12) : position + 12].replace("\n", " ")
    return SqlSyntaxError(f"{message} at position {position} (near {snippet!r})")


def tokenize(text: str) -> List[Token]:
    """Lex ``text`` into tokens, ending with one ``end`` token."""
    if not isinstance(text, str) or not text.strip():
        raise SqlSyntaxError("empty SQL statement")
    tokens: List[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == '"':  # quoted identifier, "" escapes a quote
            j, parts = i + 1, []
            while j < n:
                if text[j] == '"':
                    if j + 1 < n and text[j + 1] == '"':
                        parts.append('"')
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            else:
                raise _error(text, i, "unterminated quoted identifier")
            if not parts:
                raise _error(text, i, "empty quoted identifier")
            tokens.append(Token("name", "".join(parts), i))
            i = j + 1
            continue
        if ch == "'":  # string literal, '' escapes a quote
            j, parts = i + 1, []
            while j < n:
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            else:
                raise _error(text, i, "unterminated string literal")
            tokens.append(Token("string", "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                seen_dot = seen_dot or text[j] == "."
                j += 1
            # ``1.5.2`` and ``12abc`` are malformed, not two tokens
            if j < n and (text[j].isalpha() or text[j] in "._"):
                raise _error(text, i, f"malformed number {text[i:j + 1]!r}")
            tokens.append(Token("number", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, i))
            else:
                tokens.append(Token("name", lowered, i))
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("operator", "<>" if op == "!=" else op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token("punct", ch, i))
            i += 1
            continue
        raise _error(text, i, f"unexpected character {ch!r}")
    tokens.append(Token("end", "", n))
    return tokens
