"""A TPC-H-like schema with realistic statistics.

:func:`tpch_catalog` builds a :class:`~repro.sql.catalog.Catalog`
mirroring TPC-H's eight tables at a configurable scale factor: the
fixed-size dimension tables (``region``, ``nation``) keep their spec
cardinalities while the scaling tables grow linearly, matching the
benchmark's row-count formulas (``lineitem`` ≈ 6M·SF and so on).
Distinct-value counts and numeric min/max bounds follow the TPC-H data
generator's value domains; dates are encoded as day offsets from
1992-01-01 (the spec's date range spans ~2557 days) so range predicates
interpolate naturally.

:data:`JOIN_EDGES` lists the foreign-key relationships; the workload
generator walks them to produce well-formed join queries.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.sql.catalog import Catalog, ColumnStats, TableStats

__all__ = ["FILTER_COLUMNS", "JOIN_EDGES", "tpch_catalog"]

#: (referencing (table, column), referenced (table, column)) FK pairs
JOIN_EDGES: Tuple[Tuple[Tuple[str, str], Tuple[str, str]], ...] = (
    (("nation", "n_regionkey"), ("region", "r_regionkey")),
    (("supplier", "s_nationkey"), ("nation", "n_nationkey")),
    (("customer", "c_nationkey"), ("nation", "n_nationkey")),
    (("partsupp", "ps_partkey"), ("part", "p_partkey")),
    (("partsupp", "ps_suppkey"), ("supplier", "s_suppkey")),
    (("orders", "o_custkey"), ("customer", "c_custkey")),
    (("lineitem", "l_orderkey"), ("orders", "o_orderkey")),
    (("lineitem", "l_partkey"), ("part", "p_partkey")),
    (("lineitem", "l_suppkey"), ("supplier", "s_suppkey")),
)

#: per-table numeric columns suitable for generated range/point filters
FILTER_COLUMNS: Dict[str, Tuple[str, ...]] = {
    "region": ("r_regionkey",),
    "nation": ("n_nationkey",),
    "supplier": ("s_acctbal",),
    "customer": ("c_acctbal", "c_mktsegment_id"),
    "part": ("p_size", "p_retailprice"),
    "partsupp": ("ps_availqty", "ps_supplycost"),
    "orders": ("o_totalprice", "o_orderdate", "o_orderpriority_id"),
    "lineitem": ("l_quantity", "l_discount", "l_shipdate", "l_extendedprice"),
}

#: TPC-H date domain as day offsets from 1992-01-01
_DATE_MIN, _DATE_MAX = 0.0, 2557.0


def _scaled(base: float, scale: float) -> float:
    return float(max(1, round(base * scale)))


def tpch_catalog(scale: float = 0.01) -> Catalog:
    """Build the TPC-H-like catalog at scale factor ``scale``.

    The default ``scale=0.01`` keeps ``lineitem`` at 60k rows — large
    enough for meaningful cost spreads, small enough for fast tests.
    """
    if not isinstance(scale, (int, float)) or not scale > 0:
        raise ConfigurationError(f"scale must be a positive number, got {scale!r}")
    suppliers = _scaled(10_000, scale)
    customers = _scaled(150_000, scale)
    parts = _scaled(200_000, scale)
    partsupps = _scaled(800_000, scale)
    orders = _scaled(1_500_000, scale)
    lineitems = _scaled(6_000_000, scale)

    def col(
        name: str,
        ndv: float,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
    ) -> ColumnStats:
        return ColumnStats(name=name, distinct_values=ndv, minimum=lo, maximum=hi)

    tables = (
        TableStats(
            name="region",
            cardinality=5,
            columns=(
                col("r_regionkey", 5, 0, 4),
                col("r_name", 5),
            ),
        ),
        TableStats(
            name="nation",
            cardinality=25,
            columns=(
                col("n_nationkey", 25, 0, 24),
                col("n_name", 25),
                col("n_regionkey", 5, 0, 4),
            ),
        ),
        TableStats(
            name="supplier",
            cardinality=suppliers,
            columns=(
                col("s_suppkey", suppliers, 1, suppliers),
                col("s_name", suppliers),
                col("s_nationkey", 25, 0, 24),
                col("s_acctbal", min(suppliers, 999_999), -999.99, 9_999.99),
            ),
        ),
        TableStats(
            name="customer",
            cardinality=customers,
            columns=(
                col("c_custkey", customers, 1, customers),
                col("c_name", customers),
                col("c_nationkey", 25, 0, 24),
                col("c_acctbal", min(customers, 999_999), -999.99, 9_999.99),
                col("c_mktsegment", 5),
                col("c_mktsegment_id", 5, 1, 5),
            ),
        ),
        TableStats(
            name="part",
            cardinality=parts,
            columns=(
                col("p_partkey", parts, 1, parts),
                col("p_name", parts),
                col("p_brand", 25),
                col("p_type", 150),
                col("p_size", 50, 1, 50),
                col("p_retailprice", min(parts, 120_000), 900.0, 2_100.0),
            ),
        ),
        TableStats(
            name="partsupp",
            cardinality=partsupps,
            columns=(
                col("ps_partkey", parts, 1, parts),
                col("ps_suppkey", suppliers, 1, suppliers),
                col("ps_availqty", 9_999, 1, 9_999),
                col("ps_supplycost", min(partsupps, 99_901), 1.0, 1_000.0),
            ),
        ),
        TableStats(
            name="orders",
            cardinality=orders,
            columns=(
                col("o_orderkey", orders, 1, 4 * orders),
                col("o_custkey", min(customers, orders), 1, customers),
                col("o_orderstatus", 3),
                col("o_totalprice", min(orders, 1_500_000), 850.0, 560_000.0),
                col("o_orderdate", min(orders, 2_406), _DATE_MIN, _DATE_MAX - 151),
                col("o_orderpriority", 5),
                col("o_orderpriority_id", 5, 1, 5),
            ),
        ),
        TableStats(
            name="lineitem",
            cardinality=lineitems,
            columns=(
                col("l_orderkey", orders, 1, 4 * orders),
                col("l_partkey", parts, 1, parts),
                col("l_suppkey", suppliers, 1, suppliers),
                col("l_quantity", 50, 1, 50),
                col("l_extendedprice", min(lineitems, 3_773_000), 900.0, 105_000.0),
                col("l_discount", 11, 0.0, 0.10),
                col("l_tax", 9, 0.0, 0.08),
                col("l_returnflag", 3),
                col("l_linestatus", 2),
                col("l_shipdate", min(lineitems, 2_526), _DATE_MIN, _DATE_MAX),
            ),
        ),
    )
    return Catalog(name=f"tpch-sf{scale:g}", tables=tables)
