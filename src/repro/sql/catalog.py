"""Table/column statistics and System-R-style selectivity estimation.

A :class:`Catalog` is an immutable bundle of :class:`TableStats`, each
holding a base cardinality plus per-column distinct-value counts and
(optionally) numeric min/max bounds.  Selectivity estimation follows the
classic System-R rules under the usual independence and uniformity
assumptions:

========================  =============================================
predicate                 estimated selectivity
========================  =============================================
``col = literal``         ``1 / ndv(col)``
``col <> literal``        ``1 - 1 / ndv(col)``
``col < v`` (bounds)      ``(v - min) / (max - min)``, interpolated
``col > v`` (bounds)      ``(max - v) / (max - min)``, interpolated
``col = col`` (join)      ``1 / max(ndv(a), ndv(b))``
``col <> col``            ``1 - 1 / max(ndv(a), ndv(b))``
anything else             ``1 / 3`` (the System-R default guess)
========================  =============================================

Every estimate is clamped into ``(0, 1]`` so downstream
:class:`~repro.joinorder.query_graph.Predicate` construction never sees
a degenerate value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.exceptions import ProblemError, SqlSemanticError

__all__ = [
    "Catalog",
    "ColumnStats",
    "DEFAULT_SELECTIVITY",
    "MIN_SELECTIVITY",
    "TableStats",
    "catalog_from_dict",
    "catalog_to_dict",
    "comparison_selectivity",
]

#: System-R's guess for predicates it cannot estimate
DEFAULT_SELECTIVITY = 1.0 / 3.0
#: floor keeping every estimate inside ``(0, 1]``
MIN_SELECTIVITY = 1e-9


def _clamp(value: float) -> float:
    return min(1.0, max(MIN_SELECTIVITY, float(value)))


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column: distinct count plus numeric bounds."""

    name: str
    distinct_values: float
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ProblemError("column name must be non-empty")
        if self.distinct_values < 1:
            raise ProblemError(
                f"column {self.name!r}: distinct_values must be >= 1, "
                f"got {self.distinct_values}"
            )
        has_min, has_max = self.minimum is not None, self.maximum is not None
        if has_min != has_max:
            raise ProblemError(
                f"column {self.name!r}: minimum and maximum must be given together"
            )
        if has_min and self.minimum > self.maximum:  # type: ignore[operator]
            raise ProblemError(
                f"column {self.name!r}: minimum {self.minimum} exceeds "
                f"maximum {self.maximum}"
            )

    @property
    def has_bounds(self) -> bool:
        return self.minimum is not None


@dataclass(frozen=True)
class TableStats:
    """Statistics for one base table."""

    name: str
    cardinality: float
    columns: Tuple[ColumnStats, ...]
    _by_name: Mapping[str, ColumnStats] = field(
        init=False, repr=False, compare=False, hash=False, default=None  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ProblemError("table name must be non-empty")
        if self.cardinality < 1:
            raise ProblemError(
                f"table {self.name!r}: cardinality must be >= 1, "
                f"got {self.cardinality}"
            )
        by_name: Dict[str, ColumnStats] = {}
        for column in self.columns:
            if column.name in by_name:
                raise ProblemError(
                    f"table {self.name!r}: duplicate column {column.name!r}"
                )
            by_name[column.name] = column
        object.__setattr__(self, "_by_name", by_name)

    def column(self, name: str) -> ColumnStats:
        try:
            return self._by_name[name]
        except KeyError:
            raise SqlSemanticError(
                f"unknown column {name!r} on table {self.name!r} "
                f"(has: {', '.join(sorted(self._by_name))})"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(self._by_name)


@dataclass(frozen=True)
class Catalog:
    """An immutable set of table statistics addressable by table name."""

    name: str
    tables: Tuple[TableStats, ...]
    _by_name: Mapping[str, TableStats] = field(
        init=False, repr=False, compare=False, hash=False, default=None  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ProblemError("catalog name must be non-empty")
        by_name: Dict[str, TableStats] = {}
        for table in self.tables:
            if table.name in by_name:
                raise ProblemError(
                    f"catalog {self.name!r}: duplicate table {table.name!r}"
                )
            by_name[table.name] = table
        object.__setattr__(self, "_by_name", by_name)

    def table(self, name: str) -> TableStats:
        try:
            return self._by_name[name]
        except KeyError:
            raise SqlSemanticError(
                f"unknown table {name!r} in catalog {self.name!r} "
                f"(has: {', '.join(sorted(self._by_name))})"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._by_name

    @property
    def table_names(self) -> Tuple[str, ...]:
        return tuple(self._by_name)


# -- selectivity rules --------------------------------------------------

def _range_fraction(stats: ColumnStats, value: float, *, below: bool) -> float:
    """Fraction of ``stats``'s value range lying below/above ``value``."""
    assert stats.minimum is not None and stats.maximum is not None
    span = stats.maximum - stats.minimum
    if span <= 0:  # single-valued column: the bound either keeps or drops it
        kept = value > stats.minimum if below else value < stats.minimum
        return 1.0 if kept else MIN_SELECTIVITY
    fraction = (value - stats.minimum) / span
    if not below:
        fraction = 1.0 - fraction
    return fraction


def comparison_selectivity(
    op: str,
    left: Optional[ColumnStats],
    right: Optional[ColumnStats],
    literal: Optional[Union[float, str]] = None,
) -> float:
    """Estimate the selectivity of ``left op right``.

    Pass column statistics for each side that is a column and the
    constant via ``literal`` when one side is a literal.  At least one
    side must be a column.
    """
    if left is None and right is None:
        raise SqlSemanticError(
            "constant-only predicates are not supported; "
            "each comparison must reference at least one column"
        )
    if left is not None and right is not None:  # join predicate
        ndv = max(left.distinct_values, right.distinct_values)
        if op == "=":
            return _clamp(1.0 / ndv)
        if op == "<>":
            return _clamp(1.0 - 1.0 / ndv)
        return _clamp(DEFAULT_SELECTIVITY)
    column = left if left is not None else right
    assert column is not None
    if op == "=":
        return _clamp(1.0 / column.distinct_values)
    if op == "<>":
        return _clamp(1.0 - 1.0 / column.distinct_values)
    if op in ("<", "<=", ">", ">="):
        if not column.has_bounds or not isinstance(literal, (int, float)):
            return _clamp(DEFAULT_SELECTIVITY)
        # ``column < v`` and the flipped ``v > column`` both arrive here
        # with the column on one side; the caller normalises direction.
        below = op in ("<", "<=")
        if right is not None:  # literal op column: flip the direction
            below = not below
        return _clamp(_range_fraction(column, float(literal), below=below))
    return _clamp(DEFAULT_SELECTIVITY)


# -- serialization ------------------------------------------------------

_FORMAT = 1


def catalog_to_dict(catalog: Catalog) -> dict:
    """Serialize a catalog to a JSON-compatible dict (sorted, versioned)."""
    return {
        "format": _FORMAT,
        "kind": "catalog",
        "name": catalog.name,
        "tables": [
            {
                "name": table.name,
                "cardinality": table.cardinality,
                "columns": [
                    {
                        "name": column.name,
                        "distinct_values": column.distinct_values,
                        "minimum": column.minimum,
                        "maximum": column.maximum,
                    }
                    for column in table.columns
                ],
            }
            for table in catalog.tables
        ],
    }


def catalog_from_dict(data: Mapping) -> Catalog:
    """Rebuild a catalog from :func:`catalog_to_dict` output."""
    if data.get("kind") != "catalog":
        raise ProblemError(f"expected kind 'catalog', got {data.get('kind')!r}")
    tables = tuple(
        TableStats(
            name=table["name"],
            cardinality=float(table["cardinality"]),
            columns=tuple(
                ColumnStats(
                    name=column["name"],
                    distinct_values=float(column["distinct_values"]),
                    minimum=column["minimum"],
                    maximum=column["maximum"],
                )
                for column in table["columns"]
            ),
        )
        for table in data["tables"]
    )
    return Catalog(name=data["name"], tables=tables)
