"""End-to-end text-to-plan pipeline and the service bridge.

:func:`plan_query` runs the whole front door in one call::

    SQL text → parse → bind against catalog → canonical algebra tree
             → predicate pushdown → join-graph extraction

yielding a :class:`SqlPlan` that carries every intermediate product —
the CLI's ``explain`` mode prints the tree, the verify harness compares
the two cost paths, and the service solves the extracted graph.

:class:`SqlQuery` is the serving payload: raw SQL plus the catalog it
binds against.  :class:`SqlAdapter` derives the join graph once and
then *is* a :class:`~repro.service.problems.JoinOrderAdapter` over it,
so the whole fallback chain, compilation cache and result cache work
unchanged.  Its fingerprint hashes the derived graph (under the
``sql`` kind), so textually different queries that induce the same
join-ordering problem share cache entries.

Importing this module registers the ``sql`` problem kind with the
service and the ``sql_query``/``catalog`` payload kinds with
:mod:`repro.serialization`; both registries also know how to lazily
import it, so JSON files and requests mentioning those kinds work
without explicit imports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.exceptions import ProblemError
from repro.joinorder.query_graph import QueryGraph
from repro.serialization import register_serializer
from repro.service.problems import JoinOrderAdapter, register_problem_kind
from repro.sql.algebra import (
    BoundQuery,
    PlanNode,
    bind,
    canonical_plan,
    estimated_cardinality,
    explain_plan,
    push_down_predicates,
)
from repro.sql.ast import SelectStatement
from repro.sql.catalog import Catalog, catalog_from_dict, catalog_to_dict
from repro.sql.extract import extract_query_graph
from repro.sql.parser import parse_statement
from repro.sql.schema import tpch_catalog

__all__ = [
    "SqlAdapter",
    "SqlPlan",
    "SqlQuery",
    "parse_sql",
    "plan_query",
    "sql_query_from_dict",
    "sql_query_to_dict",
]

_FORMAT = 1


@dataclass(frozen=True)
class SqlQuery:
    """The serving payload: SQL text plus the catalog it binds against."""

    sql: str
    catalog: Catalog

    def __post_init__(self) -> None:
        if not isinstance(self.sql, str) or not self.sql.strip():
            raise ProblemError("SqlQuery.sql must be a non-empty string")
        if not isinstance(self.catalog, Catalog):
            raise ProblemError(
                f"SqlQuery.catalog must be a Catalog, got {type(self.catalog).__name__}"
            )


@dataclass(frozen=True)
class SqlPlan:
    """Every intermediate product of the text-to-plan pipeline."""

    query: SqlQuery
    statement: SelectStatement
    bound: BoundQuery
    canonical: PlanNode
    optimized: PlanNode
    graph: QueryGraph

    @property
    def estimated_rows(self) -> float:
        """Estimated result cardinality of the (pushed-down) plan."""
        return estimated_cardinality(self.optimized, self.bound)

    def explain(self) -> str:
        """Printable pushed-down algebra tree with row estimates."""
        return explain_plan(self.optimized, self.bound)


def parse_sql(sql: str) -> SelectStatement:
    """Parse SQL text (no catalog needed); alias for the parser entry."""
    return parse_statement(sql)


def plan_query(
    query: Union[str, SqlQuery], catalog: Optional[Catalog] = None
) -> SqlPlan:
    """Run the full pipeline: text → algebra → pushdown → join graph.

    Accepts raw SQL (``catalog`` defaults to the TPC-H-like schema) or
    a :class:`SqlQuery` carrying its own catalog.
    """
    if isinstance(query, SqlQuery):
        sql_query = query
    else:
        sql_query = SqlQuery(
            sql=query, catalog=catalog if catalog is not None else tpch_catalog()
        )
    statement = parse_statement(sql_query.sql)
    bound = bind(statement, sql_query.catalog)
    canonical = canonical_plan(bound)
    optimized = push_down_predicates(canonical)
    graph = extract_query_graph(bound, optimized)
    return SqlPlan(
        query=sql_query,
        statement=statement,
        bound=bound,
        canonical=canonical,
        optimized=optimized,
        graph=graph,
    )


class SqlAdapter(JoinOrderAdapter):
    """Service adapter for raw-SQL requests.

    Planning happens once at construction; afterwards this behaves
    exactly like a join-order adapter over the derived graph, so every
    stage of the fallback chain and both service caches apply.  The
    fingerprint hashes the *derived graph* under the ``sql`` kind:
    equivalent queries (whitespace, aliasing, predicate order) map to
    the same cache entries.
    """

    kind = "sql"

    def __init__(self, query: SqlQuery) -> None:
        self.query = query
        self.plan = plan_query(query)
        super().__init__(self.plan.graph)


# ----------------------------------------------------------------------
# serialization (payload kinds ``sql_query`` and ``catalog``)
# ----------------------------------------------------------------------
def sql_query_to_dict(query: SqlQuery) -> Dict[str, Any]:
    """SqlQuery → plain dictionary (versioned, catalog embedded)."""
    return {
        "format": _FORMAT,
        "kind": "sql_query",
        "sql": query.sql,
        "catalog": catalog_to_dict(query.catalog),
    }


def sql_query_from_dict(data: Dict[str, Any]) -> SqlQuery:
    """Dictionary → SqlQuery (validates on construction)."""
    if data.get("kind") != "sql_query":
        raise ProblemError(f"expected kind 'sql_query', got {data.get('kind')!r}")
    if data.get("format") != _FORMAT:
        raise ProblemError(f"unsupported format version {data.get('format')!r}")
    return SqlQuery(
        sql=str(data["sql"]), catalog=catalog_from_dict(data["catalog"])
    )


register_serializer(SqlQuery, "sql_query", sql_query_to_dict, sql_query_from_dict)
register_serializer(Catalog, "catalog", catalog_to_dict, catalog_from_dict)

register_problem_kind(
    kind="sql",
    payload_cls=SqlQuery,
    to_dict=sql_query_to_dict,
    from_dict=sql_query_from_dict,
    adapter=SqlAdapter,
)
