"""Deterministic, seeded TPC-H-style query generation.

:func:`generate_query` walks the schema's foreign-key graph from a
random starting table, joining one FK edge at a time, so every
generated query has a connected join graph by construction — exactly
the class of inputs the join-ordering pipeline accepts.  Local filters
are drawn on the numeric columns the schema marks filterable, with
literals sampled inside the column's value bounds so range selectivity
interpolation stays meaningful.

Everything is driven by :class:`random.Random` seeded with plain
integers, so a ``(seed, parameters)`` pair produces byte-identical SQL
text in every process — the property the service's content-hash caches
and the experiment harness rely on.

:func:`workload_to_mqo` bridges generated queries into the paper's
*multi* query optimization setting: each query contributes a handful of
candidate left-deep plans (costed with C_out), and plans of different
queries that join the same base-table set share work, modelled as a
pairwise saving proportional to the cheaper plan's shared intermediate
result.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.joinorder.classical import solve_greedy
from repro.joinorder.cost import cout_cost, join_result_cardinality
from repro.mqo.problem import MqoProblem, Plan, Saving
from repro.sql.catalog import Catalog
from repro.sql.schema import FILTER_COLUMNS, JOIN_EDGES, tpch_catalog

__all__ = ["generate_query", "generate_workload", "workload_to_mqo"]

#: probability a generated table reference gets a short alias
_ALIAS_PROBABILITY = 0.5
#: probability of projecting ``*`` instead of named columns
_STAR_PROBABILITY = 0.3

_FILTER_OPS = ("<=", ">=", "=")


def _check_count(name: str, value: int, minimum: int) -> None:
    if not isinstance(value, int) or value < minimum:
        raise ConfigurationError(f"{name} must be an integer >= {minimum}, got {value!r}")


def generate_query(
    seed: int = 0,
    catalog: Optional[Catalog] = None,
    min_tables: int = 2,
    max_tables: int = 6,
    filter_probability: float = 0.6,
) -> str:
    """Generate one SQL query string by walking the FK graph.

    Deterministic in ``seed`` and the parameters; the same call yields
    the same text in any process.
    """
    _check_count("min_tables", min_tables, 2)
    _check_count("max_tables", max_tables, min_tables)
    if catalog is None:
        catalog = tpch_catalog()
    rng = random.Random(seed)
    target = rng.randint(min_tables, max_tables)

    # FK walk: add one edge at a time, never repeating a table
    start = rng.choice(sorted(FILTER_COLUMNS))
    chosen: List[str] = [start]
    joins: List[Tuple[Tuple[str, str], Tuple[str, str]]] = []
    while len(chosen) < target:
        frontier = [
            (a, b)
            for a, b in JOIN_EDGES
            if (a[0] in chosen) != (b[0] in chosen)
        ]
        if not frontier:
            break
        a, b = rng.choice(frontier)
        inside, outside = (a, b) if a[0] in chosen else (b, a)
        chosen.append(outside[0])
        joins.append((inside, outside))

    aliases: Dict[str, str] = {}
    for index, table in enumerate(chosen):
        if rng.random() < _ALIAS_PROBABILITY:
            aliases[table] = f"{table[0]}{index}"
        else:
            aliases[table] = table

    # local filters on the schema's filterable numeric columns
    filters: List[str] = []
    for table in chosen:
        if rng.random() >= filter_probability:
            continue
        column = rng.choice(FILTER_COLUMNS[table])
        stats = catalog.table(table).column(column)
        op = rng.choice(_FILTER_OPS)
        if stats.has_bounds:
            value = rng.uniform(stats.minimum, stats.maximum)  # type: ignore[arg-type]
            literal = f"{round(value, 2):g}"
        else:  # pragma: no cover - every filter column has bounds
            literal = "0"
        filters.append(f"{aliases[table]}.{column} {op} {literal}")

    # projections: * or a few named columns from the chosen tables
    if rng.random() < _STAR_PROBABILITY:
        select_list = "*"
    else:
        count = rng.randint(1, 3)
        columns = []
        for _ in range(count):
            table = rng.choice(chosen)
            column = rng.choice(catalog.table(table).column_names)
            columns.append(f"{aliases[table]}.{column}")
        select_list = ", ".join(dict.fromkeys(columns))

    def table_ref(table: str) -> str:
        alias = aliases[table]
        return table if alias == table else f"{table} AS {alias}"

    text = f"SELECT {select_list} FROM {table_ref(chosen[0])}"
    for inside, outside in joins:
        on = (
            f"{aliases[inside[0]]}.{inside[1]} = "
            f"{aliases[outside[0]]}.{outside[1]}"
        )
        text += f" JOIN {table_ref(outside[0])} ON {on}"
    if filters:
        text += " WHERE " + " AND ".join(filters)
    return text


def generate_workload(
    count: int,
    seed: int = 0,
    catalog: Optional[Catalog] = None,
    min_tables: int = 2,
    max_tables: int = 6,
    filter_probability: float = 0.6,
) -> List[str]:
    """Generate ``count`` queries with per-query seeds derived from ``seed``."""
    _check_count("count", count, 1)
    rng = random.Random(seed)
    return [
        generate_query(
            seed=rng.randrange(2**31),
            catalog=catalog,
            min_tables=min_tables,
            max_tables=max_tables,
            filter_probability=filter_probability,
        )
        for _ in range(count)
    ]


def _candidate_orders(
    graph, rng: random.Random, plans_per_query: int
) -> List[Tuple[str, ...]]:
    """Distinct candidate join orders: greedy first, then shuffles."""
    orders: List[Tuple[str, ...]] = [tuple(solve_greedy(graph).order)]
    names = list(graph.relation_names)
    attempts = 0
    while len(orders) < plans_per_query and attempts < 20 * plans_per_query:
        attempts += 1
        rng.shuffle(names)
        candidate = tuple(names)
        if candidate not in orders:
            orders.append(candidate)
    return orders


def workload_to_mqo(
    queries: Sequence[str],
    catalog: Optional[Catalog] = None,
    plans_per_query: int = 3,
    seed: int = 0,
    sharing_factor: float = 0.5,
) -> MqoProblem:
    """Turn SQL queries into one MQO instance with cross-query savings.

    Each query contributes up to ``plans_per_query`` candidate left-deep
    plans costed with C_out on its extracted join graph.  Two plans of
    *different* queries share a saving when they join the same set of
    base tables anywhere in their prefix chains — the saving is
    ``sharing_factor`` times the smaller shared intermediate result, the
    usual "materialize once, reuse" model.
    """
    from repro.sql.pipeline import plan_query  # local: avoids import cycle

    _check_count("plans_per_query", plans_per_query, 1)
    if catalog is None:
        catalog = tpch_catalog()
    rng = random.Random(seed)
    plans: List[Plan] = []
    # plan_id → {frozenset of base tables: intermediate cardinality}
    signatures: Dict[int, Dict[FrozenSet[str], float]] = {}
    plan_query_ids: Dict[int, int] = {}
    next_plan_id = 0
    for query_id, sql in enumerate(queries):
        derived = plan_query(sql, catalog)
        graph = derived.graph
        alias_table = {
            alias: stats.name for alias, stats in derived.bound.aliases.items()
        }
        for order in _candidate_orders(graph, rng, plans_per_query):
            cost = cout_cost(graph, order)
            plans.append(Plan(plan_id=next_plan_id, query_id=query_id, cost=cost))
            sig: Dict[FrozenSet[str], float] = {}
            for size in range(2, len(order) + 1):
                prefix = order[:size]
                tables = frozenset(alias_table[alias] for alias in prefix)
                card = join_result_cardinality(graph, prefix)
                previous = sig.get(tables)
                if previous is None or card < previous:
                    sig[tables] = card
            signatures[next_plan_id] = sig
            plan_query_ids[next_plan_id] = query_id
            next_plan_id += 1

    savings: List[Saving] = []
    ids = [p.plan_id for p in plans]
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            if plan_query_ids[a] == plan_query_ids[b]:
                continue
            shared = set(signatures[a]) & set(signatures[b])
            amount = sum(
                sharing_factor * min(signatures[a][sig], signatures[b][sig])
                for sig in shared
            )
            if amount > 0:
                savings.append(Saving(plan_a=a, plan_b=b, amount=amount))
    return MqoProblem(plans=tuple(plans), savings=tuple(savings))
