"""Qubit-indexed Ising Hamiltonians.

Bridges the modelling layer (named-variable
:class:`~repro.qubo.bqm.BinaryQuadraticModel`) and the quantum layer
(qubit-indexed circuits): variables are assigned qubit indices in
insertion order, and the Hamiltonian

.. math:: H = \\sum_i h_i Z_i + \\sum_{i<j} J_{ij} Z_i Z_j + c

is kept in coefficient form.  Because :math:`H` is diagonal in the
computational basis, its full diagonal can be materialised for exact
expectation values (the quantity VQE/QAOA minimise, Eqs. 15/21).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.gate.statevector import ising_diagonal
from repro.qubo.bqm import BinaryQuadraticModel, Vartype


@dataclass(frozen=True)
class IsingHamiltonian:
    """An Ising Hamiltonian over qubits ``0..num_qubits-1``.

    Spin convention: qubit bit 0 ↔ spin +1, bit 1 ↔ spin −1 (i.e.
    :math:`Z|0\\rangle = +|0\\rangle`).
    """

    num_qubits: int
    linear: Dict[int, float]
    quadratic: Dict[Tuple[int, int], float]
    offset: float = 0.0
    #: original model variable of each qubit (index-aligned)
    variable_order: Tuple[Hashable, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for i in self.linear:
            if not 0 <= i < self.num_qubits:
                raise ModelError(f"linear index {i} out of range")
        for i, j in self.quadratic:
            if not (0 <= i < self.num_qubits and 0 <= j < self.num_qubits) or i == j:
                raise ModelError(f"bad quadratic index pair ({i}, {j})")

    @classmethod
    def from_bqm(cls, bqm: BinaryQuadraticModel) -> "IsingHamiltonian":
        """Convert a (binary or spin) BQM into a qubit Hamiltonian.

        Binary models are first mapped to their Ising equivalent; the
        ground state of the Hamiltonian then encodes the QUBO optimum
        (paper Sec. 3.3).
        """
        h, j, offset = bqm.to_ising()
        order = tuple(bqm.variables)
        index = {v: i for i, v in enumerate(order)}
        linear = {index[v]: bias for v, bias in h.items() if bias}
        quadratic = {}
        for (u, v), bias in j.items():
            if bias:
                a, b = sorted((index[u], index[v]))
                quadratic[(a, b)] = quadratic.get((a, b), 0.0) + bias
        return cls(
            num_qubits=len(order),
            linear=linear,
            quadratic=quadratic,
            offset=offset,
            variable_order=order,
        )

    @property
    def num_terms(self) -> int:
        """Total Pauli terms (linear + quadratic)."""
        return len(self.linear) + len(self.quadratic)

    @property
    def num_quadratic_terms(self) -> int:
        """ZZ interaction count — the QAOA depth driver (Sec. 6.3.3)."""
        return len(self.quadratic)

    def diagonal(self) -> np.ndarray:
        """The :math:`2^n` diagonal of the Hamiltonian."""
        return ising_diagonal(self.num_qubits, self.linear, self.quadratic, self.offset)

    def energy_of_bits(self, bits: Mapping[int, int]) -> float:
        """Energy of one computational basis state given bit values."""
        spins = {q: 1.0 - 2.0 * bits[q] for q in range(self.num_qubits)}
        total = self.offset
        for i, h in self.linear.items():
            total += h * spins[i]
        for (i, j), coupling in self.quadratic.items():
            total += coupling * spins[i] * spins[j]
        return total

    def bits_to_sample(self, bits: Mapping[int, int], vartype: Vartype) -> Dict[Hashable, int]:
        """Map qubit bit values back to named model variables.

        The spin convention is physical — bit 0 ↔ spin +1 (since
        :math:`Z|0\\rangle = +|0\\rangle`) — and the binary↔spin duality
        maps spin +1 ↔ binary 1, so a measured bit ``b`` decodes to the
        binary value ``1 - b``.
        """
        if not self.variable_order:
            raise ModelError("Hamiltonian has no variable order recorded")
        sample: Dict[Hashable, int] = {}
        for q, name in enumerate(self.variable_order):
            bit = int(bits[q])
            if vartype is Vartype.BINARY:
                sample[name] = 1 - bit
            else:
                sample[name] = -1 if bit else 1
        return sample

    def ground_state(self) -> Tuple[int, float]:
        """Exact ground state ``(basis index, energy)`` by enumeration."""
        diag = self.diagonal()
        idx = int(np.argmin(diag))
        return idx, float(diag[idx])
