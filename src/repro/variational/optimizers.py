"""Classical outer-loop optimizers for the variational algorithms.

The hybrid loop (paper Fig. 3) alternates quantum expectation
estimation with classical parameter updates.  Three optimizers are
provided:

* :class:`Cobyla` — the Qiskit default for noiseless simulation, via
  ``scipy.optimize.minimize``;
* :class:`Spsa` — simultaneous-perturbation stochastic approximation,
  the standard choice under shot noise (two evaluations per iteration
  regardless of dimension);
* :class:`NelderMead` — a derivative-free simplex baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np
from scipy import optimize as scipy_optimize

from repro.exceptions import SolverError

Objective = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class OptimizerResult:
    """Outcome of a classical minimization."""

    x: np.ndarray
    fun: float
    nfev: int
    nit: int = 0


class Optimizer:
    """Interface: minimize a black-box objective from a start point."""

    def minimize(self, objective: Objective, x0: Sequence[float]) -> OptimizerResult:
        raise NotImplementedError


class Cobyla(Optimizer):
    """Constrained optimization by linear approximation (scipy)."""

    def __init__(self, maxiter: int = 200, rhobeg: float = 1.0, tol: float = 1e-4) -> None:
        self.maxiter = maxiter
        self.rhobeg = rhobeg
        self.tol = tol

    def minimize(self, objective: Objective, x0: Sequence[float]) -> OptimizerResult:
        res = scipy_optimize.minimize(
            objective,
            np.asarray(x0, dtype=float),
            method="COBYLA",
            options={"maxiter": self.maxiter, "rhobeg": self.rhobeg, "tol": self.tol},
        )
        return OptimizerResult(
            x=np.asarray(res.x, dtype=float),
            fun=float(res.fun),
            nfev=int(res.nfev),
            nit=int(getattr(res, "nit", 0) or 0),
        )


class NelderMead(Optimizer):
    """Downhill simplex (scipy)."""

    def __init__(self, maxiter: int = 400, tol: float = 1e-6) -> None:
        self.maxiter = maxiter
        self.tol = tol

    def minimize(self, objective: Objective, x0: Sequence[float]) -> OptimizerResult:
        res = scipy_optimize.minimize(
            objective,
            np.asarray(x0, dtype=float),
            method="Nelder-Mead",
            options={"maxiter": self.maxiter, "fatol": self.tol},
        )
        return OptimizerResult(
            x=np.asarray(res.x, dtype=float),
            fun=float(res.fun),
            nfev=int(res.nfev),
            nit=int(res.nit),
        )


class Spsa(Optimizer):
    """Simultaneous perturbation stochastic approximation.

    Standard first-order SPSA with the canonical gain sequences
    ``a_k = a / (k + 1 + A)^alpha`` and ``c_k = c / (k + 1)^gamma``
    (Spall 1998).  Robust to the stochastic objectives produced by
    finite-shot expectation estimation.
    """

    def __init__(
        self,
        maxiter: int = 150,
        a: float = 0.2,
        c: float = 0.1,
        alpha: float = 0.602,
        gamma: float = 0.101,
        stability: float = 10.0,
        seed: Optional[int] = None,
    ) -> None:
        if maxiter < 1:
            raise SolverError("SPSA needs at least one iteration")
        self.maxiter = maxiter
        self.a = a
        self.c = c
        self.alpha = alpha
        self.gamma = gamma
        self.stability = stability
        self.seed = seed

    def minimize(self, objective: Objective, x0: Sequence[float]) -> OptimizerResult:
        rng = np.random.default_rng(self.seed)
        x = np.asarray(x0, dtype=float).copy()
        best_x, best_f = x.copy(), objective(x)
        nfev = 1
        for k in range(self.maxiter):
            ak = self.a / (k + 1 + self.stability) ** self.alpha
            ck = self.c / (k + 1) ** self.gamma
            delta = rng.choice((-1.0, 1.0), size=x.shape)
            x_plus, x_minus = x + ck * delta, x - ck * delta
            f_plus, f_minus = objective(x_plus), objective(x_minus)
            nfev += 2
            gradient = (f_plus - f_minus) / (2.0 * ck) * delta
            x = x - ak * gradient
            if f_plus < best_f:
                best_f, best_x = f_plus, x_plus.copy()
            if f_minus < best_f:
                best_f, best_x = f_minus, x_minus.copy()
        final = objective(x)
        nfev += 1
        if final < best_f:
            best_f, best_x = final, x
        return OptimizerResult(x=best_x, fun=float(best_f), nfev=nfev, nit=self.maxiter)
