"""Variational hybrid quantum-classical algorithms (paper Sec. 3.4).

Provides the two algorithms the paper evaluates — :class:`VQE` and
:class:`QAOA` — together with their ansatz builders, classical
optimizers, and the :class:`MinimumEigenOptimizer` front end that turns
a QUBO into an Ising Hamiltonian, runs an eigensolver and decodes the
best measured bitstring (the Qiskit-optimization workflow of
Sec. 5.2.2).
"""

from repro.variational.hamiltonian import IsingHamiltonian
from repro.variational.ansatz import qaoa_ansatz, real_amplitudes
from repro.variational.optimizers import (
    Cobyla,
    NelderMead,
    OptimizerResult,
    Spsa,
)
from repro.variational.vqe import VQE, VariationalResult
from repro.variational.qaoa import QAOA
from repro.variational.minimum_eigen import (
    MinimumEigenOptimizer,
    NumPyMinimumEigensolver,
    OptimizationResult,
)

__all__ = [
    "IsingHamiltonian",
    "qaoa_ansatz",
    "real_amplitudes",
    "Cobyla",
    "NelderMead",
    "OptimizerResult",
    "Spsa",
    "VQE",
    "QAOA",
    "VariationalResult",
    "MinimumEigenOptimizer",
    "NumPyMinimumEigensolver",
    "OptimizationResult",
]
