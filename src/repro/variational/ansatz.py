"""Ansatz circuit builders for the variational algorithms.

Two state-preparation families (paper Sec. 3.4):

* :func:`real_amplitudes` — the hardware-efficient RY + CNOT ansatz the
  Qiskit VQE uses by default.  Its depth grows linearly with the qubit
  count and is *independent of the problem Hamiltonian* — the property
  behind the VQE curves in Figures 9 and 13.  With ``entanglement="full"``
  every qubit pair is entangled each repetition, which is what makes the
  transpiled VQE depth explode on sparse topologies (≈900 % overhead in
  the paper's Mumbai measurements).
* :func:`qaoa_ansatz` — alternating problem/mixer unitaries (Eq. 20).
  The problem unitary applies one ZZ rotation per quadratic Ising term,
  so its depth grows with the QUBO matrix density (Secs. 5.3.2, 6.3.3).
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

from repro.exceptions import CircuitError
from repro.gate.circuit import QuantumCircuit
from repro.gate.parameter import Parameter
from repro.variational.hamiltonian import IsingHamiltonian


def real_amplitudes(
    num_qubits: int,
    reps: int = 2,
    entanglement: str = "full",
) -> Tuple[QuantumCircuit, List[Parameter]]:
    """The RealAmplitudes hardware-efficient ansatz.

    Structure: ``reps + 1`` layers of per-qubit RY rotations with an
    entanglement block of CNOTs between consecutive layers.

    Parameters
    ----------
    num_qubits:
        Register width.
    reps:
        Number of entanglement blocks (default 2, giving 3 RY layers).
    entanglement:
        ``"full"`` — CX between every qubit pair per block (Qiskit's
        default, used by the paper's VQE); ``"linear"`` — CX along a
        chain (cheaper ablation variant).

    Returns
    -------
    (circuit, parameters):
        The parameterized circuit and its ``(reps+1)*num_qubits`` RY
        angles in application order.
    """
    if num_qubits < 1:
        raise CircuitError("ansatz needs at least one qubit")
    if entanglement not in ("full", "linear"):
        raise CircuitError(f"unknown entanglement {entanglement!r}")
    circuit = QuantumCircuit(num_qubits, name=f"RealAmplitudes({entanglement})")
    parameters: List[Parameter] = []

    def rotation_layer(layer: int) -> None:
        for q in range(num_qubits):
            theta = Parameter(f"theta[{layer * num_qubits + q:03d}]")
            parameters.append(theta)
            circuit.ry(theta, q)

    rotation_layer(0)
    for rep in range(reps):
        if entanglement == "full":
            for a, b in itertools.combinations(range(num_qubits), 2):
                circuit.cx(a, b)
        else:
            for q in range(num_qubits - 1):
                circuit.cx(q, q + 1)
        rotation_layer(rep + 1)
    return circuit, parameters


def qaoa_ansatz(
    hamiltonian: IsingHamiltonian,
    reps: int = 1,
) -> Tuple[QuantumCircuit, List[Parameter]]:
    """The QAOA state-preparation circuit (Eq. 20).

    For each repetition ``p`` the circuit applies the problem unitary
    :math:`U(C, \\gamma_p) = e^{-i\\gamma_p C}` — one ``rz(2γh_i)`` per
    linear term and one ``rzz(2γJ_{ij})`` per quadratic term — followed
    by the mixer :math:`U(B, \\beta_p)` of per-qubit ``rx(2β)`` gates
    (Eqs. 16–18).  The initial state is the uniform superposition
    prepared by a Hadamard layer (Eq. 19).

    Returns the circuit and its parameters ordered
    ``[γ_1, β_1, γ_2, β_2, ...]``.
    """
    n = hamiltonian.num_qubits
    if n < 1:
        raise CircuitError("Hamiltonian must act on at least one qubit")
    if reps < 1:
        raise CircuitError("QAOA needs at least one repetition")
    circuit = QuantumCircuit(n, name=f"QAOA(p={reps})")
    parameters: List[Parameter] = []

    for q in range(n):
        circuit.h(q)

    quadratic = sorted(hamiltonian.quadratic.items())
    linear = sorted(hamiltonian.linear.items())
    for p in range(reps):
        gamma = Parameter(f"gamma[{p}]")
        beta = Parameter(f"beta[{p}]")
        parameters.extend((gamma, beta))
        for (i, j), coupling in quadratic:
            circuit.rzz(gamma * (2.0 * coupling), i, j)
        for i, bias in linear:
            circuit.rz(gamma * (2.0 * bias), i)
        for q in range(n):
            circuit.rx(beta * 2.0, q)
    return circuit, parameters
