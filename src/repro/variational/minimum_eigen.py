"""QUBO front end for the eigensolvers (Qiskit-optimization analogue).

The paper's workflow (Sec. 5.2.2) wraps VQE/QAOA in a
``MinimumEigenOptimizer``: the quadratic program is converted to a QUBO
/ Ising Hamiltonian, the eigensolver is run, and the best measured
bitstring is decoded back into named model variables.  The
:class:`NumPyMinimumEigensolver` is the exact classical reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.exceptions import SolverError
from repro.gate.circuit import QuantumCircuit
from repro.qubo.bqm import BinaryQuadraticModel, Vartype
from repro.variational.hamiltonian import IsingHamiltonian
from repro.variational.vqe import VariationalResult


@dataclass
class OptimizationResult:
    """Decoded solution of a QUBO optimization."""

    sample: Dict[Hashable, int]
    fval: float
    #: the eigensolver's raw result when a variational solver was used
    variational: Optional[VariationalResult] = None
    #: the transpile-ready circuit prepared by the solver, if any
    optimal_circuit: Optional[QuantumCircuit] = None
    #: additional (sample, energy) candidates, best first
    candidates: List[Tuple[Dict[Hashable, int], float]] = field(default_factory=list)


class NumPyMinimumEigensolver:
    """Exact diagonal minimization (classical reference solver)."""

    def compute_minimum_eigenvalue(self, hamiltonian: IsingHamiltonian) -> VariationalResult:
        index, energy = hamiltonian.ground_state()
        bits = {
            q: (index >> q) & 1 for q in range(hamiltonian.num_qubits)
        }
        return VariationalResult(
            eigenvalue=energy,
            optimal_parameters=np.array([]),
            optimal_circuit=QuantumCircuit(hamiltonian.num_qubits, "exact"),
            counts={},
            best_bits=bits,
            best_energy=energy,
        )


class MinimumEigenOptimizer:
    """Solve a binary quadratic model with a minimum-eigensolver.

    Parameters
    ----------
    solver:
        Any object with ``compute_minimum_eigenvalue(IsingHamiltonian)``
        returning a :class:`VariationalResult` — :class:`~repro.variational.vqe.VQE`,
        :class:`~repro.variational.qaoa.QAOA` or
        :class:`NumPyMinimumEigensolver`.
    max_qubits:
        Refuse models needing more qubits than this (default 32, the
        qasm-simulator limit the paper runs into in Sec. 6.3.4).
    """

    def __init__(self, solver, max_qubits: int = 32) -> None:
        self.solver = solver
        self.max_qubits = max_qubits

    def solve(self, bqm: BinaryQuadraticModel) -> OptimizationResult:
        """Minimize the model and decode the best measured sample."""
        if bqm.num_variables == 0:
            return OptimizationResult(sample={}, fval=bqm.offset)
        if bqm.num_variables > self.max_qubits:
            raise SolverError(
                f"model needs {bqm.num_variables} qubits, "
                f"limit is {self.max_qubits}"
            )
        hamiltonian = IsingHamiltonian.from_bqm(bqm)
        result = self.solver.compute_minimum_eigenvalue(hamiltonian)
        if result.best_bits is None:
            raise SolverError("eigensolver returned no measured state")

        binary = bqm.change_vartype(Vartype.BINARY)
        sample = hamiltonian.bits_to_sample(result.best_bits, Vartype.BINARY)
        fval = binary.energy(sample)
        if bqm.vartype is Vartype.SPIN:
            sample = hamiltonian.bits_to_sample(result.best_bits, Vartype.SPIN)

        candidates = _decode_candidates(hamiltonian, bqm, result)
        return OptimizationResult(
            sample=sample,
            fval=fval,
            variational=result,
            optimal_circuit=result.optimal_circuit,
            candidates=candidates,
        )


def _decode_candidates(
    hamiltonian: IsingHamiltonian,
    bqm: BinaryQuadraticModel,
    result: VariationalResult,
    limit: int = 16,
) -> List[Tuple[Dict[Hashable, int], float]]:
    """Decode the sampled bitstrings into (sample, energy) pairs."""
    binary = bqm.change_vartype(Vartype.BINARY)
    scored = []
    for bitstring in result.counts:
        bits = {
            q: int(bitstring[len(bitstring) - 1 - q]) for q in range(len(bitstring))
        }
        sample = hamiltonian.bits_to_sample(bits, Vartype.BINARY)
        scored.append((sample, binary.energy(sample)))
    scored.sort(key=lambda item: item[1])
    if bqm.vartype is Vartype.SPIN:
        converted = []
        for sample, energy in scored[:limit]:
            spin_sample = {name: 2 * value - 1 for name, value in sample.items()}
            converted.append((spin_sample, energy))
        return converted
    return scored[:limit]
