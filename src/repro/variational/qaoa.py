"""The quantum approximate optimization algorithm (paper Sec. 3.4.2).

QAOA prepares :math:`|\\gamma,\\beta\\rangle = U(B,\\beta_p) U(C,\\gamma_p)
\\cdots U(B,\\beta_1) U(C,\\gamma_1) |s\\rangle` (Eq. 20) and tunes the
``2p`` angles so the expectation :math:`F_p(\\gamma,\\beta)` (Eq. 21) is
minimised.  Unlike VQE, the *problem Hamiltonian shapes the circuit*:
one two-qubit ZZ rotation per quadratic term, which is why dense QUBO
matrices inflate the QAOA depth (Secs. 5.3.2, 6.3.3).

Following the paper's setup (Sec. 5.2.2), the default repetition count
is ``p = 1`` and the initial point is all zeros.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.gate.circuit import QuantumCircuit
from repro.variational.ansatz import qaoa_ansatz
from repro.variational.hamiltonian import IsingHamiltonian
from repro.variational.optimizers import Cobyla, Optimizer
from repro.variational.vqe import VariationalResult, _run_variational


class QAOA:
    """Quantum approximate optimization algorithm."""

    def __init__(
        self,
        optimizer: Optional[Optimizer] = None,
        reps: int = 1,
        shots: Optional[int] = None,
        seed: Optional[int] = None,
        initial_point: Optional[np.ndarray] = None,
    ) -> None:
        self.optimizer = optimizer or Cobyla()
        self.reps = reps
        self.shots = shots
        self.seed = seed
        self.initial_point = initial_point

    def construct_circuit(self, hamiltonian: IsingHamiltonian) -> Tuple[QuantumCircuit, List]:
        """The (parameterized) QAOA ansatz for this Hamiltonian."""
        return qaoa_ansatz(hamiltonian, reps=self.reps)

    def compute_minimum_eigenvalue(self, hamiltonian: IsingHamiltonian) -> VariationalResult:
        """Run the hybrid loop and return the best state found."""
        circuit, parameters = self.construct_circuit(hamiltonian)
        if self.initial_point is not None:
            initial = np.asarray(self.initial_point, dtype=float)
        else:
            # paper Sec. 5.2.2: QAOA initialised with zeros
            initial = np.zeros(len(parameters))
        return _run_variational(
            circuit,
            parameters,
            hamiltonian,
            optimizer=self.optimizer,
            shots=self.shots,
            seed=self.seed,
            initial_point=initial,
        )
