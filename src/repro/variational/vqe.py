"""The variational quantum eigensolver (paper Sec. 3.4.1).

VQE minimises the expectation :math:`\\langle\\psi(\\theta)|H|\\psi(\\theta)\\rangle`
over the parameters of a fixed ansatz; by the variational principle
(Eq. 15) this upper-bounds the smallest eigenvalue of :math:`H`, which
encodes the optimization problem's optimum.

Expectation values are computed on the statevector simulator — exactly
when ``shots is None`` (ideal sampling limit), or from a finite-shot
measurement histogram otherwise (reproducing the repeated-sampling
estimation of Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gate.circuit import QuantumCircuit
from repro.gate.statevector import Statevector
from repro.variational.ansatz import real_amplitudes
from repro.variational.hamiltonian import IsingHamiltonian
from repro.variational.optimizers import Cobyla, Optimizer, OptimizerResult


@dataclass
class VariationalResult:
    """Outcome of a VQE/QAOA run."""

    eigenvalue: float
    optimal_parameters: np.ndarray
    optimal_circuit: QuantumCircuit
    #: measurement histogram of the optimal state (bitstring -> count)
    counts: Dict[str, int] = field(default_factory=dict)
    #: best basis state found: (bits per qubit, its energy)
    best_bits: Optional[Dict[int, int]] = None
    best_energy: float = float("nan")
    optimizer_result: Optional[OptimizerResult] = None
    #: expectation value per optimizer evaluation (convergence trace)
    history: List[float] = field(default_factory=list)


class VQE:
    """Variational quantum eigensolver over a RealAmplitudes ansatz."""

    def __init__(
        self,
        optimizer: Optional[Optimizer] = None,
        reps: int = 2,
        entanglement: str = "full",
        shots: Optional[int] = None,
        seed: Optional[int] = None,
        initial_point: Optional[np.ndarray] = None,
    ) -> None:
        self.optimizer = optimizer or Cobyla()
        self.reps = reps
        self.entanglement = entanglement
        self.shots = shots
        self.seed = seed
        self.initial_point = initial_point

    # ------------------------------------------------------------------
    def construct_circuit(self, hamiltonian: IsingHamiltonian) -> Tuple[QuantumCircuit, list]:
        """The (parameterized) ansatz used for this Hamiltonian."""
        return real_amplitudes(
            hamiltonian.num_qubits, reps=self.reps, entanglement=self.entanglement
        )

    def compute_minimum_eigenvalue(self, hamiltonian: IsingHamiltonian) -> VariationalResult:
        """Run the hybrid loop and return the best state found."""
        circuit, parameters = self.construct_circuit(hamiltonian)
        return _run_variational(
            circuit,
            parameters,
            hamiltonian,
            optimizer=self.optimizer,
            shots=self.shots,
            seed=self.seed,
            initial_point=self._initial_point(len(parameters)),
        )

    def _initial_point(self, dim: int) -> np.ndarray:
        if self.initial_point is not None:
            return np.asarray(self.initial_point, dtype=float)
        rng = np.random.default_rng(self.seed)
        return rng.uniform(-np.pi, np.pi, size=dim)


def _run_variational(
    circuit: QuantumCircuit,
    parameters: list,
    hamiltonian: IsingHamiltonian,
    optimizer: Optimizer,
    shots: Optional[int],
    seed: Optional[int],
    initial_point: np.ndarray,
) -> VariationalResult:
    """Shared hybrid loop for VQE and QAOA."""
    diagonal = hamiltonian.diagonal()
    rng = np.random.default_rng(seed)
    history: List[float] = []

    def expectation(values: np.ndarray) -> float:
        bound = circuit.bind_parameters(dict(zip(parameters, values)))
        state = Statevector.from_circuit(bound)
        if shots is None:
            value = state.expectation_diagonal(diagonal)
        else:
            probs = state.probabilities()
            probs = probs / probs.sum()
            outcomes = rng.choice(len(probs), size=shots, p=probs)
            value = float(np.mean(diagonal[outcomes]))
        history.append(value)
        return value

    opt_result = optimizer.minimize(expectation, initial_point)
    optimal = circuit.bind_parameters(dict(zip(parameters, opt_result.x)))
    state = Statevector.from_circuit(optimal)

    counts = state.sample(shots or 1024, rng)
    n = circuit.num_qubits
    if shots is None:
        # statevector mode: consider every basis state the optimal
        # state assigns non-negligible probability (the Qiskit
        # MinimumEigenOptimizer behaviour for exact simulation)
        probs = state.probabilities()
        candidates = np.flatnonzero(probs > 1e-6)
    else:
        candidates = np.array([int(b, 2) for b in counts], dtype=np.int64)
    best_bits: Optional[Dict[int, int]] = None
    best_energy = float("inf")
    for index in candidates:
        energy = float(diagonal[index])
        if energy < best_energy:
            best_energy = energy
            best_bits = {q: (int(index) >> q) & 1 for q in range(n)}

    return VariationalResult(
        eigenvalue=float(opt_result.fun),
        optimal_parameters=np.asarray(opt_result.x, dtype=float),
        optimal_circuit=optimal,
        counts=counts,
        best_bits=best_bits,
        best_energy=best_energy,
        optimizer_result=opt_result,
        history=history,
    )
