"""ASCII rendering of quantum circuits.

A dependency-free text drawer in the spirit of Qiskit's ``draw("text")``
— enough to eyeball small circuits in examples, doctests and debugging
sessions::

    q0: ─[H]──■────────
              │
    q1: ─────[X]─[RZ]──

Gates are placed into the same greedy layers the depth metric counts,
so the rendered column count equals ``circuit.depth()``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.gate.circuit import Instruction, QuantumCircuit
from repro.gate.parameter import Parameter, ParameterExpression

_WIRE = "─"
_GAP = " "


def _format_angle(value) -> str:
    if isinstance(value, (int, float)):
        return f"{float(value):.2f}".rstrip("0").rstrip(".")
    if isinstance(value, Parameter):
        return value.name
    if isinstance(value, ParameterExpression):
        return "expr"
    return str(value)


def _gate_label(instruction: Instruction) -> str:
    name = instruction.name
    if instruction.gate.params:
        angles = ",".join(_format_angle(p) for p in instruction.gate.params)
        return f"{name.upper()}({angles})"
    return name.upper()


def _layers(circuit: QuantumCircuit) -> List[List[Instruction]]:
    """Greedy layering identical to the depth computation."""
    levels = [0] * circuit.num_qubits
    layers: List[List[Instruction]] = []
    for ins in circuit.instructions:
        qubits = ins.qubits or tuple(range(circuit.num_qubits))
        if ins.name == "barrier":
            peak = max((levels[q] for q in qubits), default=0)
            for q in qubits:
                levels[q] = peak
            continue
        level = max(levels[q] for q in qubits) + 1
        for q in qubits:
            levels[q] = level
        while len(layers) < level:
            layers.append([])
        layers[level - 1].append(ins)
    return layers


def draw_circuit(circuit: QuantumCircuit, max_width: int = 120) -> str:
    """Render a circuit as ASCII art.

    Parameters
    ----------
    circuit:
        The circuit (parameterized circuits render parameter names).
    max_width:
        Wrap into multiple blocks when a row exceeds this width.
    """
    n = circuit.num_qubits
    if n == 0:
        return "(empty circuit)"
    layers = _layers(circuit)

    label_width = len(f"q{n - 1}: ")
    # rows interleave qubit wires with connector rows between them
    columns: List[Dict[int, str]] = []  # per layer: row index -> cell text
    widths: List[int] = []
    for layer in layers:
        cells: Dict[int, str] = {}
        width = 1
        for ins in layer:
            if len(ins.qubits) == 1:
                label = f"[{_gate_label(ins)}]"
                cells[2 * ins.qubits[0]] = label
                width = max(width, len(label))
            elif len(ins.qubits) == 2:
                a, b = ins.qubits
                lo, hi = sorted((a, b))
                if ins.name == "cx":
                    cells[2 * a] = "■"
                    cells[2 * b] = "[X]"
                    width = max(width, 3)
                elif ins.name in ("cz", "rzz", "swap"):
                    mark = {"cz": "■", "rzz": "Z", "swap": "x"}[ins.name]
                    label = (
                        f"[{_gate_label(ins)}]" if ins.name == "rzz" else mark
                    )
                    cells[2 * lo] = mark if ins.name != "rzz" else label
                    cells[2 * hi] = mark if ins.name != "rzz" else "Z"
                    width = max(width, len(cells[2 * lo]))
                else:
                    cells[2 * a] = "■"
                    cells[2 * b] = f"[{_gate_label(ins)}]"
                    width = max(width, len(cells[2 * b]))
                for row in range(2 * lo + 1, 2 * hi):
                    cells.setdefault(row, "│")
        columns.append(cells)
        widths.append(width)

    def cell_text(row: int, col: int) -> str:
        text = columns[col].get(row, "")
        pad = widths[col] - len(text)
        if row % 2 == 0:  # qubit wire
            if not text:
                return _WIRE * widths[col]
            left = pad // 2
            return _WIRE * left + text + _WIRE * (pad - left)
        if not text:
            return _GAP * widths[col]
        left = pad // 2
        return _GAP * left + text + _GAP * (pad - left)

    rows: List[str] = []
    for row in range(2 * n - 1):
        if row % 2 == 0:
            prefix = f"q{row // 2}: ".ljust(label_width)
            joiner = _WIRE
        else:
            prefix = " " * label_width
            joiner = _GAP
        parts = [cell_text(row, col) for col in range(len(columns))]
        rows.append(prefix + joiner + joiner.join(parts) + joiner)

    # wrap long circuits into blocks
    if not columns:
        return "\n".join(f"q{i}: {_WIRE*3}" for i in range(n))
    body_width = len(rows[0])
    if body_width <= max_width:
        return "\n".join(rows)
    blocks: List[str] = []
    start_col = 0
    while start_col < len(columns):
        end_col = start_col
        used = label_width
        while end_col < len(columns) and used + widths[end_col] + 1 <= max_width:
            used += widths[end_col] + 1
            end_col += 1
        end_col = max(end_col, start_col + 1)
        block_rows = []
        for row in range(2 * n - 1):
            if row % 2 == 0:
                prefix = f"q{row // 2}: ".ljust(label_width)
                joiner = _WIRE
            else:
                prefix = " " * label_width
                joiner = _GAP
            parts = [cell_text(row, col) for col in range(start_col, end_col)]
            block_rows.append(prefix + joiner + joiner.join(parts) + joiner)
        blocks.append("\n".join(block_rows))
        start_col = end_col
    return ("\n" + "·" * 8 + "\n").join(blocks)
