"""NISQ noise modelling (paper Sec. 3.6.1).

The paper's reliability analysis is analytic — circuits deeper than
``d_max = min(T1,T2)/g_avg`` are declared decoherence-limited — but
the error mechanisms it describes (gate errors, readout errors,
decoherence over the execution time, Eq. 36) can be simulated directly
to *observe* the cliff the threshold predicts.  This module provides a
light-weight stochastic noise channel suitable for the small circuits
the statevector simulator handles:

* **depolarizing gate noise** — after each gate, with probability
  ``p_gate`` per touched qubit, a uniformly random Pauli error is
  applied (Monte-Carlo unravelling of the depolarizing channel);
* **decoherence** — each qubit suffers a phase/amplitude error with
  the Eq. 36 probability ``1 − exp(−t/T)`` accumulated over the
  circuit's scheduled duration;
* **readout error** — each measured bit flips with ``p_readout``.

The model is intentionally simple (stochastic Pauli insertion rather
than density matrices) — enough to reproduce the qualitative collapse
of solution quality past the coherence threshold, which the
``noise_study`` experiment demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.exceptions import BackendError
from repro.gate.backend import BackendProperties
from repro.gate.circuit import QuantumCircuit
from repro.gate.gates import Gate
from repro.gate.statevector import Statevector

_PAULIS = ("x", "y", "z")


@dataclass(frozen=True)
class NoiseModel:
    """Stochastic Pauli noise parameters."""

    #: per-qubit Pauli error probability after each gate
    gate_error: float = 0.0
    #: per-bit flip probability at measurement
    readout_error: float = 0.0
    #: calibration for decoherence over circuit duration (optional)
    properties: Optional[BackendProperties] = None

    def __post_init__(self) -> None:
        for value in (self.gate_error, self.readout_error):
            if not 0.0 <= value <= 1.0:
                raise BackendError("error probabilities must be in [0, 1]")

    @classmethod
    def from_backend_properties(
        cls,
        properties: BackendProperties,
        gate_error: float = 1e-3,
        readout_error: float = 2e-2,
    ) -> "NoiseModel":
        """Typical NISQ magnitudes with the device's coherence data."""
        return cls(
            gate_error=gate_error,
            readout_error=readout_error,
            properties=properties,
        )

    def decoherence_probability(self, depth: int) -> float:
        """Eq. 36 over the scheduled circuit duration (0 if uncalibrated)."""
        if self.properties is None or depth <= 0:
            return 0.0
        return self.properties.decoherence_error_probability(depth)


def _inject(circuit: QuantumCircuit, qubit: int, rng: np.random.Generator) -> None:
    circuit.append(Gate(_PAULIS[int(rng.integers(3))]), (qubit,))


def noisy_circuit_instance(
    circuit: QuantumCircuit,
    noise: NoiseModel,
    rng: np.random.Generator,
) -> QuantumCircuit:
    """One Monte-Carlo noise realisation of a circuit.

    Pauli errors are inserted after gates (per touched qubit with
    probability ``gate_error``) and once at the end per qubit with the
    accumulated decoherence probability of the circuit's depth.
    """
    noisy = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}+noise")
    for ins in circuit.instructions:
        noisy.append(ins.gate, ins.qubits)
        if noise.gate_error > 0 and ins.name != "barrier":
            for q in ins.qubits:
                if rng.random() < noise.gate_error:
                    _inject(noisy, q, rng)
    p_decay = noise.decoherence_probability(circuit.depth())
    if p_decay > 0:
        for q in range(circuit.num_qubits):
            if rng.random() < p_decay:
                _inject(noisy, q, rng)
    return noisy


def sample_with_noise(
    circuit: QuantumCircuit,
    noise: NoiseModel,
    shots: int = 1024,
    trajectories: int = 8,
    seed: Optional[int] = None,
) -> Dict[str, int]:
    """Measurement histogram under the noise model.

    ``trajectories`` independent noisy circuit realisations are
    simulated; shots are split across them, and readout errors are
    applied per sampled bit.
    """
    rng = np.random.default_rng(seed)
    counts: Dict[str, int] = {}
    per_trajectory = [shots // trajectories] * trajectories
    for i in range(shots % trajectories):
        per_trajectory[i] += 1
    for allocation in per_trajectory:
        if allocation == 0:
            continue
        instance = noisy_circuit_instance(circuit, noise, rng)
        state = Statevector.from_circuit(instance)
        for bitstring, count in state.sample(allocation, rng).items():
            if noise.readout_error > 0:
                for _ in range(count):
                    bits = list(bitstring)
                    for pos in range(len(bits)):
                        if rng.random() < noise.readout_error:
                            bits[pos] = "1" if bits[pos] == "0" else "0"
                    key = "".join(bits)
                    counts[key] = counts.get(key, 0) + 1
            else:
                counts[bitstring] = counts.get(bitstring, 0) + count
    return counts


def expected_energy_under_noise(
    circuit: QuantumCircuit,
    diagonal: np.ndarray,
    noise: NoiseModel,
    shots: int = 1024,
    trajectories: int = 8,
    seed: Optional[int] = None,
) -> float:
    """Mean Ising energy of noisy measurement outcomes."""
    counts = sample_with_noise(circuit, noise, shots, trajectories, seed)
    total = 0.0
    n = 0
    for bitstring, count in counts.items():
        total += float(diagonal[int(bitstring, 2)]) * count
        n += count
    return total / max(n, 1)
