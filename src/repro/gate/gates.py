"""Standard quantum gate definitions and matrices.

Covers the single- and two-qubit gates the paper's circuits use
(Sec. 3.2): the Pauli gates, Hadamard, rotations, controlled-NOT,
controlled-Z, swap, and the two-qubit ZZ-rotation that implements one
Ising term of the QAOA problem unitary (Eq. 16).

Conventions: qubit 0 is the least-significant bit of a basis-state
index; for two-qubit matrices the first listed qubit is the *first
argument* of the gate (e.g. the control of a CX) and corresponds to the
lower-order tensor factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.exceptions import CircuitError
from repro.gate.parameter import ParameterValue, bind_value, parameters_of

SQRT2_INV = 1.0 / math.sqrt(2.0)

#: Gate name -> number of qubits it acts on.
GATE_ARITY = {
    "id": 1,
    "x": 1,
    "y": 1,
    "z": 1,
    "h": 1,
    "s": 1,
    "sdg": 1,
    "t": 1,
    "tdg": 1,
    "sx": 1,
    "rx": 1,
    "ry": 1,
    "rz": 1,
    "p": 1,
    "u": 1,
    "cx": 2,
    "cz": 2,
    "swap": 2,
    "rzz": 2,
    "barrier": 0,  # variadic; handled specially
    "measure": 1,
}

#: Gate name -> number of angle parameters.
GATE_NUM_PARAMS = {
    "rx": 1,
    "ry": 1,
    "rz": 1,
    "p": 1,
    "rzz": 1,
    "u": 3,
}


@dataclass(frozen=True)
class Gate:
    """An abstract gate: a name plus (possibly symbolic) parameters."""

    name: str
    params: Tuple[ParameterValue, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.name not in GATE_ARITY:
            raise CircuitError(f"unknown gate {self.name!r}")
        expected = GATE_NUM_PARAMS.get(self.name, 0)
        if len(self.params) != expected:
            raise CircuitError(
                f"gate {self.name!r} takes {expected} parameter(s), "
                f"got {len(self.params)}"
            )

    @property
    def num_qubits(self) -> int:
        return GATE_ARITY[self.name]

    def is_parameterized(self) -> bool:
        """True when any angle is still symbolic."""
        return any(parameters_of(p) for p in self.params)

    def bind(self, values) -> "Gate":
        """Substitute numeric parameter values."""
        return Gate(self.name, tuple(bind_value(p, values) for p in self.params))

    def matrix(self) -> np.ndarray:
        """Unitary matrix of the gate (requires bound parameters)."""
        if self.is_parameterized():
            raise CircuitError(f"gate {self.name!r} has unbound parameters")
        return standard_gate_matrix(self.name, tuple(float(p) for p in self.params))


def standard_gate_matrix(name: str, params: Tuple[float, ...] = ()) -> np.ndarray:
    """The unitary matrix of a named standard gate."""
    if name == "id":
        return np.eye(2, dtype=complex)
    if name == "x":
        return np.array([[0, 1], [1, 0]], dtype=complex)
    if name == "y":
        return np.array([[0, -1j], [1j, 0]], dtype=complex)
    if name == "z":
        return np.array([[1, 0], [0, -1]], dtype=complex)
    if name == "h":
        return SQRT2_INV * np.array([[1, 1], [1, -1]], dtype=complex)
    if name == "s":
        return np.array([[1, 0], [0, 1j]], dtype=complex)
    if name == "sdg":
        return np.array([[1, 0], [0, -1j]], dtype=complex)
    if name == "t":
        return np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)
    if name == "tdg":
        return np.array([[1, 0], [0, np.exp(-1j * math.pi / 4)]], dtype=complex)
    if name == "sx":
        return 0.5 * np.array(
            [[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex
        )
    if name == "rx":
        (theta,) = params
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)
    if name == "ry":
        (theta,) = params
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -s], [s, c]], dtype=complex)
    if name == "rz":
        (theta,) = params
        return np.array(
            [[np.exp(-1j * theta / 2), 0], [0, np.exp(1j * theta / 2)]], dtype=complex
        )
    if name == "p":
        (theta,) = params
        return np.array([[1, 0], [0, np.exp(1j * theta)]], dtype=complex)
    if name == "u":
        theta, phi, lam = params
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array(
            [
                [c, -np.exp(1j * lam) * s],
                [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
            ],
            dtype=complex,
        )
    if name == "cx":
        # control = qubit argument 0 (low-order tensor factor)
        return np.array(
            [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=complex
        )
    if name == "cz":
        return np.diag([1, 1, 1, -1]).astype(complex)
    if name == "swap":
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
        )
    if name == "rzz":
        (theta,) = params
        phase = np.exp(-1j * theta / 2)
        anti = np.exp(1j * theta / 2)
        return np.diag([phase, anti, anti, phase]).astype(complex)
    raise CircuitError(f"gate {name!r} has no matrix definition")


def matrices_equal_up_to_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-9) -> bool:
    """Whether two unitaries are equal up to a global phase.

    Used to verify transpiler decompositions, which preserve physics but
    not global phase (paper Sec. 3.1 notes global phase is unobservable).
    """
    if a.shape != b.shape:
        return False
    # pick the largest-magnitude entry of a as the phase reference
    idx = np.unravel_index(np.argmax(np.abs(a)), a.shape)
    if abs(b[idx]) < atol:
        return False
    phase = a[idx] / b[idx]
    if not math.isclose(abs(phase), 1.0, abs_tol=1e-7):
        return False
    return bool(np.allclose(a, phase * b, atol=atol))
