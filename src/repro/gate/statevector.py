"""Statevector simulation of quantum circuits.

This is the local stand-in for the IBM-Q qasm simulator the paper uses
(Sec. 5.2.2): exact state evolution with measurement sampling.  Memory
is the binding constraint — an ``n``-qubit state holds ``2**n`` complex
amplitudes — so like the real qasm simulator the backend refuses
circuits beyond 32 qubits (and in practice the variational algorithms
here are run well below that).

Convention: qubit 0 is the least-significant bit of a basis index, so
the amplitude of bitstring ``b_{n-1} ... b_1 b_0`` lives at index
``sum(b_k << k)``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import BackendError, CircuitError
from repro.gate.circuit import QuantumCircuit

_MAX_SIM_QUBITS = 32


class Statevector:
    """The state of an ``n``-qubit register."""

    def __init__(self, data: np.ndarray, num_qubits: int) -> None:
        expected = 1 << num_qubits
        if data.shape != (expected,):
            raise CircuitError(
                f"statevector for {num_qubits} qubits must have length {expected}"
            )
        self.data = data.astype(complex)
        self.num_qubits = num_qubits

    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        """The all-zeros computational basis state."""
        data = np.zeros(1 << num_qubits, dtype=complex)
        data[0] = 1.0
        return cls(data, num_qubits)

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "Statevector":
        """Evolve |0...0> through the circuit."""
        if circuit.num_qubits > _MAX_SIM_QUBITS:
            raise BackendError(
                f"cannot simulate {circuit.num_qubits} qubits "
                f"(limit {_MAX_SIM_QUBITS})"
            )
        if circuit.is_parameterized():
            raise CircuitError("bind all parameters before simulating")
        state = cls.zero_state(circuit.num_qubits)
        for ins in circuit.instructions:
            if ins.name in ("barrier", "measure", "id"):
                continue
            matrix = ins.gate.matrix()
            if len(ins.qubits) == 1:
                state._apply_1q(matrix, ins.qubits[0])
            elif len(ins.qubits) == 2:
                state._apply_2q(matrix, ins.qubits[0], ins.qubits[1])
            else:  # pragma: no cover - no >2q gates defined
                raise CircuitError(f"cannot simulate {len(ins.qubits)}-qubit gate")
        return state

    # ------------------------------------------------------------------
    # Gate application
    # ------------------------------------------------------------------
    def _apply_1q(self, matrix: np.ndarray, qubit: int) -> None:
        n = self.num_qubits
        psi = self.data.reshape([2] * n)
        # numpy axis for qubit q: reshape puts qubit n-1 at axis 0
        axis = n - 1 - qubit
        psi = np.moveaxis(psi, axis, 0)
        shaped = psi.reshape(2, -1)
        psi = (matrix @ shaped).reshape([2] + [2] * (n - 1))
        self.data = np.moveaxis(psi, 0, axis).reshape(-1)

    def _apply_2q(self, matrix: np.ndarray, q0: int, q1: int) -> None:
        # Matrix basis: index = bit(q1)*2 + bit(q0)  (q0 least significant)
        n = self.num_qubits
        psi = self.data.reshape([2] * n)
        a0, a1 = n - 1 - q0, n - 1 - q1
        psi = np.moveaxis(psi, (a1, a0), (0, 1))
        shaped = psi.reshape(4, -1)
        psi = (matrix @ shaped).reshape([2, 2] + [2] * (n - 2))
        self.data = np.moveaxis(psi, (0, 1), (a1, a0)).reshape(-1)

    # ------------------------------------------------------------------
    # Measurement & expectations
    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Probability of each computational basis state."""
        return np.abs(self.data) ** 2

    def sample(
        self, shots: int, rng: Optional[np.random.Generator] = None
    ) -> Dict[str, int]:
        """Sample measurement outcomes.

        Returns a histogram keyed by bitstrings in the usual text order
        (qubit ``n-1`` leftmost, qubit 0 rightmost).
        """
        rng = rng or np.random.default_rng()
        probs = self.probabilities()
        probs = probs / probs.sum()
        outcomes = rng.choice(len(probs), size=shots, p=probs)
        counts: Dict[str, int] = {}
        width = self.num_qubits
        for outcome in outcomes:
            key = format(int(outcome), f"0{width}b")
            counts[key] = counts.get(key, 0) + 1
        return counts

    def expectation_diagonal(self, diagonal: np.ndarray) -> float:
        """Expectation value of a diagonal observable.

        The Ising Hamiltonians of both query-optimization problems are
        diagonal in the computational basis, so ``<psi|H|psi>`` reduces
        to a probability-weighted average of the diagonal — the quantity
        VQE/QAOA minimize (Eqs. 15/21).
        """
        if diagonal.shape != self.data.shape:
            raise CircuitError("diagonal length must be 2**num_qubits")
        return float(np.real(np.sum(self.probabilities() * diagonal)))

    def fidelity(self, other: "Statevector") -> float:
        """``|<self|other>|^2``."""
        return float(np.abs(np.vdot(self.data, other.data)) ** 2)


def sample_counts(
    circuit: QuantumCircuit,
    shots: int = 1024,
    seed: Optional[int] = None,
) -> Dict[str, int]:
    """Simulate a circuit and sample measurement outcomes."""
    rng = np.random.default_rng(seed)
    return Statevector.from_circuit(circuit).sample(shots, rng)


def ising_diagonal(
    num_qubits: int,
    linear: Dict[int, float],
    quadratic: Dict[tuple, float],
    offset: float = 0.0,
) -> np.ndarray:
    """Diagonal of an Ising Hamiltonian over qubit indices.

    ``linear[i]`` multiplies :math:`Z_i`, ``quadratic[(i, j)]``
    multiplies :math:`Z_i Z_j`.  Bit ``0`` maps to spin ``+1``
    (:math:`Z|0\\rangle = +|0\\rangle`), bit ``1`` to spin ``-1``.
    """
    size = 1 << num_qubits
    indices = np.arange(size, dtype=np.uint64)
    # spins[k] = +1 if bit k is 0 else -1
    diag = np.full(size, float(offset))
    spins = {}
    for k in range(num_qubits):
        spins[k] = 1.0 - 2.0 * ((indices >> np.uint64(k)) & np.uint64(1)).astype(float)
    for i, h in linear.items():
        diag += h * spins[i]
    for (i, j), coupling in quadratic.items():
        diag += coupling * spins[i] * spins[j]
    return diag
