"""Swap routing: making every two-qubit gate physically executable.

Two routers are provided:

* :func:`sabre_route` (default) — a SABRE-style heuristic
  [Li, Ding & Xie 2019], the algorithm family behind Qiskit's default
  routing at the optimization level the paper uses.  It maintains the
  *front layer* of not-yet-routable gates and greedily applies the swap
  that most reduces the summed distance of the front layer, with a
  lookahead term over the following gates and a decay penalty that
  spreads consecutive swaps across qubits.
* :func:`route_circuit` — a naive shortest-path router (Qiskit's
  ``BasicSwap`` analogue), kept as an ablation baseline: it inserts a
  full swap chain per distant gate and therefore exhibits a much larger
  depth overhead.

Both use randomized tie-breaking, so repeated routing yields a depth
distribution — matching the paper's averaging over 20 transpilations.
Each inserted swap later decomposes into three CNOTs (paper Fig. 2),
which is where the depth expansion on sparse heavy-hex topologies
comes from.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import TranspilerError
from repro.gate.circuit import QuantumCircuit
from repro.gate.gates import Gate
from repro.gate.topologies import CouplingMap
from repro.gate.transpiler.layout import Layout

_DECAY_STEP = 0.001
_DECAY_RESET_INTERVAL = 5
_EXTENDED_SET_SIZE = 20
_EXTENDED_WEIGHT = 0.5


def route_circuit(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    layout: Layout,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[QuantumCircuit, Layout]:
    """Naive router: swap along a shortest path per distant gate."""
    if not coupling.is_connected():
        raise TranspilerError("cannot route on a disconnected coupling map")
    rng = rng or np.random.default_rng()
    layout = layout.copy()
    routed = QuantumCircuit(coupling.num_qubits, name=f"{circuit.name}@{coupling.name}")

    for ins in circuit.instructions:
        if ins.name == "barrier":
            routed.append(ins.gate, tuple(layout.physical(q) for q in ins.qubits))
            continue
        if len(ins.qubits) == 1:
            routed.append(ins.gate, (layout.physical(ins.qubits[0]),))
            continue
        if len(ins.qubits) != 2:  # pragma: no cover - no >2q gates defined
            raise TranspilerError(f"cannot route {len(ins.qubits)}-qubit gate")
        a, b = ins.qubits
        _bring_adjacent(routed, coupling, layout, a, b, rng)
        routed.append(ins.gate, (layout.physical(a), layout.physical(b)))

    return routed, layout


def _bring_adjacent(
    routed: QuantumCircuit,
    coupling: CouplingMap,
    layout: Layout,
    logical_a: int,
    logical_b: int,
    rng: np.random.Generator,
) -> None:
    """Swap along a shortest path until the two logicals are adjacent."""
    while True:
        pa, pb = layout.physical(logical_a), layout.physical(logical_b)
        if coupling.are_adjacent(pa, pb):
            return
        path = coupling.shortest_path(pa, pb)
        if rng.random() < 0.5:
            step_from, step_to = path[0], path[1]
        else:
            step_from, step_to = path[-1], path[-2]
        routed.append(Gate("swap"), (step_from, step_to))
        layout.swap_physical(step_from, step_to)


# ----------------------------------------------------------------------
# SABRE-style lookahead router
# ----------------------------------------------------------------------
def sabre_route(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    layout: Layout,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[QuantumCircuit, Layout]:
    """Lookahead swap routing in the spirit of SABRE.

    Returns the routed circuit over physical qubits and the final
    layout.
    """
    if not coupling.is_connected():
        raise TranspilerError("cannot route on a disconnected coupling map")
    rng = rng or np.random.default_rng()
    layout = layout.copy()
    routed = QuantumCircuit(coupling.num_qubits, name=f"{circuit.name}@{coupling.name}")

    instructions = circuit.instructions
    n_ins = len(instructions)

    # dependency graph: each instruction depends on the previous
    # instruction touching each of its qubits
    preds_left: List[int] = [0] * n_ins
    successors: List[List[int]] = [[] for _ in range(n_ins)]
    last_on_qubit: Dict[int, int] = {}
    for i, ins in enumerate(instructions):
        qubits = ins.qubits or tuple(range(circuit.num_qubits))
        depends_on = {last_on_qubit[q] for q in qubits if q in last_on_qubit}
        preds_left[i] = len(depends_on)
        for d in depends_on:
            successors[d].append(i)
        for q in qubits:
            last_on_qubit[q] = i

    front: Set[int] = {i for i in range(n_ins) if preds_left[i] == 0}
    executed = 0
    decay = np.ones(coupling.num_qubits)
    steps_since_reset = 0
    stall_guard = 0

    def retire(i: int) -> None:
        nonlocal executed
        executed += 1
        front.discard(i)
        for s in successors[i]:
            preds_left[s] -= 1
            if preds_left[s] == 0:
                front.add(s)

    def executable(i: int) -> bool:
        ins = instructions[i]
        if len(ins.qubits) != 2:
            return True
        pa, pb = layout.physical(ins.qubits[0]), layout.physical(ins.qubits[1])
        return coupling.are_adjacent(pa, pb)

    def emit(i: int) -> None:
        ins = instructions[i]
        if ins.name == "barrier":
            qubits = ins.qubits or tuple(range(circuit.num_qubits))
            routed.append(ins.gate, tuple(layout.physical(q) for q in qubits))
        else:
            routed.append(ins.gate, tuple(layout.physical(q) for q in ins.qubits))

    def extended_set(blocked: List[int]) -> List[int]:
        """A lookahead window of two-qubit gates behind the front."""
        window: List[int] = []
        frontier = list(blocked)
        seen = set(frontier)
        while frontier and len(window) < _EXTENDED_SET_SIZE:
            nxt: List[int] = []
            for i in frontier:
                for s in successors[i]:
                    if s not in seen:
                        seen.add(s)
                        if len(instructions[s].qubits) == 2:
                            window.append(s)
                        nxt.append(s)
            frontier = nxt
        return window[:_EXTENDED_SET_SIZE]

    def gate_distance(i: int, swapped: Optional[Tuple[int, int]] = None) -> int:
        a, b = instructions[i].qubits
        pa, pb = layout.physical(a), layout.physical(b)
        if swapped is not None:
            mapping = {swapped[0]: swapped[1], swapped[1]: swapped[0]}
            pa = mapping.get(pa, pa)
            pb = mapping.get(pb, pb)
        return coupling.distance(pa, pb)

    while executed < n_ins:
        # drain everything currently executable
        progressed = True
        while progressed:
            progressed = False
            for i in sorted(front):
                if executable(i):
                    emit(i)
                    retire(i)
                    progressed = True
        if executed >= n_ins:
            break

        blocked = [i for i in front if len(instructions[i].qubits) == 2]
        if not blocked:  # pragma: no cover - defensive
            raise TranspilerError("router stalled with no blocked 2q gate")

        lookahead = extended_set(blocked)

        # candidate swaps: edges touching any qubit of a blocked gate
        involved = set()
        for i in blocked:
            for q in instructions[i].qubits:
                involved.add(layout.physical(q))
        candidates: Set[Tuple[int, int]] = set()
        for p in involved:
            for nbr in coupling.neighbors(p):
                candidates.add(tuple(sorted((p, nbr))))

        base_front = sum(gate_distance(i) for i in blocked)
        best_swaps: List[Tuple[int, int]] = []
        best_score = np.inf
        for swap in candidates:
            front_cost = sum(gate_distance(i, swap) for i in blocked) / len(blocked)
            look_cost = 0.0
            if lookahead:
                look_cost = (
                    sum(gate_distance(i, swap) for i in lookahead) / len(lookahead)
                )
            score = max(decay[swap[0]], decay[swap[1]]) * (
                front_cost + _EXTENDED_WEIGHT * look_cost
            )
            if score < best_score - 1e-12:
                best_score, best_swaps = score, [swap]
            elif score <= best_score + 1e-12:
                best_swaps.append(swap)

        swap = best_swaps[int(rng.integers(len(best_swaps)))]
        routed.append(Gate("swap"), swap)
        layout.swap_physical(swap[0], swap[1])
        decay[swap[0]] += _DECAY_STEP
        decay[swap[1]] += _DECAY_STEP
        steps_since_reset += 1
        if steps_since_reset >= _DECAY_RESET_INTERVAL:
            decay[:] = 1.0
            steps_since_reset = 0

        # stall guard: if the front distance has not improved for a long
        # stretch, force progress along a shortest path
        new_front = sum(gate_distance(i) for i in blocked)
        stall_guard = stall_guard + 1 if new_front >= base_front else 0
        if stall_guard > 4 * coupling.num_qubits:
            i = min(blocked)
            a, b = instructions[i].qubits
            _bring_adjacent(routed, coupling, layout, a, b, rng)
            stall_guard = 0

    return routed, layout
