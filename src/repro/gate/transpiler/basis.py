"""Translation to the IBM-Q basis gate set ``{cx, rz, sx, x}``.

Current IBM devices execute a small universal basis (paper Sec. 3.6.1);
every other gate must be rewritten.  Single-qubit unitaries use the
hardware-standard *ZSX* decomposition

.. math:: U(\\theta, \\phi, \\lambda) \\simeq
          RZ(\\phi+\\pi)\\cdot\\sqrt{X}\\cdot RZ(\\theta+\\pi)\\cdot
          \\sqrt{X}\\cdot RZ(\\lambda)

(with one-pulse and zero-pulse special cases when θ is π/2 or 0), and
two-qubit gates use the textbook CNOT constructions — notably
``swap → 3 cx`` (paper Fig. 2) and ``rzz(θ) → cx · rz(θ) · cx``, the
building block of the QAOA problem unitary.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Tuple

import numpy as np

from repro.exceptions import TranspilerError
from repro.gate.circuit import QuantumCircuit
from repro.gate.gates import Gate, standard_gate_matrix

BASIS_GATES = ("cx", "rz", "sx", "x")

_ATOL = 1e-10


def zyz_angles(matrix: np.ndarray) -> Tuple[float, float, float]:
    """ZYZ Euler angles ``(theta, phi, lam)`` of a 2x2 unitary.

    ``U ≃ RZ(phi) · RY(theta) · RZ(lam)`` up to global phase.
    """
    det = np.linalg.det(matrix)
    su = matrix / cmath.sqrt(det)
    theta = 2.0 * math.atan2(abs(su[1, 0]), abs(su[0, 0]))
    if abs(su[1, 0]) < _ATOL:  # diagonal: pure Z rotation
        phi_plus_lam = 2.0 * cmath.phase(su[1, 1])
        phi_minus_lam = 0.0
    elif abs(su[0, 0]) < _ATOL:  # anti-diagonal
        phi_minus_lam = 2.0 * cmath.phase(su[1, 0])
        phi_plus_lam = 0.0
    else:
        phi_plus_lam = 2.0 * cmath.phase(su[1, 1])
        phi_minus_lam = 2.0 * cmath.phase(su[1, 0])
    phi = (phi_plus_lam + phi_minus_lam) / 2.0
    lam = (phi_plus_lam - phi_minus_lam) / 2.0
    return theta, phi, lam


def _norm_angle(angle: float) -> float:
    """Normalize to (-pi, pi]."""
    angle = math.fmod(angle, 2.0 * math.pi)
    if angle <= -math.pi:
        angle += 2.0 * math.pi
    elif angle > math.pi:
        angle -= 2.0 * math.pi
    return angle


def zsx_decompose_matrix(matrix: np.ndarray) -> List[Gate]:
    """ZSX gate sequence (in applied order) realizing a 1q unitary.

    Emits at most ``rz, sx, rz, sx, rz``; a θ≈π/2 unitary needs a single
    sx pulse; a diagonal unitary a single rz; identity nothing.
    """
    # native-gate fast paths (up to global phase)
    from repro.gate.gates import matrices_equal_up_to_phase

    if matrices_equal_up_to_phase(matrix, standard_gate_matrix("x")):
        return [Gate("x")]
    if matrices_equal_up_to_phase(matrix, standard_gate_matrix("sx")):
        return [Gate("sx")]

    theta, phi, lam = zyz_angles(matrix)

    def rz_if(angle: float) -> List[Gate]:
        angle = _norm_angle(angle)
        return [] if abs(angle) < _ATOL else [Gate("rz", (angle,))]

    if abs(_norm_angle(theta)) < 1e-9:
        return rz_if(phi + lam)
    if abs(theta - math.pi / 2.0) < 1e-9:
        # U3(pi/2, phi, lam) = RZ(phi+pi/2) . SX . RZ(lam-pi/2)
        return rz_if(lam - math.pi / 2) + [Gate("sx")] + rz_if(phi + math.pi / 2)
    # general: U3 = RZ(phi+pi) . SX . RZ(theta+pi) . SX . RZ(lam)
    return (
        rz_if(lam)
        + [Gate("sx")]
        + rz_if(theta + math.pi)
        + [Gate("sx")]
        + rz_if(phi + math.pi)
    )


def _decompose_1q(gate: Gate) -> List[Gate]:
    """1q gate → basis gates; symbolic rotations use algebraic rules."""
    if gate.name in ("rz", "sx", "x"):
        return [gate]
    if gate.name == "id":
        return []
    if gate.is_parameterized():
        theta = gate.params[0]
        if gate.name == "rx":
            # rx(t) = h . rz(t) . h  (applied order)
            h_seq = zsx_decompose_matrix(standard_gate_matrix("h"))
            return h_seq + [Gate("rz", (theta,))] + h_seq
        if gate.name == "ry":
            # ry(t): rz(-pi/2), rx(t), rz(pi/2) in applied order
            return (
                [Gate("rz", (-math.pi / 2,))]
                + _decompose_1q(Gate("rx", (theta,)))
                + [Gate("rz", (math.pi / 2,))]
            )
        if gate.name == "p":
            # p differs from rz only by a global phase
            return [Gate("rz", (theta,))]
        raise TranspilerError(
            f"cannot decompose parameterized gate {gate.name!r} symbolically"
        )
    return zsx_decompose_matrix(gate.matrix())


def decompose_to_basis(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite every gate into the ``{cx, rz, sx, x}`` basis."""
    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for ins in circuit.instructions:
        gate, qubits = ins.gate, ins.qubits
        if gate.name == "barrier":
            out.append(gate, qubits)
        elif gate.name == "measure":
            out.append(gate, qubits)
        elif len(qubits) == 1:
            for g in _decompose_1q(gate):
                out.append(g, qubits)
        elif gate.name == "cx":
            out.append(gate, qubits)
        elif gate.name == "swap":
            a, b = qubits
            out.cx(a, b)
            out.cx(b, a)
            out.cx(a, b)
        elif gate.name == "cz":
            a, b = qubits
            h_seq = zsx_decompose_matrix(standard_gate_matrix("h"))
            for g in h_seq:
                out.append(g, (b,))
            out.cx(a, b)
            for g in h_seq:
                out.append(g, (b,))
        elif gate.name == "rzz":
            a, b = qubits
            theta = gate.params[0]
            out.cx(a, b)
            out.rz(theta, b)
            out.cx(a, b)
        else:
            raise TranspilerError(f"no basis decomposition for {gate.name!r}")
    return out
