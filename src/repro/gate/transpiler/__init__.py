"""Circuit transpilation for sparse qubit topologies.

Reproduces the Qiskit compilation flow the paper relies on
(Sec. 3.6.1): choose an initial qubit layout, route two-qubit gates
through swap insertions so every interaction happens between physically
adjacent qubits, translate to the IBM-Q basis gate set
``{cx, rz, sx, x}``, and lightly optimize (the paper uses Qiskit
optimization level 1).
"""

from repro.gate.transpiler.layout import Layout, dense_layout, trivial_layout
from repro.gate.transpiler.routing import route_circuit
from repro.gate.transpiler.basis import decompose_to_basis, zsx_decompose_matrix
from repro.gate.transpiler.optimize import optimize_circuit
from repro.gate.transpiler.transpile import transpile

__all__ = [
    "Layout",
    "dense_layout",
    "trivial_layout",
    "route_circuit",
    "decompose_to_basis",
    "zsx_decompose_matrix",
    "optimize_circuit",
    "transpile",
]
