"""The transpilation pipeline (Qiskit ``transpile()`` analogue).

Stages (paper Sec. 3.6.1 / [27]):

1. **Layout** — map logical qubits onto physical qubits
   (:func:`~repro.gate.transpiler.layout.dense_layout`).
2. **Routing** — insert swap gates so every two-qubit gate acts on
   physically adjacent qubits.
3. **Basis translation** — rewrite to ``{cx, rz, sx, x}``.
4. **Optimization** — light peephole cleanup (default level 1, matching
   the paper's use of Qiskit's defaults).

On a fully connected coupling map (the qasm simulator's "optimal
topology") the layout/routing stages are identity operations and the
depth reported is that of the basis-translated circuit alone.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import TranspilerError
from repro.gate.circuit import QuantumCircuit
from repro.gate.topologies import CouplingMap, full_coupling_map
from repro.gate.transpiler.basis import decompose_to_basis
from repro.gate.transpiler.layout import dense_layout, trivial_layout
from repro.gate.transpiler.optimize import optimize_circuit
from repro.gate.transpiler.routing import route_circuit, sabre_route


def transpile(
    circuit: QuantumCircuit,
    coupling_map: Optional[CouplingMap] = None,
    optimization_level: int = 1,
    seed: Optional[int] = None,
    initial_layout: str = "dense",
    routing: str = "sabre",
) -> QuantumCircuit:
    """Compile a circuit for a target topology.

    Parameters
    ----------
    circuit:
        The logical circuit.
    coupling_map:
        Target topology; ``None`` means all-to-all (simulator default).
    optimization_level:
        0 = none, 1 = light (paper default), 2 = heavier 1q resynthesis.
    seed:
        Seeds the stochastic layout/routing choices.  Repeating with
        different seeds yields the transpiled-depth distribution the
        paper averages (20 samples per point).
    initial_layout:
        ``"dense"`` (interaction-aware) or ``"trivial"`` (identity).
    routing:
        ``"sabre"`` (lookahead, Qiskit-default analogue) or
        ``"basic"`` (naive shortest-path chains, ablation baseline).

    Returns
    -------
    QuantumCircuit
        A circuit over the device's physical qubits using only basis
        gates, every two-qubit gate acting on coupled qubits.
    """
    if coupling_map is None:
        coupling_map = full_coupling_map(circuit.num_qubits)
    if circuit.num_qubits > coupling_map.num_qubits:
        raise TranspilerError(
            f"circuit needs {circuit.num_qubits} qubits but the target "
            f"has {coupling_map.num_qubits}"
        )
    rng = np.random.default_rng(seed)

    if coupling_map.is_fully_connected():
        routed = circuit
    else:
        if initial_layout == "trivial":
            layout = trivial_layout(circuit.num_qubits, coupling_map)
        elif initial_layout == "dense":
            layout = dense_layout(circuit, coupling_map, rng)
        else:
            raise TranspilerError(f"unknown initial_layout {initial_layout!r}")
        if routing == "sabre":
            routed, _ = sabre_route(circuit, coupling_map, layout, rng)
        elif routing == "basic":
            routed, _ = route_circuit(circuit, coupling_map, layout, rng)
        else:
            raise TranspilerError(f"unknown routing {routing!r}")

    translated = decompose_to_basis(routed)
    return optimize_circuit(translated, level=optimization_level)
