"""Light circuit optimization (Qiskit optimization level 1 analogue).

The paper transpiles with the default optimization level, which applies
*light* peephole optimizations.  The passes here:

* merge adjacent ``rz`` rotations on the same qubit (works symbolically,
  so parameterized ansätze benefit too);
* drop rotations whose angle is an integer multiple of 2π;
* cancel adjacent identical CNOT pairs;
* resynthesize maximal runs of bound single-qubit gates into a minimal
  ZSX sequence.

Passes iterate to a fixed point (bounded to avoid pathological loops).
"""

from __future__ import annotations

import math
from functools import reduce
from typing import List, Optional

import numpy as np

from repro.gate.circuit import QuantumCircuit
from repro.gate.gates import Gate
from repro.gate.transpiler.basis import zsx_decompose_matrix

_TWO_PI = 2.0 * math.pi


def _is_zero_rotation(gate: Gate) -> bool:
    if gate.name not in ("rz", "rx", "ry", "rzz", "p") or gate.is_parameterized():
        return False
    angle = float(gate.params[0])
    return abs(math.remainder(angle, _TWO_PI)) < 1e-12


def merge_adjacent_rz(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse consecutive rz gates per qubit; drop zero rotations."""
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    pending = {}  # qubit -> accumulated rz angle (number or expression)

    def flush(qubit: int) -> None:
        angle = pending.pop(qubit, None)
        if angle is None:
            return
        gate = Gate("rz", (angle,))
        if not _is_zero_rotation(gate):
            out.append(gate, (qubit,))

    for ins in circuit.instructions:
        if ins.name == "rz":
            q = ins.qubits[0]
            angle = ins.gate.params[0]
            pending[q] = angle if q not in pending else pending[q] + angle
            continue
        for q in ins.qubits:
            flush(q)
        if ins.name == "barrier" and not ins.qubits:
            for q in list(pending):
                flush(q)
        out.append(ins.gate, ins.qubits)
    for q in list(pending):
        flush(q)
    return out


def cancel_adjacent_cx(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove back-to-back identical CNOTs (CX·CX = I).

    Two CX gates cancel when nothing touches either qubit in between.
    """
    instructions = list(circuit.instructions)
    last_on_qubit: dict = {}
    cancelled = set()
    for i, ins in enumerate(instructions):
        if ins.name == "cx":
            prev = last_on_qubit.get(ins.qubits[0])
            prev_other = last_on_qubit.get(ins.qubits[1])
            if (
                prev is not None
                and prev == prev_other
                and prev not in cancelled
                and instructions[prev].name == "cx"
                and instructions[prev].qubits == ins.qubits
            ):
                cancelled.add(prev)
                cancelled.add(i)
                # restore the dependency frontier to before the pair
                for q in ins.qubits:
                    last_on_qubit.pop(q, None)
                continue
        if ins.name == "barrier" and not ins.qubits:
            last_on_qubit.clear()
            continue
        for q in ins.qubits:
            last_on_qubit[q] = i
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    for i, ins in enumerate(instructions):
        if i not in cancelled:
            out.append(ins.gate, ins.qubits)
    return out


def fuse_single_qubit_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Collapse maximal runs of bound 1q gates into one ZSX sequence.

    Runs containing symbolic parameters are left untouched.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    runs: dict = {}  # qubit -> list of bound 1q gates

    def flush(qubit: int) -> None:
        gates: Optional[List[Gate]] = runs.pop(qubit, None)
        if not gates:
            return
        if len(gates) == 1:
            out.append(gates[0], (qubit,))
            return
        matrix = reduce(lambda acc, g: g.matrix() @ acc, gates, np.eye(2, dtype=complex))
        for g in zsx_decompose_matrix(matrix):
            out.append(g, (qubit,))

    for ins in circuit.instructions:
        is_1q = len(ins.qubits) == 1 and ins.name not in ("barrier", "measure")
        if is_1q and not ins.gate.is_parameterized() and ins.name != "id":
            runs.setdefault(ins.qubits[0], []).append(ins.gate)
            continue
        for q in ins.qubits or range(circuit.num_qubits):
            flush(q)
        if ins.name == "id":
            continue
        out.append(ins.gate, ins.qubits)
    for q in list(runs):
        flush(q)
    return out


def optimize_circuit(circuit: QuantumCircuit, level: int = 1) -> QuantumCircuit:
    """Apply peephole passes at the given optimization level.

    Level 0 returns the circuit unchanged; level 1 applies rz merging
    and CX cancellation (the paper's setting); level 2 additionally
    resynthesizes single-qubit runs.
    """
    if level <= 0:
        return circuit
    previous_size = None
    for _ in range(8):  # fixed-point iteration, bounded
        circuit = merge_adjacent_rz(circuit)
        circuit = cancel_adjacent_cx(circuit)
        if level >= 2:
            circuit = fuse_single_qubit_runs(circuit)
            circuit = merge_adjacent_rz(circuit)
        size = circuit.size()
        if size == previous_size:
            break
        previous_size = size
    return circuit
