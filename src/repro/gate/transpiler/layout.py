"""Initial qubit layout selection.

A layout maps the circuit's *logical* qubits onto the device's
*physical* qubits.  A good layout places strongly-interacting logical
qubits on nearby physical qubits, reducing the number of swaps the
router must insert (and therefore the transpiled depth the paper
measures).

Two strategies are provided:

* :func:`trivial_layout` — identity mapping, useful for tests;
* :func:`dense_layout` — a greedy heuristic in the spirit of Qiskit's
  ``DenseLayout``: logical qubits are placed in order of interaction
  degree, each onto the free physical qubit closest to its already
  placed interaction partners.  Ties are broken with the supplied RNG,
  which is one source of the transpilation variance the paper averages
  over (20 transpilations per data point).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import TranspilerError
from repro.gate.circuit import QuantumCircuit
from repro.gate.topologies import CouplingMap


class Layout:
    """Bijection between logical and physical qubits."""

    def __init__(self, logical_to_physical: Dict[int, int], num_physical: int) -> None:
        self._l2p = dict(logical_to_physical)
        self._p2l = {p: l for l, p in self._l2p.items()}
        if len(self._p2l) != len(self._l2p):
            raise TranspilerError("layout is not injective")
        self.num_physical = num_physical

    def physical(self, logical: int) -> int:
        """Physical qubit hosting a logical qubit."""
        return self._l2p[logical]

    def logical(self, physical: int) -> Optional[int]:
        """Logical qubit on a physical qubit, or None if idle."""
        return self._p2l.get(physical)

    def swap_physical(self, p1: int, p2: int) -> None:
        """Update the layout after a physical swap gate."""
        l1, l2 = self._p2l.get(p1), self._p2l.get(p2)
        if l1 is not None:
            self._l2p[l1] = p2
        if l2 is not None:
            self._l2p[l2] = p1
        self._p2l = {p: l for l, p in self._l2p.items()}

    def copy(self) -> "Layout":
        return Layout(dict(self._l2p), self.num_physical)

    def as_dict(self) -> Dict[int, int]:
        return dict(self._l2p)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Layout({self._l2p})"


def trivial_layout(num_logical: int, coupling: CouplingMap) -> Layout:
    """Map logical qubit i to physical qubit i."""
    if num_logical > coupling.num_qubits:
        raise TranspilerError(
            f"circuit needs {num_logical} qubits but device has {coupling.num_qubits}"
        )
    return Layout({i: i for i in range(num_logical)}, coupling.num_qubits)


def dense_layout(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    rng: Optional[np.random.Generator] = None,
) -> Layout:
    """Greedy interaction-aware placement.

    Logical qubits are sorted by how many distinct partners they
    interact with; each is placed on the free physical qubit minimizing
    the summed distance to the physical homes of its already placed
    partners.  Unentangled logical qubits are placed on arbitrary free
    physical qubits at the end.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise TranspilerError(
            f"circuit needs {circuit.num_qubits} qubits "
            f"but device has {coupling.num_qubits}"
        )
    rng = rng or np.random.default_rng()

    partners: Dict[int, set] = {q: set() for q in range(circuit.num_qubits)}
    for a, b in circuit.interaction_pairs():
        partners[a].add(b)
        partners[b].add(a)

    order = sorted(
        range(circuit.num_qubits),
        key=lambda q: (-len(partners[q]), rng.random()),
    )
    free = set(range(coupling.num_qubits))
    placement: Dict[int, int] = {}

    for logical in order:
        placed_partners = [placement[p] for p in partners[logical] if p in placement]
        if not placed_partners:
            # seed in a well-connected region: prefer high-degree qubits
            candidates = sorted(
                free, key=lambda p: (-coupling.degree(p), rng.random())
            )
            placement[logical] = candidates[0]
        else:
            best: List[int] = []
            best_cost = None
            for p in free:
                cost = sum(coupling.distance(p, q) for q in placed_partners)
                if best_cost is None or cost < best_cost:
                    best, best_cost = [p], cost
                elif cost == best_cost:
                    best.append(p)
            placement[logical] = best[int(rng.integers(len(best)))]
        free.discard(placement[logical])

    return Layout(placement, coupling.num_qubits)
