"""Backends: execution targets with device calibration data.

A :class:`Backend` bundles a coupling map with
:class:`BackendProperties` — the T1/T2 coherence times and average gate
time the paper reads off the IBM-Q calibration pages and feeds into its
reliability thresholds (Eqs. 36–37 and 55).

The fake backends freeze the calibration values quoted in the paper so
its arithmetic reproduces exactly:

* Mumbai (Sec. 5.3.2): T1 = 117.22 µs, T2 = 118.47 µs,
  g_avg = 471.111 ns  →  d_max = 248.
* Brooklyn (Sec. 6.3.4): T1 = 66.02 µs, T2 = 79.44 µs,
  g_avg = 370.469 ns  →  d_max = 178.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.exceptions import BackendError
from repro.gate.circuit import QuantumCircuit
from repro.gate.statevector import Statevector
from repro.gate.topologies import (
    CouplingMap,
    brooklyn_coupling_map,
    full_coupling_map,
    mumbai_coupling_map,
)


@dataclass(frozen=True)
class BackendProperties:
    """Calibration summary of a device.

    Times are in nanoseconds to keep the threshold arithmetic integral.
    """

    t1_ns: float
    t2_ns: float
    avg_gate_time_ns: float

    @property
    def min_coherence_ns(self) -> float:
        """The binding coherence time, ``min(T1, T2)``."""
        return min(self.t1_ns, self.t2_ns)

    def max_reliable_depth(self) -> int:
        """Maximum circuit depth executable within coherence (Eq. 37).

        ``d_max = floor(min(T1, T2) / g_avg)`` — the paper's threshold
        beyond which decoherence errors dominate.
        """
        return int(math.floor(self.min_coherence_ns / self.avg_gate_time_ns))

    def decoherence_error_probability(self, depth: int) -> float:
        """``p_err = 1 - exp(-t / T)`` for a circuit of given depth (Eq. 36)."""
        t = depth * self.avg_gate_time_ns
        return 1.0 - math.exp(-t / self.min_coherence_ns)


class Backend:
    """An execution target: topology + calibration + simulator."""

    def __init__(
        self,
        name: str,
        coupling_map: CouplingMap,
        properties: Optional[BackendProperties] = None,
        max_qubits: Optional[int] = None,
    ) -> None:
        self.name = name
        self.coupling_map = coupling_map
        self.properties = properties
        self.max_qubits = max_qubits or coupling_map.num_qubits

    @property
    def num_qubits(self) -> int:
        return self.coupling_map.num_qubits

    def run_statevector(self, circuit: QuantumCircuit) -> Statevector:
        """Exact simulation of a (bound) circuit on this backend."""
        if circuit.num_qubits > self.max_qubits:
            raise BackendError(
                f"{self.name} supports at most {self.max_qubits} qubits, "
                f"circuit uses {circuit.num_qubits}"
            )
        return Statevector.from_circuit(circuit)

    def run_counts(
        self, circuit: QuantumCircuit, shots: int = 1024, seed: Optional[int] = None
    ) -> Dict[str, int]:
        """Simulate and sample measurement counts."""
        rng = np.random.default_rng(seed)
        return self.run_statevector(circuit).sample(shots, rng)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Backend({self.name!r}, {self.num_qubits} qubits)"


# ----------------------------------------------------------------------
# Factory functions for the devices the paper evaluates
# ----------------------------------------------------------------------
def fake_mumbai() -> Backend:
    """IBM-Q Mumbai as calibrated in the paper (27 qubits, d_max=248)."""
    return Backend(
        "mumbai",
        mumbai_coupling_map(),
        BackendProperties(
            t1_ns=117_220.0, t2_ns=118_470.0, avg_gate_time_ns=471.111
        ),
    )


def fake_brooklyn() -> Backend:
    """IBM-Q Brooklyn as calibrated in the paper (65 qubits, d_max=178)."""
    return Backend(
        "brooklyn",
        brooklyn_coupling_map(),
        BackendProperties(
            t1_ns=66_020.0, t2_ns=79_440.0, avg_gate_time_ns=370.469
        ),
    )


def qasm_simulator(num_qubits: int = 32) -> Backend:
    """The all-to-all 32-qubit simulator backend (paper Sec. 3.6.1)."""
    return Backend(
        "qasm_simulator",
        full_coupling_map(num_qubits),
        properties=None,
        max_qubits=32,
    )
