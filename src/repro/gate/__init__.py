"""Gate-model quantum computing substrate.

Implements the pieces of the Qiskit stack the paper relies on
(Sec. 5.2/6.2): parameterized quantum circuits, a statevector simulator,
IBM-Q-style coupling maps (heavy-hex Mumbai/Brooklyn), and a transpiler
that performs qubit layout, swap routing and translation to the IBM-Q
basis gate set ``{cx, rz, sx, x}``.
"""

from repro.gate.parameter import Parameter, ParameterExpression
from repro.gate.gates import Gate, standard_gate_matrix
from repro.gate.circuit import Instruction, QuantumCircuit
from repro.gate.statevector import Statevector, sample_counts
from repro.gate.topologies import (
    CouplingMap,
    brooklyn_coupling_map,
    full_coupling_map,
    grid_coupling_map,
    line_coupling_map,
    mumbai_coupling_map,
)
from repro.gate.backend import (
    Backend,
    BackendProperties,
    fake_brooklyn,
    fake_mumbai,
    qasm_simulator,
)
from repro.gate.transpiler import transpile

__all__ = [
    "Parameter",
    "ParameterExpression",
    "Gate",
    "standard_gate_matrix",
    "Instruction",
    "QuantumCircuit",
    "Statevector",
    "sample_counts",
    "CouplingMap",
    "brooklyn_coupling_map",
    "full_coupling_map",
    "grid_coupling_map",
    "line_coupling_map",
    "mumbai_coupling_map",
    "Backend",
    "BackendProperties",
    "fake_brooklyn",
    "fake_mumbai",
    "qasm_simulator",
    "transpile",
]
