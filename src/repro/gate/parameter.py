"""Symbolic circuit parameters for variational algorithms.

VQE and QAOA (paper Sec. 3.4) build one parameterized circuit and rebind
its angles every optimizer iteration.  A :class:`Parameter` is a named
placeholder; a :class:`ParameterExpression` is the affine combination
``sum(coeff_i * param_i) + constant`` — sufficient for both ansätze used
here (QAOA multiplies the Ising coefficients into its γ/β parameters).
"""

from __future__ import annotations

import itertools
from typing import Dict, Mapping, Union

from repro.exceptions import CircuitError

Number = Union[int, float]
ParameterValue = Union["Parameter", "ParameterExpression", float, int]

_ids = itertools.count()


class Parameter:
    """A named symbolic parameter.

    Identity-based: two parameters with the same name are distinct
    objects and bind independently.
    """

    __slots__ = ("name", "_uid")

    def __init__(self, name: str) -> None:
        self.name = name
        self._uid = next(_ids)

    def __hash__(self) -> int:
        return hash(self._uid)

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:
        return f"Parameter({self.name})"

    # arithmetic promotes to ParameterExpression
    def __mul__(self, other: Number) -> "ParameterExpression":
        return ParameterExpression({self: 1.0}) * other

    def __rmul__(self, other: Number) -> "ParameterExpression":
        return self.__mul__(other)

    def __add__(self, other) -> "ParameterExpression":
        return ParameterExpression({self: 1.0}) + other

    def __radd__(self, other) -> "ParameterExpression":
        return self.__add__(other)

    def __sub__(self, other) -> "ParameterExpression":
        return ParameterExpression({self: 1.0}) - other

    def __rsub__(self, other) -> "ParameterExpression":
        return (ParameterExpression({self: 1.0}) * -1.0) + other

    def __neg__(self) -> "ParameterExpression":
        return ParameterExpression({self: -1.0})


class ParameterExpression:
    """Affine expression over parameters: ``sum(c_i * p_i) + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Mapping[Parameter, float], constant: float = 0.0) -> None:
        self.coeffs: Dict[Parameter, float] = {
            p: float(c) for p, c in coeffs.items() if c != 0.0
        }
        self.constant = float(constant)

    @staticmethod
    def _coerce(value: ParameterValue) -> "ParameterExpression":
        if isinstance(value, ParameterExpression):
            return value
        if isinstance(value, Parameter):
            return ParameterExpression({value: 1.0})
        if isinstance(value, (int, float)):
            return ParameterExpression({}, float(value))
        raise CircuitError(f"cannot use {value!r} as a circuit parameter")

    def __add__(self, other: ParameterValue) -> "ParameterExpression":
        other = self._coerce(other)
        coeffs = dict(self.coeffs)
        for p, c in other.coeffs.items():
            coeffs[p] = coeffs.get(p, 0.0) + c
        return ParameterExpression(coeffs, self.constant + other.constant)

    def __radd__(self, other: ParameterValue) -> "ParameterExpression":
        return self.__add__(other)

    def __sub__(self, other: ParameterValue) -> "ParameterExpression":
        return self.__add__(self._coerce(other) * -1.0)

    def __rsub__(self, other: ParameterValue) -> "ParameterExpression":
        return (self * -1.0).__add__(other)

    def __mul__(self, factor: Number) -> "ParameterExpression":
        if not isinstance(factor, (int, float)):
            raise CircuitError("parameter expressions scale by numbers only")
        return ParameterExpression(
            {p: c * factor for p, c in self.coeffs.items()}, self.constant * factor
        )

    def __rmul__(self, factor: Number) -> "ParameterExpression":
        return self.__mul__(factor)

    def __neg__(self) -> "ParameterExpression":
        return self * -1.0

    @property
    def parameters(self) -> frozenset:
        """Unbound parameters appearing in the expression."""
        return frozenset(self.coeffs)

    def bind(self, values: Mapping[Parameter, float]) -> Union["ParameterExpression", float]:
        """Substitute numeric values; returns a float if fully bound."""
        coeffs: Dict[Parameter, float] = {}
        constant = self.constant
        for p, c in self.coeffs.items():
            if p in values:
                constant += c * values[p]
            else:
                coeffs[p] = c
        if coeffs:
            return ParameterExpression(coeffs, constant)
        return constant

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{c:+g}*{p.name}" for p, c in self.coeffs.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return f"ParameterExpression({' '.join(parts)})"


def parameters_of(value: ParameterValue) -> frozenset:
    """The set of unbound parameters in a gate-angle value."""
    if isinstance(value, Parameter):
        return frozenset((value,))
    if isinstance(value, ParameterExpression):
        return value.parameters
    return frozenset()


def bind_value(value: ParameterValue, values: Mapping[Parameter, float]):
    """Bind a gate-angle value; floats pass through unchanged."""
    if isinstance(value, Parameter):
        return values.get(value, value)
    if isinstance(value, ParameterExpression):
        return value.bind(values)
    return value
