"""Qubit coupling maps of gate-based quantum devices.

The paper's central gate-model observation (Secs. 3.6.1, 5.3.2, 6.3.4)
is that real IBM-Q devices have *sparse* qubit connectivity — heavy-hex
lattices of degree ≤ 3 — so two-qubit gates between non-adjacent qubits
must be routed through swap chains, inflating circuit depth.

This module provides:

* :class:`CouplingMap` — an undirected connectivity graph with the
  distance/path queries the router needs;
* the 27-qubit Falcon lattice of IBM-Q **Mumbai** (used for the MQO
  experiments, Fig. 4 / Sec. 5.3.2);
* a 65-qubit Hummingbird-class heavy-hex lattice for IBM-Q **Brooklyn**
  (used for the join-ordering experiments, Sec. 6.3.4);
* line / grid / fully-connected maps for ablations, the last standing in
  for the qasm simulator's "optimal topology" where every qubit couples
  to every other.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import TranspilerError


class CouplingMap:
    """Undirected qubit-connectivity graph.

    Qubits are integers ``0..n-1``; an edge means a native two-qubit
    gate exists between the pair.
    """

    def __init__(self, edges: Iterable[Tuple[int, int]], num_qubits: Optional[int] = None, name: str = "") -> None:
        self.graph = nx.Graph()
        edges = [tuple(sorted((int(a), int(b)))) for a, b in edges]
        if num_qubits is None:
            num_qubits = 1 + max((max(e) for e in edges), default=-1)
        self.num_qubits = int(num_qubits)
        self.name = name
        self.graph.add_nodes_from(range(self.num_qubits))
        self.graph.add_edges_from(edges)
        for a, b in edges:
            if b >= self.num_qubits:
                raise TranspilerError(f"edge {(a, b)} exceeds num_qubits={num_qubits}")
        self._dist: Optional[Dict[int, Dict[int, int]]] = None

    # ------------------------------------------------------------------
    @property
    def edges(self) -> List[Tuple[int, int]]:
        return [tuple(sorted(e)) for e in self.graph.edges]

    def degree(self, qubit: int) -> int:
        return self.graph.degree[qubit]

    def max_degree(self) -> int:
        return max(dict(self.graph.degree).values(), default=0)

    def is_connected(self) -> bool:
        return self.num_qubits <= 1 or nx.is_connected(self.graph)

    def are_adjacent(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def neighbors(self, qubit: int) -> List[int]:
        return list(self.graph.neighbors(qubit))

    def distance(self, a: int, b: int) -> int:
        """Shortest-path distance (precomputed lazily, cached)."""
        if self._dist is None:
            self._dist = {
                src: lengths
                for src, lengths in nx.all_pairs_shortest_path_length(self.graph)
            }
        try:
            return self._dist[a][b]
        except KeyError:
            raise TranspilerError(f"qubits {a} and {b} are not connected") from None

    def shortest_path(self, a: int, b: int) -> List[int]:
        return nx.shortest_path(self.graph, a, b)

    def is_fully_connected(self) -> bool:
        n = self.num_qubits
        return self.graph.number_of_edges() == n * (n - 1) // 2

    def subgraph_distance_sum(self, nodes: Sequence[int]) -> int:
        """Sum of pairwise distances over a node set (layout quality)."""
        return sum(self.distance(a, b) for a, b in itertools.combinations(nodes, 2))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return (
            f"CouplingMap({self.num_qubits} qubits,"
            f" {self.graph.number_of_edges()} edges{label})"
        )


# ----------------------------------------------------------------------
# Synthetic maps
# ----------------------------------------------------------------------
def full_coupling_map(num_qubits: int) -> CouplingMap:
    """All-to-all connectivity — the qasm simulator's "optimal topology"
    (paper Sec. 5.3.2): no swap routing is ever needed."""
    return CouplingMap(
        itertools.combinations(range(num_qubits), 2),
        num_qubits=num_qubits,
        name="full",
    )


def line_coupling_map(num_qubits: int) -> CouplingMap:
    """A 1-D chain of qubits."""
    return CouplingMap(
        ((i, i + 1) for i in range(num_qubits - 1)),
        num_qubits=num_qubits,
        name="line",
    )


def grid_coupling_map(rows: int, cols: int) -> CouplingMap:
    """A rows x cols square lattice."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return CouplingMap(edges, num_qubits=rows * cols, name=f"grid{rows}x{cols}")


# ----------------------------------------------------------------------
# IBM-Q device maps
# ----------------------------------------------------------------------
#: 27-qubit Falcon heavy-hex lattice (IBM-Q Mumbai, paper Fig. 4).
_MUMBAI_EDGES: Tuple[Tuple[int, int], ...] = (
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
    (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
    (13, 14), (14, 16), (15, 18), (16, 19), (17, 18), (18, 21),
    (19, 20), (19, 22), (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
)

#: 65-qubit Hummingbird-class heavy-hex lattice (IBM-Q Brooklyn).
#: Built as five qubit rows joined by three-qubit connector columns, the
#: published layout pattern of the Hummingbird r2 family.
_BROOKLYN_EDGES: Tuple[Tuple[int, int], ...] = tuple(
    [(i, i + 1) for i in range(0, 9)]                     # row 0: 0..9
    + [(0, 10), (4, 11), (8, 12)]                         # connectors
    + [(10, 13), (11, 17), (12, 21)]
    + [(i, i + 1) for i in range(13, 23)]                 # row 1: 13..23
    + [(15, 24), (19, 25), (23, 26)]
    + [(24, 29), (25, 33), (26, 37)]
    + [(i, i + 1) for i in range(27, 38)]                 # row 2: 27..38
    + [(27, 39), (31, 40), (35, 41)]
    + [(39, 42), (40, 46), (41, 50)]
    + [(i, i + 1) for i in range(42, 52)]                 # row 3: 42..52
    + [(44, 53), (48, 54), (52, 55)]
    + [(53, 58), (54, 62), (55, 64)]
    + [(i, i + 1) for i in range(56, 64)]                 # row 4: 56..64
)


def mumbai_coupling_map() -> CouplingMap:
    """The IBM-Q Mumbai (27-qubit Falcon) coupling map."""
    return CouplingMap(_MUMBAI_EDGES, num_qubits=27, name="mumbai")


def brooklyn_coupling_map() -> CouplingMap:
    """The IBM-Q Brooklyn (65-qubit Hummingbird) coupling map."""
    return CouplingMap(_BROOKLYN_EDGES, num_qubits=65, name="brooklyn")


def heavy_hex_row_lengths(coupling: CouplingMap) -> List[int]:
    """Diagnostic: the sizes of degree-≤2 chains (used by tests)."""
    low_degree = [q for q in range(coupling.num_qubits) if coupling.degree(q) <= 2]
    sub = coupling.graph.subgraph(low_degree)
    return sorted(len(c) for c in nx.connected_components(sub))
