"""Quantum circuits: ordered gate lists with DAG-style depth analysis.

The :class:`QuantumCircuit` mirrors the subset of Qiskit's circuit API
the paper's experiments need — gate-append helpers, ``depth()`` (the
metric of Figures 8/9/13), ``count_ops()``, composition, copying, and
parameter binding for the variational algorithms.

Depth is computed as Qiskit computes it: the length of the longest path
through the circuit DAG where every instruction (regardless of arity)
contributes one unit on each qubit it touches.  Barriers synchronise
qubits but add no depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import CircuitError
from repro.gate.gates import Gate
from repro.gate.parameter import (
    Parameter,
    ParameterValue,
    parameters_of,
)


@dataclass(frozen=True)
class Instruction:
    """One gate application: a gate plus the qubit indices it acts on."""

    gate: Gate
    qubits: Tuple[int, ...]

    @property
    def name(self) -> str:
        return self.gate.name


class QuantumCircuit:
    """A fixed-width quantum circuit.

    Parameters
    ----------
    num_qubits:
        Register width.  All qubit arguments must lie in
        ``range(num_qubits)``.
    name:
        Optional display name.
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 0:
            raise CircuitError("num_qubits must be non-negative")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._instructions: List[Instruction] = []

    # ------------------------------------------------------------------
    # Generic append + gate helpers
    # ------------------------------------------------------------------
    def append(self, gate: Gate, qubits: Sequence[int]) -> None:
        """Append a gate on the given qubits."""
        qubits = tuple(int(q) for q in qubits)
        if gate.name == "barrier":
            if not qubits:
                qubits = tuple(range(self.num_qubits))
        elif len(qubits) != gate.num_qubits:
            raise CircuitError(
                f"gate {gate.name!r} expects {gate.num_qubits} qubits, got {len(qubits)}"
            )
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"duplicate qubits {qubits} for gate {gate.name!r}")
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(
                    f"qubit {q} out of range for {self.num_qubits}-qubit circuit"
                )
        self._instructions.append(Instruction(gate, qubits))

    def id(self, q: int) -> None:
        self.append(Gate("id"), (q,))

    def x(self, q: int) -> None:
        self.append(Gate("x"), (q,))

    def y(self, q: int) -> None:
        self.append(Gate("y"), (q,))

    def z(self, q: int) -> None:
        self.append(Gate("z"), (q,))

    def h(self, q: int) -> None:
        self.append(Gate("h"), (q,))

    def s(self, q: int) -> None:
        self.append(Gate("s"), (q,))

    def sdg(self, q: int) -> None:
        self.append(Gate("sdg"), (q,))

    def t(self, q: int) -> None:
        self.append(Gate("t"), (q,))

    def tdg(self, q: int) -> None:
        self.append(Gate("tdg"), (q,))

    def sx(self, q: int) -> None:
        self.append(Gate("sx"), (q,))

    def rx(self, theta: ParameterValue, q: int) -> None:
        self.append(Gate("rx", (theta,)), (q,))

    def ry(self, theta: ParameterValue, q: int) -> None:
        self.append(Gate("ry", (theta,)), (q,))

    def rz(self, theta: ParameterValue, q: int) -> None:
        self.append(Gate("rz", (theta,)), (q,))

    def p(self, theta: ParameterValue, q: int) -> None:
        self.append(Gate("p", (theta,)), (q,))

    def u(self, theta: ParameterValue, phi: ParameterValue, lam: ParameterValue, q: int) -> None:
        self.append(Gate("u", (theta, phi, lam)), (q,))

    def cx(self, control: int, target: int) -> None:
        self.append(Gate("cx"), (control, target))

    def cz(self, a: int, b: int) -> None:
        self.append(Gate("cz"), (a, b))

    def swap(self, a: int, b: int) -> None:
        self.append(Gate("swap"), (a, b))

    def rzz(self, theta: ParameterValue, a: int, b: int) -> None:
        self.append(Gate("rzz", (theta,)), (a, b))

    def barrier(self, *qubits: int) -> None:
        self.append(Gate("barrier"), tuple(qubits))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        return tuple(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def size(self) -> int:
        """Total number of gate instructions (barriers excluded)."""
        return sum(1 for ins in self._instructions if ins.name != "barrier")

    def count_ops(self) -> Dict[str, int]:
        """Histogram of gate names."""
        counts: Dict[str, int] = {}
        for ins in self._instructions:
            counts[ins.name] = counts.get(ins.name, 0) + 1
        return counts

    def depth(self) -> int:
        """Circuit depth (longest qubit-wise dependency chain).

        This is the quantity the paper compares against the coherence
        threshold d_max (Eqs. 37/55): every gate advances the level of
        all its qubits to ``1 + max(current levels)``.
        """
        levels = [0] * self.num_qubits
        for ins in self._instructions:
            if ins.name == "barrier":
                if ins.qubits:
                    peak = max(levels[q] for q in ins.qubits)
                    for q in ins.qubits:
                        levels[q] = peak
                continue
            peak = max(levels[q] for q in ins.qubits) + 1
            for q in ins.qubits:
                levels[q] = peak
        return max(levels, default=0)

    def two_qubit_gate_count(self) -> int:
        """Number of gates touching two qubits (cx, cz, swap, rzz)."""
        return sum(
            1
            for ins in self._instructions
            if len(ins.qubits) == 2 and ins.name != "barrier"
        )

    @property
    def parameters(self) -> frozenset:
        """All unbound parameters in the circuit."""
        params = set()
        for ins in self._instructions:
            for p in ins.gate.params:
                params |= parameters_of(p)
        return frozenset(params)

    def is_parameterized(self) -> bool:
        return bool(self.parameters)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def copy(self) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, self.name)
        out._instructions = list(self._instructions)
        return out

    def bind_parameters(
        self, values: Mapping[Parameter, float]
    ) -> "QuantumCircuit":
        """Return a copy with the given parameters bound to numbers."""
        out = QuantumCircuit(self.num_qubits, self.name)
        for ins in self._instructions:
            gate = ins.gate.bind(values) if ins.gate.params else ins.gate
            out._instructions.append(Instruction(gate, ins.qubits))
        return out

    def assign_all(self, values: Sequence[float]) -> "QuantumCircuit":
        """Bind all parameters positionally (sorted by parameter name)."""
        params = sorted(self.parameters, key=lambda p: (p.name, p._uid))
        if len(values) != len(params):
            raise CircuitError(
                f"expected {len(params)} parameter values, got {len(values)}"
            )
        return self.bind_parameters(dict(zip(params, values)))

    def compose(
        self, other: "QuantumCircuit", qubits: Optional[Sequence[int]] = None
    ) -> "QuantumCircuit":
        """Return a new circuit with ``other`` appended.

        ``qubits`` maps the other circuit's qubit ``i`` to
        ``qubits[i]`` of this circuit (identity by default).
        """
        mapping = list(qubits) if qubits is not None else list(range(other.num_qubits))
        if len(mapping) != other.num_qubits:
            raise CircuitError("qubit mapping must cover the composed circuit")
        out = self.copy()
        for ins in other._instructions:
            out.append(ins.gate, tuple(mapping[q] for q in ins.qubits))
        return out

    def inverse(self) -> "QuantumCircuit":
        """Adjoint circuit (only for self-inverse / rotation gates)."""
        inverse_of = {
            "id": ("id", 1),
            "x": ("x", 1),
            "y": ("y", 1),
            "z": ("z", 1),
            "h": ("h", 1),
            "s": ("sdg", 1),
            "sdg": ("s", 1),
            "t": ("tdg", 1),
            "tdg": ("t", 1),
            "cx": ("cx", 1),
            "cz": ("cz", 1),
            "swap": ("swap", 1),
        }
        out = QuantumCircuit(self.num_qubits, f"{self.name}_dg")
        for ins in reversed(self._instructions):
            name = ins.name
            if name == "barrier":
                out.append(ins.gate, ins.qubits)
            elif name in ("rx", "ry", "rz", "p", "rzz"):
                theta = ins.gate.params[0]
                out.append(Gate(name, (-theta if not isinstance(theta, (int, float)) else -theta,)), ins.qubits)
            elif name in inverse_of:
                out.append(Gate(inverse_of[name][0]), ins.qubits)
            else:
                raise CircuitError(f"no inverse rule for gate {name!r}")
        return out

    def remap_qubits(self, mapping: Mapping[int, int], num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Relabel qubits through ``mapping`` (must cover all used qubits)."""
        width = num_qubits if num_qubits is not None else self.num_qubits
        out = QuantumCircuit(width, self.name)
        for ins in self._instructions:
            out.append(ins.gate, tuple(mapping[q] for q in ins.qubits))
        return out

    def interaction_pairs(self) -> Iterable[Tuple[int, int]]:
        """Distinct qubit pairs coupled by some two-qubit gate."""
        seen = set()
        for ins in self._instructions:
            if len(ins.qubits) == 2:
                pair = tuple(sorted(ins.qubits))
                if pair not in seen:
                    seen.add(pair)
                    yield pair

    def draw(self, max_width: int = 120) -> str:
        """ASCII rendering of the circuit (see :mod:`repro.gate.drawer`)."""
        from repro.gate.drawer import draw_circuit

        return draw_circuit(self, max_width=max_width)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantumCircuit({self.name!r}, {self.num_qubits} qubits, "
            f"{len(self._instructions)} instructions, depth={self.depth()})"
        )
