"""The optimization service: deadline-aware serving with fallback chains.

:class:`OptimizationService` is embeddable and thread-safe: any number
of threads may call :meth:`~OptimizationService.optimize` concurrently
against shared caches and metrics.  :class:`BatchScheduler` adds a
worker pool with admission control on top — a bounded in-flight count,
rejecting excess requests with a reason instead of queueing unboundedly.

Determinism contract: a request's solve seed is derived (harness
SHA-256 scheme) from the root seed, the problem's content fingerprint,
and the policy — *not* from request ids or arrival order.  Two requests
carrying the same problem therefore produce identical plans and stage
assignments whether they run serially, concurrently, or get served
from the result cache, and a rerun of a whole workload with the same
root seed reproduces it plan-for-plan (as long as every stage reached
completes within its deadline slice).
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from threading import RLock
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness import derive_seed, resolve_workers
from repro.service.cache import CompilationCache
from repro.service.chain import StageSpec, default_policy, policy_key, run_chain
from repro.service.metrics import Metrics
from repro.service.problems import make_adapter, problem_fingerprint
from repro.service.request import (
    OptimizationRequest,
    OptimizationResult,
    problem_to_dict,
)

__all__ = ["BatchScheduler", "OptimizationService", "SchedulerBase", "coalesce_key"]


def coalesce_key(
    request: OptimizationRequest,
    default_seed: int,
    default_policy: Sequence[StageSpec],
    routed: bool = False,
) -> str:
    """Content key under which concurrent requests may share one solve.

    Two requests coalesce only when every solve-relevant input matches:
    the problem content hash, the effective root seed, the policy +
    chain mode, and the deadline budget.  Because solve seeds derive
    from problem content (not request ids), requests agreeing on this
    key are guaranteed to produce field-identical results, so answering
    a follower with the primary's result is not an approximation.

    ``routed`` marks keys served by a routing-enabled scheduler.
    Concurrent duplicates still coalesce — the follower receives the
    chain outcome the router picked for the primary, which is a valid
    serving result for the identical content — but the marker keeps
    routed keys from ever colliding with static-chain keys, whose
    results may differ for the same content.
    """
    policy = tuple(request.policy) if request.policy is not None else tuple(default_policy)
    root_seed = default_seed if request.seed is None else int(request.seed)
    fingerprint = problem_fingerprint(
        request.kind, problem_to_dict(request.kind, request.problem)
    )
    pkey = policy_key(policy, request.mode)
    if routed and request.policy is None:
        pkey = f"routed|{pkey}"
    return f"{fingerprint}|{root_seed}|{pkey}|{request.deadline_ms:g}"


class OptimizationService:
    """Serve MQO / join-ordering requests under per-request deadlines."""

    def __init__(
        self,
        policy: Optional[Sequence[StageSpec]] = None,
        seed: int = 0,
        compiled_capacity: int = 256,
        result_capacity: int = 1024,
        routing=None,
    ) -> None:
        self.policy: Tuple[StageSpec, ...] = (
            tuple(policy) if policy is not None else default_policy()
        )
        self.seed = int(seed)
        self.cache = CompilationCache(compiled_capacity, result_capacity)
        self.metrics = Metrics()
        #: optional :class:`repro.routing.RoutingPolicy` — when set,
        #: requests without an explicit per-request policy get their
        #: chain order and budget split decided per request from the
        #: learned cost model; None (the default) serves the static
        #: chain bit-identically to earlier releases
        self.routing = routing
        self._started = time.perf_counter()

    # ------------------------------------------------------------------
    def optimize(self, request: OptimizationRequest) -> OptimizationResult:
        """Serve one request: best-effort plan within its deadline."""
        start = time.perf_counter()
        self.metrics.incr("requests_total")
        self.metrics.incr(f"requests_kind.{request.kind}")

        adapter = self._compiled_adapter(request)
        root_seed = self.seed if request.seed is None else int(request.seed)
        decision = None
        if self.routing is not None and request.policy is None:
            from repro.routing.features import extract_features

            decision = self.routing.decide(
                extract_features(adapter), request.deadline_ms
            )
            policy = decision.policy
            # the solve seed derives from the *static* policy key, not
            # the per-request chain: whenever the router's chain order
            # matches the static order (loose deadlines), every stage
            # seed matches the unrouted run and the plan is
            # bit-identical to the static service's — and since equal
            # model states yield equal decisions, two schedulers fed
            # the same request stream stay bit-identical to each other
            seed_key = policy_key(self.policy, request.mode)
            pkey = f"routed|{policy_key(policy, request.mode)}"
        else:
            policy = request.policy if request.policy is not None else self.policy
            seed_key = pkey = policy_key(policy, request.mode)
        solve_seed = derive_seed(
            root_seed,
            "repro.service",
            {"fingerprint": adapter.fingerprint, "policy": seed_key},
        )
        result_key = f"{adapter.fingerprint}|{solve_seed}|{pkey}"

        cached = self.cache.get_result(result_key) if request.deadline_ms > 0 else None
        if cached is not None:
            self.metrics.incr("cache.result_hits")
            result = self._finish(request, cached, start, cache_hit=True)
            return result
        self.metrics.incr("cache.result_misses")

        outcome = run_chain(
            adapter,
            policy,
            deadline_s=request.deadline_ms / 1000.0,
            seed=solve_seed,
            mode=request.mode,
        )
        if not outcome.deadline_exceeded:
            # only deterministic (untruncated) outcomes may be reused
            self.cache.put_result(result_key, outcome)
        if decision is not None:
            # online learning: observed stage runtimes/validity update
            # the cost model; router counters land in the service
            # metrics so the process pool merges them like any other
            self.routing.observe(decision, outcome, self.metrics)
        for entry in outcome.stage_trace:
            self.metrics.observe(f"stage_seconds.{entry['stage']}", entry["seconds"])
        return self._finish(request, outcome, start, cache_hit=False)

    def reject(self, request: OptimizationRequest, reason: str) -> OptimizationResult:
        """Admission-control rejection (also counted in the metrics)."""
        self.metrics.incr("requests_total")
        self.metrics.incr("requests_rejected")
        return OptimizationResult(
            request_id=request.request_id,
            kind=request.kind,
            status="rejected",
            reject_reason=reason,
        )

    def stats(self) -> Dict:
        """Metrics + cache snapshot for dashboards and the CLI."""
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = self.cache.stats()
        snapshot["uptime_seconds"] = time.perf_counter() - self._started
        if self.routing is not None:
            from repro.routing.router import routing_section

            snapshot["routing"] = routing_section(
                snapshot,
                self.routing.model.snapshot(),
                [spec.solver for spec in self.routing.candidates],
            )
        return snapshot

    def state(self) -> Dict:
        """Raw mergeable state (JSON-safe) for cross-process aggregation.

        Worker processes ship this to the parent, which folds every
        worker into one :meth:`stats`-shaped report via
        :func:`repro.service.metrics.merge_metric_states` — the fix for
        multi-process serving otherwise reporting only the parent's
        (empty) counters.
        """
        state = {
            "metrics": self.metrics.state(),
            "cache": self.cache.stats(),
            "uptime_seconds": time.perf_counter() - self._started,
        }
        if self.routing is not None:
            state["routing"] = self.routing.state()
        return state

    # ------------------------------------------------------------------
    def _compiled_adapter(self, request: OptimizationRequest):
        probe = make_adapter(request.kind, request.problem)
        cached = self.cache.get_compiled(probe.fingerprint)
        if cached is not None:
            self.metrics.incr("cache.compile_hits")
            return cached
        self.metrics.incr("cache.compile_misses")
        probe.bqm()  # compile eagerly so the cached adapter is immutable
        probe.compiled()  # array-compiled kernels, same cache entry
        self.cache.put_compiled(probe.fingerprint, probe)
        return probe

    def _finish(
        self, request: OptimizationRequest, outcome, start: float, cache_hit: bool
    ) -> OptimizationResult:
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.metrics.incr("requests_ok")
        self.metrics.incr(f"served_by.{outcome.served_by}")
        if outcome.deadline_exceeded:
            self.metrics.incr("deadline_exceeded")
        self.metrics.observe("latency_ms", elapsed_ms)
        return OptimizationResult(
            request_id=request.request_id,
            kind=request.kind,
            status="ok",
            plan=dict(outcome.plan),
            cost=outcome.cost,
            energy=outcome.energy,
            valid=outcome.valid,
            served_by=outcome.served_by,
            deadline_exceeded=outcome.deadline_exceeded,
            cache_hit=cache_hit,
            elapsed_ms=elapsed_ms,
            stage_trace=outcome.stage_trace,
        )


class SchedulerBase:
    """Admission control + in-flight coalescing, backend-agnostic.

    Both scheduler backends — the thread pool below and the process
    pool in :mod:`repro.server.pool` — share this front end:

    * **admission control**: ``queue_limit`` bounds the number of
      admitted-but-unfinished requests; beyond it, :meth:`submit`
      resolves immediately to a ``rejected`` result naming the
      saturation reason (the gateway maps this to HTTP 503);
    * **request coalescing**: while a solve for some
      :func:`coalesce_key` is in flight, duplicate submissions do not
      enqueue — they attach to the primary's future and receive its
      result re-addressed under their own request id.  Followers
      consume no worker and no queue slot.  Counted as
      ``coalesce.hits`` / ``coalesce.misses`` in the scheduler section
      of :meth:`stats`.

    Subclasses provide ``_dispatch`` (actually start one solve),
    ``_rejected`` (build/record a rejection) and ``_coalesce_key``.
    """

    backend = ""

    def __init__(
        self,
        workers: Optional[int] = None,
        queue_limit: Optional[int] = None,
        coalesce: bool = True,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.queue_limit = queue_limit
        self.coalesce = bool(coalesce)
        self.scheduler_metrics = Metrics()
        # reentrant: a fast completion may run _release from within the
        # submitting thread's add_done_callback while submit holds it
        self._lock = RLock()
        self._in_flight = 0
        self._flights: Dict[str, "Future[OptimizationResult]"] = {}

    # ------------------------------------------------------------------
    def submit(self, request: OptimizationRequest) -> "Future[OptimizationResult]":
        """Admit (or reject, or coalesce) one request; returns a future."""
        key = self._coalesce_key(request) if self.coalesce else None
        with self._lock:
            if key is not None:
                primary = self._flights.get(key)
                if primary is not None:
                    self.scheduler_metrics.incr("coalesce.hits")
                    return _follow(primary, request.request_id)
                self.scheduler_metrics.incr("coalesce.misses")
            if self.queue_limit is not None and self._in_flight >= self.queue_limit:
                reason = (
                    f"queue saturated: {self._in_flight} request(s) in flight "
                    f"(limit {self.queue_limit})"
                )
                future: "Future[OptimizationResult]" = Future()
                future.set_result(self._rejected(request, reason))
                return future
            self._in_flight += 1
            future = self._dispatch(request)
            if key is not None:
                self._flights[key] = future
            future.add_done_callback(lambda _f: self._release(key))
        return future

    def run(self, requests: Sequence[OptimizationRequest]) -> List[OptimizationResult]:
        """Submit a whole workload; results come back in request order."""
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    def stats(self) -> Dict:
        """One aggregated report: service metrics + a scheduler section."""
        raise NotImplementedError

    def shutdown(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "SchedulerBase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def _release(self, key: Optional[str]) -> None:
        with self._lock:
            self._in_flight -= 1
            if key is not None:
                self._flights.pop(key, None)

    def _scheduler_section(self) -> Dict:
        counters = self.scheduler_metrics.snapshot()["counters"]
        hits = counters.get("coalesce.hits", 0)
        misses = counters.get("coalesce.misses", 0)
        lookups = hits + misses
        with self._lock:
            in_flight = self._in_flight
        return {
            "backend": self.backend,
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "in_flight": in_flight,
            "coalesce": {
                "enabled": self.coalesce,
                "hits": hits,
                "misses": misses,
                "hit_rate": (hits / lookups) if lookups else 0.0,
            },
        }

    # -- backend hooks -------------------------------------------------
    def _dispatch(self, request: OptimizationRequest) -> "Future[OptimizationResult]":
        raise NotImplementedError

    def _rejected(self, request: OptimizationRequest, reason: str) -> OptimizationResult:
        raise NotImplementedError

    def _coalesce_key(self, request: OptimizationRequest) -> str:
        raise NotImplementedError


def _follow(
    primary: "Future[OptimizationResult]", request_id: str
) -> "Future[OptimizationResult]":
    """A future resolving to the primary's result under another id."""
    follower: "Future[OptimizationResult]" = Future()

    def _copy(done: "Future[OptimizationResult]") -> None:
        exc = done.exception()
        if exc is not None:
            follower.set_exception(exc)
        else:
            follower.set_result(done.result().with_request_id(request_id))

    primary.add_done_callback(_copy)
    return follower


class BatchScheduler(SchedulerBase):
    """Run many in-flight requests on a thread pool with admission control.

    The in-process backend: cheap to spin up and fine for I/O-light or
    cache-dominated traffic, but solver-bound workloads serialize on
    the GIL — use :class:`repro.server.ProcessPoolScheduler` to scale
    with cores.  Worker count resolves through the harness convention
    (explicit argument, then ``REPRO_BENCH_WORKERS``, then 1).
    """

    backend = "thread"

    def __init__(
        self,
        service: OptimizationService,
        workers: Optional[int] = None,
        queue_limit: Optional[int] = None,
        coalesce: bool = True,
    ) -> None:
        super().__init__(workers=workers, queue_limit=queue_limit, coalesce=coalesce)
        self.service = service
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-service"
        )

    def stats(self) -> Dict:
        """The service's snapshot plus the scheduler section."""
        stats = self.service.stats()
        stats["scheduler"] = self._scheduler_section()
        return stats

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    def _dispatch(self, request: OptimizationRequest) -> "Future[OptimizationResult]":
        return self._pool.submit(self.service.optimize, request)

    def _rejected(self, request: OptimizationRequest, reason: str) -> OptimizationResult:
        return self.service.reject(request, reason)

    def _coalesce_key(self, request: OptimizationRequest) -> str:
        return coalesce_key(
            request,
            self.service.seed,
            self.service.policy,
            routed=self.service.routing is not None,
        )
