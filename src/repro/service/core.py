"""The optimization service: deadline-aware serving with fallback chains.

:class:`OptimizationService` is embeddable and thread-safe: any number
of threads may call :meth:`~OptimizationService.optimize` concurrently
against shared caches and metrics.  :class:`BatchScheduler` adds a
worker pool with admission control on top — a bounded in-flight count,
rejecting excess requests with a reason instead of queueing unboundedly.

Determinism contract: a request's solve seed is derived (harness
SHA-256 scheme) from the root seed, the problem's content fingerprint,
and the policy — *not* from request ids or arrival order.  Two requests
carrying the same problem therefore produce identical plans and stage
assignments whether they run serially, concurrently, or get served
from the result cache, and a rerun of a whole workload with the same
root seed reproduces it plan-for-plan (as long as every stage reached
completes within its deadline slice).
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from threading import Lock
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness import derive_seed, resolve_workers
from repro.service.cache import CompilationCache
from repro.service.chain import StageSpec, default_policy, policy_key, run_chain
from repro.service.metrics import Metrics
from repro.service.problems import make_adapter
from repro.service.request import OptimizationRequest, OptimizationResult

__all__ = ["BatchScheduler", "OptimizationService"]


class OptimizationService:
    """Serve MQO / join-ordering requests under per-request deadlines."""

    def __init__(
        self,
        policy: Optional[Sequence[StageSpec]] = None,
        seed: int = 0,
        compiled_capacity: int = 256,
        result_capacity: int = 1024,
    ) -> None:
        self.policy: Tuple[StageSpec, ...] = (
            tuple(policy) if policy is not None else default_policy()
        )
        self.seed = int(seed)
        self.cache = CompilationCache(compiled_capacity, result_capacity)
        self.metrics = Metrics()
        self._started = time.perf_counter()

    # ------------------------------------------------------------------
    def optimize(self, request: OptimizationRequest) -> OptimizationResult:
        """Serve one request: best-effort plan within its deadline."""
        start = time.perf_counter()
        self.metrics.incr("requests_total")
        self.metrics.incr(f"requests_kind.{request.kind}")

        policy = request.policy if request.policy is not None else self.policy
        pkey = policy_key(policy, request.mode)
        adapter = self._compiled_adapter(request)
        root_seed = self.seed if request.seed is None else int(request.seed)
        solve_seed = derive_seed(
            root_seed,
            "repro.service",
            {"fingerprint": adapter.fingerprint, "policy": pkey},
        )
        result_key = f"{adapter.fingerprint}|{solve_seed}|{pkey}"

        cached = self.cache.get_result(result_key) if request.deadline_ms > 0 else None
        if cached is not None:
            self.metrics.incr("cache.result_hits")
            result = self._finish(request, cached, start, cache_hit=True)
            return result
        self.metrics.incr("cache.result_misses")

        outcome = run_chain(
            adapter,
            policy,
            deadline_s=request.deadline_ms / 1000.0,
            seed=solve_seed,
            mode=request.mode,
        )
        if not outcome.deadline_exceeded:
            # only deterministic (untruncated) outcomes may be reused
            self.cache.put_result(result_key, outcome)
        for entry in outcome.stage_trace:
            self.metrics.observe(f"stage_seconds.{entry['stage']}", entry["seconds"])
        return self._finish(request, outcome, start, cache_hit=False)

    def reject(self, request: OptimizationRequest, reason: str) -> OptimizationResult:
        """Admission-control rejection (also counted in the metrics)."""
        self.metrics.incr("requests_total")
        self.metrics.incr("requests_rejected")
        return OptimizationResult(
            request_id=request.request_id,
            kind=request.kind,
            status="rejected",
            reject_reason=reason,
        )

    def stats(self) -> Dict:
        """Metrics + cache snapshot for dashboards and the CLI."""
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = self.cache.stats()
        snapshot["uptime_seconds"] = time.perf_counter() - self._started
        return snapshot

    # ------------------------------------------------------------------
    def _compiled_adapter(self, request: OptimizationRequest):
        probe = make_adapter(request.kind, request.problem)
        cached = self.cache.get_compiled(probe.fingerprint)
        if cached is not None:
            self.metrics.incr("cache.compile_hits")
            return cached
        self.metrics.incr("cache.compile_misses")
        probe.bqm()  # compile eagerly so the cached adapter is immutable
        probe.compiled()  # array-compiled kernels, same cache entry
        self.cache.put_compiled(probe.fingerprint, probe)
        return probe

    def _finish(
        self, request: OptimizationRequest, outcome, start: float, cache_hit: bool
    ) -> OptimizationResult:
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.metrics.incr("requests_ok")
        self.metrics.incr(f"served_by.{outcome.served_by}")
        if outcome.deadline_exceeded:
            self.metrics.incr("deadline_exceeded")
        self.metrics.observe("latency_ms", elapsed_ms)
        return OptimizationResult(
            request_id=request.request_id,
            kind=request.kind,
            status="ok",
            plan=dict(outcome.plan),
            cost=outcome.cost,
            energy=outcome.energy,
            valid=outcome.valid,
            served_by=outcome.served_by,
            deadline_exceeded=outcome.deadline_exceeded,
            cache_hit=cache_hit,
            elapsed_ms=elapsed_ms,
            stage_trace=outcome.stage_trace,
        )


class BatchScheduler:
    """Run many in-flight requests on a worker pool with admission control.

    ``queue_limit`` bounds the number of admitted-but-unfinished
    requests; beyond it, :meth:`submit` resolves immediately to a
    ``rejected`` result naming the saturation reason.  Worker count
    resolves through the harness convention (explicit argument, then
    ``REPRO_BENCH_WORKERS``, then 1).
    """

    def __init__(
        self,
        service: OptimizationService,
        workers: Optional[int] = None,
        queue_limit: Optional[int] = None,
    ) -> None:
        self.service = service
        self.workers = resolve_workers(workers)
        self.queue_limit = queue_limit
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-service"
        )
        self._lock = Lock()
        self._in_flight = 0

    # ------------------------------------------------------------------
    def submit(self, request: OptimizationRequest) -> "Future[OptimizationResult]":
        """Admit (or reject) one request; returns a future result."""
        with self._lock:
            if self.queue_limit is not None and self._in_flight >= self.queue_limit:
                reason = (
                    f"queue saturated: {self._in_flight} request(s) in flight "
                    f"(limit {self.queue_limit})"
                )
                future: "Future[OptimizationResult]" = Future()
                future.set_result(self.service.reject(request, reason))
                return future
            self._in_flight += 1
        return self._pool.submit(self._run, request)

    def run(self, requests: Sequence[OptimizationRequest]) -> List[OptimizationResult]:
        """Submit a whole workload; results come back in request order."""
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def _run(self, request: OptimizationRequest) -> OptimizationResult:
        try:
            return self.service.optimize(request)
        finally:
            with self._lock:
                self._in_flight -= 1
