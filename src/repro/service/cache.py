"""Thread-safe LRU caches for compiled problems and served results.

Two sections, both keyed by content hashes (the harness's
fingerprinting approach — SHA-256 over canonical JSON):

* **compiled** — problem fingerprint → problem adapter holding the
  built QUBO, so repeated requests for the same instance skip QUBO
  construction entirely;
* **results** — (fingerprint, solve seed, policy) → the served plan,
  so an identical request is answered from memory.  Because solve
  seeds derive from problem content (see
  :meth:`repro.service.core.OptimizationService.optimize`), a result
  restored from this cache is bit-identical to what the fallback chain
  would recompute — reuse never changes plans or stage assignments,
  which keeps concurrent runs reproducible.  Results that were
  deadline-truncated are not stored, so only deterministic outcomes
  propagate.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional

__all__ = ["CompilationCache", "merge_cache_stats"]


class _LruSection:
    """One bounded LRU map (not thread-safe on its own)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self.entries: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[Any]:
        if key in self.entries:
            self.entries.move_to_end(key)
            self.hits += 1
            return self.entries[key]
        self.misses += 1
        return None

    def put(self, key: str, value: Any) -> None:
        self.entries[key] = value
        self.entries.move_to_end(key)
        while len(self.entries) > self.capacity:
            self.entries.popitem(last=False)

    def stats(self) -> Dict[str, float]:
        lookups = self.hits + self.misses
        return {
            "size": len(self.entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }


class CompilationCache:
    """Compiled-problem and served-result cache behind one lock."""

    def __init__(self, compiled_capacity: int = 256, result_capacity: int = 1024) -> None:
        self._lock = threading.Lock()
        self._compiled = _LruSection(compiled_capacity)
        self._results = _LruSection(result_capacity)

    # -- compiled adapters ---------------------------------------------
    def get_compiled(self, fingerprint: str) -> Optional[Any]:
        with self._lock:
            return self._compiled.get(fingerprint)

    def put_compiled(self, fingerprint: str, adapter: Any) -> None:
        with self._lock:
            self._compiled.put(fingerprint, adapter)

    # -- served results ------------------------------------------------
    def get_result(self, key: str) -> Optional[Any]:
        with self._lock:
            return self._results.get(key)

    def put_result(self, key: str, outcome: Any) -> None:
        with self._lock:
            self._results.put(key, outcome)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {
                "compiled": self._compiled.stats(),
                "results": self._results.stats(),
            }

    def clear(self) -> None:
        with self._lock:
            self._compiled.entries.clear()
            self._results.entries.clear()

    def reset_counters(self) -> None:
        """Zero hit/miss counters but keep the cached entries.

        Worker warmup compiles problems through the normal path; this
        lets the entries stay warm while the serving report starts from
        clean counters.
        """
        with self._lock:
            for section in (self._compiled, self._results):
                section.hits = 0
                section.misses = 0


def merge_cache_stats(
    stats_list: Iterable[Dict[str, Dict[str, float]]],
) -> Dict[str, Dict[str, float]]:
    """Aggregate per-process :meth:`CompilationCache.stats` snapshots.

    Sizes, capacities, hits and misses sum across workers (each worker
    process owns an independent cache, so the fleet's total capacity is
    the sum) and the hit rate is recomputed from the summed lookups —
    never averaged, which would weight idle workers equally with busy
    ones.
    """
    merged: Dict[str, Dict[str, float]] = {}
    for stats in stats_list:
        for section, values in stats.items():
            into = merged.setdefault(
                section, {"size": 0, "capacity": 0, "hits": 0, "misses": 0}
            )
            for key in ("size", "capacity", "hits", "misses"):
                into[key] += int(values.get(key, 0))
    for values in merged.values():
        lookups = values["hits"] + values["misses"]
        values["hit_rate"] = (values["hits"] / lookups) if lookups else 0.0
    return merged
