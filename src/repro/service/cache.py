"""Thread-safe LRU caches for compiled problems and served results.

Two sections, both keyed by content hashes (the harness's
fingerprinting approach — SHA-256 over canonical JSON):

* **compiled** — problem fingerprint → problem adapter holding the
  built QUBO, so repeated requests for the same instance skip QUBO
  construction entirely;
* **results** — (fingerprint, solve seed, policy) → the served plan,
  so an identical request is answered from memory.  Because solve
  seeds derive from problem content (see
  :meth:`repro.service.core.OptimizationService.optimize`), a result
  restored from this cache is bit-identical to what the fallback chain
  would recompute — reuse never changes plans or stage assignments,
  which keeps concurrent runs reproducible.  Results that were
  deadline-truncated are not stored, so only deterministic outcomes
  propagate.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

__all__ = ["CompilationCache"]


class _LruSection:
    """One bounded LRU map (not thread-safe on its own)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self.entries: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[Any]:
        if key in self.entries:
            self.entries.move_to_end(key)
            self.hits += 1
            return self.entries[key]
        self.misses += 1
        return None

    def put(self, key: str, value: Any) -> None:
        self.entries[key] = value
        self.entries.move_to_end(key)
        while len(self.entries) > self.capacity:
            self.entries.popitem(last=False)

    def stats(self) -> Dict[str, float]:
        lookups = self.hits + self.misses
        return {
            "size": len(self.entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }


class CompilationCache:
    """Compiled-problem and served-result cache behind one lock."""

    def __init__(self, compiled_capacity: int = 256, result_capacity: int = 1024) -> None:
        self._lock = threading.Lock()
        self._compiled = _LruSection(compiled_capacity)
        self._results = _LruSection(result_capacity)

    # -- compiled adapters ---------------------------------------------
    def get_compiled(self, fingerprint: str) -> Optional[Any]:
        with self._lock:
            return self._compiled.get(fingerprint)

    def put_compiled(self, fingerprint: str, adapter: Any) -> None:
        with self._lock:
            self._compiled.put(fingerprint, adapter)

    # -- served results ------------------------------------------------
    def get_result(self, key: str) -> Optional[Any]:
        with self._lock:
            return self._results.get(key)

    def put_result(self, key: str, outcome: Any) -> None:
        with self._lock:
            self._results.put(key, outcome)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {
                "compiled": self._compiled.stats(),
                "results": self._results.stats(),
            }

    def clear(self) -> None:
        with self._lock:
            self._compiled.entries.clear()
            self._results.entries.clear()
