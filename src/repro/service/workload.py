"""Deterministic synthetic request workloads for the service bench.

A workload is a pure function of its arguments: problem shapes, seeds
and the duplicate pattern all derive from one root seed, so
``serve-bench`` reruns are reproducible end to end.  A configurable
fraction of requests repeats an earlier problem instance verbatim
(fresh request id, same content), which is what exercises the service's
compilation and result caches.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.joinorder.generators import chain_query, cycle_query, star_query
from repro.mqo.generator import random_mqo_problem
from repro.service.chain import StageSpec
from repro.service.request import (
    KIND_JOIN_ORDER,
    KIND_MQO,
    KIND_SQL,
    OptimizationRequest,
)

__all__ = ["synthetic_requests"]

_JOIN_SHAPES = (chain_query, star_query, cycle_query)


def synthetic_requests(
    count: int,
    seed: int = 0,
    deadline_ms: float = 200.0,
    mqo_fraction: float = 0.5,
    duplicate_fraction: float = 0.25,
    sql_fraction: float = 0.0,
    queries_range: Tuple[int, int] = (4, 8),
    plans_per_query_range: Tuple[int, int] = (2, 3),
    relations_range: Tuple[int, int] = (4, 7),
    sql_tables_range: Tuple[int, int] = (3, 6),
    policy: Optional[Sequence[StageSpec]] = None,
    mode: str = "first_valid",
) -> List[OptimizationRequest]:
    """A mixed MQO + join-ordering (+ optional raw-SQL) workload.

    ``sql_fraction`` carves its share out of the non-MQO, non-duplicate
    requests: those arrive as ``kind="sql"`` payloads carrying generated
    TPC-H-style query text, so the bench exercises the full
    parse → bind → extract path inside the service.
    """
    rng = np.random.default_rng(seed)
    policy = None if policy is None else tuple(policy)
    requests: List[OptimizationRequest] = []
    for index in range(count):
        if requests and float(rng.random()) < duplicate_fraction:
            # repeat an earlier problem verbatim under a fresh id
            earlier = requests[int(rng.integers(0, len(requests)))]
            requests.append(earlier.with_id(f"req-{index:04d}"))
            continue
        if float(rng.random()) < sql_fraction:
            from repro.sql import SqlQuery, generate_query, tpch_catalog

            kind = KIND_SQL
            statement = generate_query(
                seed=int(rng.integers(0, 2**31)),
                min_tables=sql_tables_range[0],
                max_tables=sql_tables_range[1],
            )
            problem = SqlQuery(sql=str(statement), catalog=tpch_catalog())
        elif float(rng.random()) < mqo_fraction:
            kind = KIND_MQO
            problem = random_mqo_problem(
                int(rng.integers(queries_range[0], queries_range[1] + 1)),
                int(rng.integers(plans_per_query_range[0], plans_per_query_range[1] + 1)),
                seed=int(rng.integers(0, 2**31)),
            )
        else:
            kind = KIND_JOIN_ORDER
            maker = _JOIN_SHAPES[int(rng.integers(0, len(_JOIN_SHAPES)))]
            problem = maker(
                int(rng.integers(relations_range[0], relations_range[1] + 1)),
                seed=int(rng.integers(0, 2**31)),
            )
        requests.append(
            OptimizationRequest(
                request_id=f"req-{index:04d}",
                kind=kind,
                problem=problem,
                deadline_ms=deadline_ms,
                seed=seed,
                policy=policy,
                mode=mode,
            )
        )
    return requests
