"""Deadline-aware query-optimization serving (the repo's service layer).

The paper frames quantum query optimization as a drop-in for a DBMS
optimizer; the follow-up real-time literature (arXiv:2601.12123,
arXiv:2602.14263) makes the engineering question concrete: serve
optimization requests under a latency budget, picking the best solver
that fits the deadline.  This package composes the repository's solver
registry (PR 2) and harness primitives (PR 1) into that serving layer:

* :mod:`~repro.service.request` — ``OptimizationRequest`` /
  ``OptimizationResult``, JSON-serializable via
  :mod:`repro.serialization`;
* :mod:`~repro.service.chain` — fallback-chain execution with
  per-stage time budgets and graceful degradation;
* :mod:`~repro.service.problems` — per-problem-kind adapters (QUBO
  compilation, decoding, guaranteed classical fallback);
* :mod:`~repro.service.cache` — content-hash keyed compilation and
  result caches;
* :mod:`~repro.service.core` — the thread-safe
  :class:`OptimizationService` and the admission-controlled
  :class:`BatchScheduler`;
* :mod:`~repro.service.metrics` — counters and latency histograms
  behind a ``stats()`` snapshot;
* :mod:`~repro.service.workload` — deterministic synthetic workloads
  for ``python -m repro serve-bench``.
"""

from repro.service.cache import CompilationCache, merge_cache_stats
from repro.service.chain import (
    ChainOutcome,
    Deadline,
    StageSpec,
    default_policy,
    parse_policy,
    run_chain,
)
from repro.service.core import (
    BatchScheduler,
    OptimizationService,
    SchedulerBase,
    coalesce_key,
)
from repro.service.metrics import Histogram, Metrics, merge_metric_states
from repro.service.problems import JoinOrderAdapter, MqoAdapter, make_adapter
from repro.service.request import (
    OptimizationRequest,
    OptimizationResult,
    request_from_dict,
    request_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.service.workload import synthetic_requests

__all__ = [
    "BatchScheduler",
    "ChainOutcome",
    "CompilationCache",
    "Deadline",
    "Histogram",
    "JoinOrderAdapter",
    "Metrics",
    "MqoAdapter",
    "OptimizationRequest",
    "OptimizationResult",
    "OptimizationService",
    "SchedulerBase",
    "StageSpec",
    "coalesce_key",
    "default_policy",
    "make_adapter",
    "merge_cache_stats",
    "merge_metric_states",
    "parse_policy",
    "request_from_dict",
    "request_to_dict",
    "result_from_dict",
    "result_to_dict",
    "run_chain",
    "synthetic_requests",
]
