"""Deadline-aware fallback-chain execution.

A *policy* is an ordered tuple of :class:`StageSpec` entries — registry
solver names with options and a deadline share — walked by
:func:`run_chain` under a wall-clock budget:

* each stage receives ``remaining × weight / remaining_weights`` of the
  budget, so unused time rolls forward to later stages;
* stages whose solver supports cooperative ``time_budget`` solving
  (:func:`repro.hybrid.supports_time_budget`) are handed their slice,
  others are bounded at stage boundaries only;
* the best **valid** plan seen so far is always returned; when the
  deadline expires mid-chain the remaining stages are skipped and the
  result is flagged ``deadline_exceeded``;
* when no stage produced a valid plan (or the deadline is zero or
  negative), the problem adapter's guaranteed classical fallback serves
  the request — degradation, never an exception.

Per-stage seeds are derived with the harness's SHA-256 scheme from the
chain seed and the stage's position, so a rerun with the same seed
replays identical stage results regardless of wall-clock jitter (as
long as every stage it reaches completes within its slice).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.harness import derive_seed
from repro.hybrid.registry import make_solver, supports_compiled, supports_time_budget

__all__ = [
    "ChainOutcome",
    "Deadline",
    "StageSpec",
    "default_policy",
    "parse_policy",
    "policy_key",
    "run_chain",
]

#: stage name reported when the guaranteed classical fallback served
FALLBACK_STAGE = "fallback"

#: serving-tuned default chain: strongest solver first, each stage
#: cheaper than the one before, greedy descent as the last resort.
_DEFAULT_STAGES = (
    (
        "hybrid",
        {"sub_size": 10, "max_rounds": 3, "stall_rounds": 1, "restarts": 1, "sub_reads": 2},
        4.0,
    ),
    ("tabu", {"num_reads": 4}, 2.0),
    ("sa", {"num_reads": 6, "num_sweeps": 120}, 2.0),
    ("greedy", {"restarts": 6}, 1.0),
)


@dataclass(frozen=True)
class StageSpec:
    """One stage of a fallback policy."""

    solver: str
    #: frozen as sorted key/value pairs so specs are hashable
    options: Tuple[Tuple[str, Any], ...] = ()
    #: share of the deadline relative to the other stages
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(
                f"stage {self.solver!r} weight must be positive, got {self.weight}"
            )

    def options_dict(self) -> Dict[str, Any]:
        return dict(self.options)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "solver": self.solver,
            "options": self.options_dict(),
            "weight": self.weight,
        }

    @classmethod
    def from_any(
        cls, spec: Union[str, Mapping[str, Any], "StageSpec"]
    ) -> "StageSpec":
        if isinstance(spec, StageSpec):
            return spec
        if isinstance(spec, str):
            name = spec.strip()
            for solver, options, weight in _DEFAULT_STAGES:
                if solver == name:
                    return cls(solver, tuple(sorted(options.items())), weight)
            return cls(name)
        options = dict(spec.get("options", {}))
        return cls(
            solver=str(spec["solver"]),
            options=tuple(sorted(options.items())),
            weight=float(spec.get("weight", 1.0)),
        )


def default_policy() -> Tuple[StageSpec, ...]:
    """The serving default: ``hybrid → tabu → sa → greedy``."""
    return tuple(
        StageSpec(solver, tuple(sorted(options.items())), weight)
        for solver, options, weight in _DEFAULT_STAGES
    )


def parse_policy(
    policy: Union[str, Iterable[Union[str, Mapping[str, Any], StageSpec]]],
) -> Tuple[StageSpec, ...]:
    """Parse ``"hybrid,tabu,greedy"`` or a spec list into a policy."""
    if isinstance(policy, str):
        parts = [p for p in (s.strip() for s in policy.split(",")) if p]
    else:
        parts = list(policy)
    if not parts:
        raise ConfigurationError("a fallback policy needs at least one stage")
    return tuple(StageSpec.from_any(p) for p in parts)


def policy_key(policy: Sequence[StageSpec], mode: str) -> str:
    """Canonical string identifying a policy + chain mode (cache keys)."""
    stages = ";".join(
        f"{s.solver}({','.join(f'{k}={v!r}' for k, v in s.options)})*{s.weight:g}"
        for s in policy
    )
    return f"{mode}|{stages}"


class Deadline:
    """A monotonic wall-clock budget."""

    def __init__(self, seconds: float) -> None:
        self.seconds = float(seconds)
        self._start = time.monotonic()

    def elapsed(self) -> float:
        return time.monotonic() - self._start

    def remaining(self) -> float:
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0.0


@dataclass(frozen=True)
class ChainOutcome:
    """What a chain run produced."""

    plan: Dict[str, Any]
    cost: float
    energy: Optional[float]
    valid: bool
    served_by: str
    deadline_exceeded: bool
    seconds: float
    stage_trace: Tuple[Dict[str, Any], ...]


def run_chain(
    adapter,
    policy: Sequence[StageSpec],
    deadline_s: float,
    seed: int,
    mode: str = "first_valid",
) -> ChainOutcome:
    """Walk ``policy`` over ``adapter``'s problem within ``deadline_s``.

    See the module docstring for the budget and degradation contract.
    ``adapter`` is a problem adapter from :mod:`repro.service.problems`.
    """
    deadline = Deadline(deadline_s)
    trace: List[Dict[str, Any]] = []
    best: Optional[Dict[str, Any]] = None
    deadline_exceeded = False

    if deadline_s > 0:
        weights = [spec.weight for spec in policy]
        for index, spec in enumerate(policy):
            remaining = deadline.remaining()
            if remaining <= 0.0:
                # expired mid-chain: skip the remaining stages
                deadline_exceeded = True
                break
            # this stage's slice; unused time rolls forward
            stage_budget = remaining * weights[index] / sum(weights[index:])
            stage_seed = derive_seed(
                seed,
                "repro.service.chain",
                {"stage": spec.solver, "index": index},
            )
            entry = _run_stage(adapter, spec, stage_seed, stage_budget)
            trace.append(entry)
            if entry["valid"] and (best is None or entry["cost"] < best["cost"] - 1e-12):
                best = entry
            if mode == "first_valid" and entry["valid"]:
                break
    else:
        deadline_exceeded = True

    if best is None:
        # nothing valid in time: guaranteed classical fallback
        start = time.perf_counter()
        plan, cost = adapter.fallback(seed)
        entry = {
            "stage": FALLBACK_STAGE,
            "seconds": time.perf_counter() - start,
            "energy": None,
            "cost": cost,
            "valid": True,
            "plan": plan,
        }
        trace.append(entry)
        best = entry

    return ChainOutcome(
        plan=best["plan"],
        cost=float(best["cost"]),
        energy=best["energy"],
        valid=bool(best["valid"]),
        served_by=best["stage"],
        deadline_exceeded=bool(deadline_exceeded or deadline.expired()),
        seconds=deadline.elapsed(),
        stage_trace=tuple(
            {k: v for k, v in entry.items() if k != "plan"} for entry in trace
        ),
    )


def _run_stage(adapter, spec: StageSpec, seed: int, budget_s: float) -> Dict[str, Any]:
    """Execute one stage and decode its sample into a plan."""
    start = time.perf_counter()
    solver = make_solver(spec.solver, **spec.options_dict())
    kwargs: Dict[str, Any] = {}
    if supports_time_budget(solver):
        kwargs["time_budget"] = budget_s
    if supports_compiled(solver) and hasattr(adapter, "compiled"):
        kwargs["compiled"] = adapter.compiled()
    result = solver.solve(adapter.bqm(), seed=seed, **kwargs)
    plan, cost, valid = adapter.decode(result.sample)
    seconds = time.perf_counter() - start
    return {
        "stage": spec.solver,
        "seconds": seconds,
        # a cooperative solver that used (almost) its whole slice was
        # budget-truncated: its runtime is a *lower bound* on what the
        # solver wanted, which the routing cost model must not treat
        # as the solver's intrinsic speed
        "truncated": "time_budget" in kwargs and seconds >= 0.9 * budget_s,
        "energy": float(result.energy),
        "cost": cost,
        "valid": valid,
        "plan": plan,
    }
