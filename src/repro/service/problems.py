"""Problem adapters: one QUBO compilation + decode path per problem kind.

The fallback chain is problem-agnostic — it only needs a BQM to hand to
registry solvers, a decoder from raw samples to domain plans, and a
guaranteed-valid classical fallback.  Adapters package those three
things per problem family:

* :class:`MqoAdapter` — MQO QUBO (paper Sec. 5.1); a sample decodes to
  a plan selection, valid iff exactly one plan per query; fallback is
  the greedy locally-optimal selection.
* :class:`JoinOrderAdapter` — the direct permutation-matrix QUBO
  (:mod:`repro.joinorder.direct_qubo`, quadratically fewer qubits than
  the paper's two-step pipeline, so it fits serving latencies);
  a sample decodes to a join order, valid iff the one-hot constraints
  hold; fallback is the GOO-style greedy order.

``build``/``bqm`` are where *compilation* happens — the expensive,
request-independent part the service's compilation cache reuses across
requests for the same problem (content-hash fingerprint keys, same
scheme as the harness cache).
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.exceptions import ProblemError
from repro.joinorder.classical import solve_greedy
from repro.joinorder.cost import cout_cost
from repro.joinorder.direct_qubo import DirectJoinOrderQubo
from repro.joinorder.query_graph import QueryGraph
from repro.mqo.problem import MqoProblem
from repro.mqo.qubo import MqoQuboBuilder
from repro.mqo.solvers import repair_selection, solve_greedy_local
from repro.qubo.bqm import BinaryQuadraticModel
from repro.qubo.compiled import CompiledBQM, compile_bqm
from repro.serialization import (
    mqo_from_dict,
    mqo_to_dict,
    query_graph_from_dict,
    query_graph_to_dict,
    to_jsonable,
)

__all__ = [
    "JoinOrderAdapter",
    "KindSpec",
    "MqoAdapter",
    "kind_spec",
    "make_adapter",
    "problem_fingerprint",
    "register_problem_kind",
    "valid_kinds",
]


def problem_fingerprint(kind: str, payload_dict: Dict[str, Any]) -> str:
    """Content hash of a problem instance (the compilation-cache key)."""
    canonical = json.dumps(
        {"kind": kind, "problem": to_jsonable(payload_dict)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class MqoAdapter:
    """MQO requests: QUBO build, selection decode, greedy fallback."""

    kind = "mqo"

    def __init__(self, problem: MqoProblem, repair: bool = False) -> None:
        self.problem = problem
        #: repair invalid samples at decode time instead of falling
        #: through to the next stage (off by default: a stage must earn
        #: its answer for the fallback semantics to mean anything)
        self.repair = repair
        self._builder: Optional[MqoQuboBuilder] = None
        self._bqm: Optional[BinaryQuadraticModel] = None
        self._compiled: Optional[CompiledBQM] = None
        self.fingerprint = problem_fingerprint(self.kind, mqo_to_dict(problem))

    def bqm(self) -> BinaryQuadraticModel:
        """Compile (once) and return the QUBO."""
        if self._bqm is None:
            self._builder = MqoQuboBuilder(self.problem)
            self._bqm = self._builder.build()
        return self._bqm

    def compiled(self) -> CompiledBQM:
        """Array-compiled form of :meth:`bqm` (built once, cached)."""
        if self._compiled is None:
            self._compiled = compile_bqm(self.bqm())
        return self._compiled

    def decode(self, sample: Dict) -> Tuple[Dict[str, Any], float, bool]:
        """Sample → (plan payload, cost, valid)."""
        self.bqm()
        solution = self._builder.decode(sample, method="service")
        if not solution.valid and self.repair:
            repaired = repair_selection(self.problem, solution.selected_plans)
            cost = self.problem.execution_cost(repaired)
            return {"selected_plans": sorted(repaired)}, float(cost), True
        return (
            {"selected_plans": list(solution.selected_plans)},
            float(solution.cost),
            bool(solution.valid),
        )

    def fallback(self, seed: int) -> Tuple[Dict[str, Any], float]:
        """Guaranteed-valid cheapest path: greedy locally-optimal plans."""
        solution = solve_greedy_local(self.problem)
        return {"selected_plans": list(solution.selected_plans)}, float(solution.cost)

    def validate(self, plan: Dict[str, Any]) -> bool:
        """Is a returned plan payload a valid selection?"""
        return self.problem.is_valid_selection(plan.get("selected_plans", ()))


class JoinOrderAdapter:
    """Join-ordering requests over the direct (slack-free) QUBO."""

    kind = "join_order"

    def __init__(self, graph: QueryGraph) -> None:
        self.graph = graph
        self._builder = DirectJoinOrderQubo(graph)
        self._bqm: Optional[BinaryQuadraticModel] = None
        self._compiled: Optional[CompiledBQM] = None
        self.fingerprint = problem_fingerprint(self.kind, query_graph_to_dict(graph))

    def bqm(self) -> BinaryQuadraticModel:
        if self._bqm is None:
            self._bqm = self._builder.build()
        return self._bqm

    def compiled(self) -> CompiledBQM:
        """Array-compiled form of :meth:`bqm` (built once, cached)."""
        if self._compiled is None:
            self._compiled = compile_bqm(self.bqm())
        return self._compiled

    def decode(self, sample: Dict) -> Tuple[Dict[str, Any], float, bool]:
        try:
            result = self._builder.decode(sample, method="service")
        except ProblemError:
            # broken one-hots: no valid permutation in this sample
            return {"order": []}, float("inf"), False
        return {"order": list(result.order)}, float(result.cost), True

    def fallback(self, seed: int) -> Tuple[Dict[str, Any], float]:
        result = solve_greedy(self.graph)
        return {"order": list(result.order)}, float(result.cost)

    def validate(self, plan: Dict[str, Any]) -> bool:
        order = plan.get("order", ())
        try:
            self.graph.validate_permutation(list(order))
        except ProblemError:
            return False
        return True

    def cost_of(self, order) -> float:
        return cout_cost(self.graph, list(order))


# ----------------------------------------------------------------------
# problem-kind registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KindSpec:
    """Everything the service needs to know about one problem kind:
    the payload class requests must carry, its JSON round-trip, and the
    adapter that compiles/decodes it."""

    kind: str
    payload_cls: type
    to_dict: Callable[[Any], Dict[str, Any]]
    from_dict: Callable[[Dict[str, Any]], Any]
    adapter: Callable[[Any], Any]


_KINDS: Dict[str, KindSpec] = {}

#: kinds provided by packages we must not import eagerly (cycle /
#: startup-cost avoidance): first lookup triggers the import, whose
#: module-level ``register_problem_kind`` call fills the registry
_LAZY_KINDS: Dict[str, str] = {"sql": "repro.sql"}


def register_problem_kind(
    kind: str,
    payload_cls: type,
    to_dict: Callable[[Any], Dict[str, Any]],
    from_dict: Callable[[Dict[str, Any]], Any],
    adapter: Callable[[Any], Any],
    replace: bool = False,
) -> None:
    """Plug a new problem kind into the serving layer.

    After registration, :class:`~repro.service.request.OptimizationRequest`
    accepts ``kind`` with a ``payload_cls`` problem and the service
    compiles it through ``adapter`` (which must provide the
    ``bqm``/``compiled``/``decode``/``fallback``/``validate`` protocol
    plus a ``fingerprint`` attribute).
    """
    if kind in _KINDS and not replace:
        raise ProblemError(f"problem kind {kind!r} already registered")
    _KINDS[kind] = KindSpec(
        kind=kind,
        payload_cls=payload_cls,
        to_dict=to_dict,
        from_dict=from_dict,
        adapter=adapter,
    )


def kind_spec(kind: str) -> KindSpec:
    """Resolve a kind, lazily importing its provider package if needed."""
    if kind not in _KINDS and kind in _LAZY_KINDS:
        importlib.import_module(_LAZY_KINDS[kind])
    try:
        return _KINDS[kind]
    except KeyError:
        raise ProblemError(
            f"unknown problem kind {kind!r}; valid: {', '.join(valid_kinds())}"
        ) from None


def valid_kinds() -> Tuple[str, ...]:
    """Every addressable kind, registered or lazily importable."""
    return tuple(sorted(set(_KINDS) | set(_LAZY_KINDS)))


def make_adapter(kind: str, problem) -> Any:
    """Adapter for a request's problem kind."""
    return kind_spec(kind).adapter(problem)


register_problem_kind(
    kind=MqoAdapter.kind,
    payload_cls=MqoProblem,
    to_dict=mqo_to_dict,
    from_dict=mqo_from_dict,
    adapter=MqoAdapter,
)
register_problem_kind(
    kind=JoinOrderAdapter.kind,
    payload_cls=QueryGraph,
    to_dict=query_graph_to_dict,
    from_dict=query_graph_from_dict,
    adapter=JoinOrderAdapter,
)
