"""Lightweight in-process metrics for the optimization service.

Counters and latency histograms behind one lock, cheap enough to sit
on the request hot path.  :meth:`Metrics.snapshot` returns a plain
nested dictionary (JSON-ready via :func:`repro.serialization.to_jsonable`)
so the CLI can dump a stats block after a run and tests can assert on
exact counter values.

Percentiles use the nearest-rank method on the recorded values; the
per-histogram sample buffer is capped (default 65536 observations) to
bound memory on long-lived services — far above anything the bench
driver produces, so snapshots in this repo are exact.

For multi-process serving (:mod:`repro.server.pool`) metrics must be
*mergeable*: each worker process keeps its own :class:`Metrics`, ships
the raw :meth:`Metrics.state` (counters plus histogram reservoirs, not
pre-summarized percentiles) to the parent, and the parent folds every
worker into one report with :func:`merge_metric_states`.  Merging raw
states rather than snapshots is what keeps aggregated percentiles
exact: a p50 of per-worker p50s would be meaningless, whereas the
merged reservoir recomputes the true rank statistics.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["Histogram", "Metrics", "merge_metric_states", "percentile"]

_DEFAULT_CAPACITY = 65536


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        return float("nan")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


class Histogram:
    """A bounded reservoir of observations with summary statistics."""

    def __init__(self, capacity: int = _DEFAULT_CAPACITY) -> None:
        self.capacity = int(capacity)
        self._values: List[float] = []
        self._count = 0
        self._total = 0.0
        self._max: Optional[float] = None
        self._min: Optional[float] = None

    def record(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._total += value
        self._max = value if self._max is None else max(self._max, value)
        self._min = value if self._min is None else min(self._min, value)
        if len(self._values) < self.capacity:
            self._values.append(value)

    def snapshot(self) -> Dict[str, float]:
        if self._count == 0:
            return {"count": 0}
        return {
            "count": self._count,
            "mean": self._total / self._count,
            "min": self._min,
            "max": self._max,
            "p50": percentile(self._values, 50.0),
            "p95": percentile(self._values, 95.0),
            "p99": percentile(self._values, 99.0),
        }

    # -- cross-process merging -----------------------------------------
    def state(self) -> Dict[str, Any]:
        """Raw, mergeable state (JSON-safe): exact moments + reservoir."""
        return {
            "count": self._count,
            "total": self._total,
            "min": self._min,
            "max": self._max,
            "values": list(self._values),
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Counts, totals and extrema merge exactly; the reservoir
        concatenates up to this histogram's capacity (exact whenever the
        combined observation count fits, which covers every workload the
        bench drivers produce).
        """
        self._count += int(state["count"])
        self._total += float(state["total"])
        for bound, pick in (("max", max), ("min", min)):
            other = state.get(bound)
            if other is not None:
                ours = getattr(self, f"_{bound}")
                setattr(
                    self,
                    f"_{bound}",
                    float(other) if ours is None else pick(ours, float(other)),
                )
        room = self.capacity - len(self._values)
        if room > 0:
            self._values.extend(float(v) for v in state.get("values", ())[:room])


class Metrics:
    """Thread-safe named counters and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, Histogram] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(amount)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.record(value)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def reset(self) -> None:
        """Drop all counters and histograms (post-warmup zeroing)."""
        with self._lock:
            self._counters.clear()
            self._histograms.clear()

    def snapshot(self) -> Dict[str, Dict]:
        """All counters and histogram summaries, sorted by name."""
        with self._lock:
            return {
                "counters": {k: self._counters[k] for k in sorted(self._counters)},
                "histograms": {
                    k: self._histograms[k].snapshot()
                    for k in sorted(self._histograms)
                },
            }

    # -- cross-process merging -----------------------------------------
    def state(self) -> Dict[str, Dict]:
        """Raw mergeable state: counters plus histogram reservoirs."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "histograms": {
                    name: histogram.state()
                    for name, histogram in self._histograms.items()
                },
            }

    def merge_state(self, state: Dict[str, Dict]) -> None:
        """Fold another :class:`Metrics`'s :meth:`state` into this one."""
        with self._lock:
            for name, amount in state.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + int(amount)
            for name, hist_state in state.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram()
                histogram.merge_state(hist_state)


def merge_metric_states(states: Iterable[Dict[str, Dict]]) -> "Metrics":
    """One :class:`Metrics` holding the union of many raw states.

    This is how the process-pool scheduler aggregates per-worker
    counters and latency reservoirs into the single report that
    ``stats()`` exposes — counters sum, histograms recompute their
    percentiles over the combined observations.
    """
    merged = Metrics()
    for state in states:
        merged.merge_state(state)
    return merged
