"""Request/response model of the optimization service.

An :class:`OptimizationRequest` carries one problem instance (MQO or
join ordering), a wall-clock deadline, an optional seed and optional
solver-policy hints; an :class:`OptimizationResult` carries the
best-effort plan, which fallback stage produced it, whether the
deadline was hit and the full per-stage trace.  Both round-trip
through :mod:`repro.serialization` (payload kinds
``optimization_request`` / ``optimization_result``), so requests can
be shipped as JSON files to ``python -m repro optimize`` and responses
archived next to experiment results.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple, Union

from repro.exceptions import ProblemError
from repro.joinorder.query_graph import QueryGraph
from repro.mqo.problem import MqoProblem
from repro.serialization import register_serializer, to_jsonable
from repro.service.chain import StageSpec, parse_policy
from repro.service.problems import kind_spec

_FORMAT = 1

KIND_MQO = "mqo"
KIND_JOIN_ORDER = "join_order"
KIND_SQL = "sql"

#: chain modes — ``first_valid`` stops at the first stage that yields a
#: valid plan (classic fallback), ``exhaust`` runs every stage that
#: fits the deadline and keeps the best valid plan.
VALID_MODES = ("first_valid", "exhaust")

#: MqoProblem, QueryGraph, or any payload of a registered problem kind
#: (e.g. :class:`repro.sql.SqlQuery` for ``kind="sql"``)
ProblemPayload = Union[MqoProblem, QueryGraph, Any]


@dataclass(frozen=True)
class OptimizationRequest:
    """One optimization request: a problem plus serving constraints."""

    request_id: str
    kind: str
    problem: ProblemPayload
    #: wall-clock budget in milliseconds; zero/negative means "no time
    #: at all" and is served by the guaranteed classical fallback
    deadline_ms: float = 200.0
    #: root seed for this request (service default when ``None``)
    seed: Optional[int] = None
    #: solver policy override (service default chain when ``None``)
    policy: Optional[Tuple[StageSpec, ...]] = None
    mode: str = "first_valid"

    def __post_init__(self) -> None:
        spec = kind_spec(self.kind)  # raises ProblemError for unknown kinds
        if not isinstance(self.problem, spec.payload_cls):
            raise ProblemError(
                f"kind {self.kind!r} expects a {spec.payload_cls.__name__} "
                f"payload, got {type(self.problem).__name__}"
            )
        if self.mode not in VALID_MODES:
            raise ProblemError(
                f"unknown chain mode {self.mode!r}; valid: {', '.join(VALID_MODES)}"
            )

    def with_id(self, request_id: str) -> "OptimizationRequest":
        return replace(self, request_id=request_id)


@dataclass(frozen=True)
class OptimizationResult:
    """The service's answer: a best-effort plan plus serving metadata."""

    request_id: str
    kind: str
    #: ``ok`` or ``rejected`` (admission control)
    status: str
    #: ``{"selected_plans": [...]}`` (MQO) or ``{"order": [...]}`` (join)
    plan: Dict[str, Any] = field(default_factory=dict)
    cost: float = float("inf")
    energy: Optional[float] = None
    valid: bool = False
    #: name of the fallback stage that produced the returned plan
    served_by: str = ""
    deadline_exceeded: bool = False
    cache_hit: bool = False
    elapsed_ms: float = 0.0
    #: one entry per stage that ran: name, seconds, energy, cost, valid
    stage_trace: Tuple[Dict[str, Any], ...] = ()
    reject_reason: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def with_request_id(self, request_id: str) -> "OptimizationResult":
        """The same result re-addressed to another request.

        This is how coalesced duplicates are answered: every follower of
        an in-flight solve receives the primary's result verbatim — the
        plan, cost, energy, validity, serving stage and trace are all
        field-identical — under its own request id.
        """
        return replace(self, request_id=request_id)


def problem_to_dict(kind: str, problem: ProblemPayload) -> Dict[str, Any]:
    return kind_spec(kind).to_dict(problem)


def problem_from_dict(kind: str, data: Dict[str, Any]) -> ProblemPayload:
    return kind_spec(kind).from_dict(data)


# ----------------------------------------------------------------------
# JSON round trips (registered with repro.serialization)
# ----------------------------------------------------------------------
def request_to_dict(request: OptimizationRequest) -> Dict[str, Any]:
    """Request → plain dictionary."""
    data: Dict[str, Any] = {
        "format": _FORMAT,
        "kind": "optimization_request",
        "request_id": request.request_id,
        "problem_kind": request.kind,
        "problem": problem_to_dict(request.kind, request.problem),
        "deadline_ms": request.deadline_ms,
        "seed": request.seed,
        "mode": request.mode,
    }
    if request.policy is not None:
        data["policy"] = [stage.to_dict() for stage in request.policy]
    return data


def request_from_dict(data: Dict[str, Any]) -> OptimizationRequest:
    """Dictionary → request (validates on construction)."""
    _check(data, "optimization_request")
    policy = data.get("policy")
    return OptimizationRequest(
        request_id=str(data["request_id"]),
        kind=str(data["problem_kind"]),
        problem=problem_from_dict(str(data["problem_kind"]), data["problem"]),
        deadline_ms=float(data.get("deadline_ms", 200.0)),
        seed=None if data.get("seed") is None else int(data["seed"]),
        policy=None if policy is None else parse_policy(policy),
        mode=str(data.get("mode", "first_valid")),
    )


def result_to_dict(result: OptimizationResult) -> Dict[str, Any]:
    """Result → plain dictionary."""
    return {
        "format": _FORMAT,
        "kind": "optimization_result",
        "request_id": result.request_id,
        "problem_kind": result.kind,
        "status": result.status,
        "plan": to_jsonable(result.plan),
        "cost": result.cost,
        "energy": result.energy,
        "valid": result.valid,
        "served_by": result.served_by,
        "deadline_exceeded": result.deadline_exceeded,
        "cache_hit": result.cache_hit,
        "elapsed_ms": result.elapsed_ms,
        "stage_trace": [to_jsonable(entry) for entry in result.stage_trace],
        "reject_reason": result.reject_reason,
    }


def result_from_dict(data: Dict[str, Any]) -> OptimizationResult:
    """Dictionary → result."""
    _check(data, "optimization_result")
    return OptimizationResult(
        request_id=str(data["request_id"]),
        kind=str(data["problem_kind"]),
        status=str(data["status"]),
        plan=dict(data.get("plan", {})),
        cost=float(data.get("cost", float("inf"))),
        energy=None if data.get("energy") is None else float(data["energy"]),
        valid=bool(data.get("valid", False)),
        served_by=str(data.get("served_by", "")),
        deadline_exceeded=bool(data.get("deadline_exceeded", False)),
        cache_hit=bool(data.get("cache_hit", False)),
        elapsed_ms=float(data.get("elapsed_ms", 0.0)),
        stage_trace=tuple(dict(entry) for entry in data.get("stage_trace", [])),
        reject_reason=data.get("reject_reason"),
    )


def _check(data: Dict[str, Any], kind: str) -> None:
    if data.get("kind") != kind:
        raise ProblemError(f"expected kind {kind!r}, got {data.get('kind')!r}")
    if data.get("format") != _FORMAT:
        raise ProblemError(f"unsupported format version {data.get('format')!r}")


register_serializer(
    OptimizationRequest, "optimization_request", request_to_dict, request_from_dict
)
register_serializer(
    OptimizationResult, "optimization_result", result_to_dict, result_from_dict
)
