"""Branch-and-bound MILP solver over scipy's LP relaxation.

Stands in for the Gurobi solver as the classical baseline the paper
compares against (the MILP approach of Trummer & Koch, SIGMOD 2017).
The implementation is a textbook best-first branch-and-bound:

1. solve the LP relaxation with ``scipy.optimize.linprog`` (HiGHS);
2. if the relaxation is integral, the node is a candidate incumbent;
3. otherwise branch on the most fractional integer variable;
4. prune nodes whose LP bound cannot beat the incumbent.

The solver handles binary, integer and continuous variables, so it can
solve both the BILP produced for the quantum pipeline and the original
MILP formulation directly.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import InfeasibleError, SolverError
from repro.linprog.model import LinearModel, Sense, VarType


@dataclass
class MilpSolution:
    """Result of a branch-and-bound solve."""

    assignment: Dict[str, float]
    objective: float
    #: number of branch-and-bound nodes explored
    nodes_explored: int = 0
    #: True when the search completed (solution proven optimal)
    optimal: bool = True

    def int_assignment(self) -> Dict[str, int]:
        """Assignment with integer variables rounded to exact integers."""
        return {n: int(round(v)) for n, v in self.assignment.items()}


@dataclass(order=True)
class _Node:
    bound: float
    counter: int
    lower: np.ndarray = field(compare=False)
    upper: np.ndarray = field(compare=False)


class BranchAndBoundSolver:
    """Best-first branch-and-bound for mixed-integer linear programs."""

    def __init__(
        self,
        max_nodes: int = 200_000,
        tol: float = 1e-6,
        time_limit: Optional[float] = None,
    ) -> None:
        self.max_nodes = max_nodes
        self.tol = tol
        self.time_limit = time_limit

    def solve(self, model: LinearModel) -> MilpSolution:
        """Minimize the model's objective subject to its constraints.

        Raises
        ------
        InfeasibleError
            If the model has no feasible assignment.
        SolverError
            If the node limit is exhausted before optimality is proven
            and no incumbent was found.
        """
        import time

        start = time.monotonic()
        names = list(model.variable_names)
        index = {n: i for i, n in enumerate(names)}
        n = len(names)

        c = np.zeros(n)
        for name, coeff in model.objective.coeffs.items():
            c[index[name]] = coeff
        obj_const = model.objective.constant

        a_ub_rows: List[np.ndarray] = []
        b_ub: List[float] = []
        a_eq_rows: List[np.ndarray] = []
        b_eq: List[float] = []
        for con in model.constraints:
            row = np.zeros(n)
            for name, coeff in con.coeffs.items():
                row[index[name]] = coeff
            if con.sense is Sense.LE:
                a_ub_rows.append(row)
                b_ub.append(con.rhs)
            elif con.sense is Sense.GE:
                a_ub_rows.append(-row)
                b_ub.append(-con.rhs)
            else:
                a_eq_rows.append(row)
                b_eq.append(con.rhs)
        a_ub = np.array(a_ub_rows) if a_ub_rows else None
        a_eq = np.array(a_eq_rows) if a_eq_rows else None

        base_lower = np.array([v.lower for v in model.variables], dtype=float)
        base_upper = np.array([v.upper for v in model.variables], dtype=float)
        integral = np.array(
            [v.vartype is not VarType.CONTINUOUS for v in model.variables]
        )

        def relax(lower: np.ndarray, upper: np.ndarray):
            bounds = list(zip(lower, upper))
            res = linprog(
                c,
                A_ub=a_ub,
                b_ub=np.array(b_ub) if b_ub else None,
                A_eq=a_eq,
                b_eq=np.array(b_eq) if b_eq else None,
                bounds=bounds,
                method="highs",
            )
            return res

        counter = itertools.count()
        root = relax(base_lower, base_upper)
        if root.status == 2:
            raise InfeasibleError("LP relaxation of the root node is infeasible")
        if root.status != 0:
            raise SolverError(f"root LP failed with status {root.status}")

        heap: List[Tuple[float, int, np.ndarray, np.ndarray]] = [
            (root.fun, next(counter), base_lower, base_upper)
        ]
        incumbent: Optional[np.ndarray] = None
        incumbent_obj = math.inf
        explored = 0

        while heap:
            bound, _, lower, upper = heapq.heappop(heap)
            if bound >= incumbent_obj - self.tol:
                continue
            if explored >= self.max_nodes:
                break
            if self.time_limit is not None and time.monotonic() - start > self.time_limit:
                break
            res = relax(lower, upper)
            explored += 1
            if res.status != 0:
                continue  # infeasible or failed subproblem: prune
            if res.fun >= incumbent_obj - self.tol:
                continue
            x = res.x
            frac = np.where(
                integral, np.abs(x - np.round(x)), 0.0
            )
            most_fractional = int(np.argmax(frac))
            if frac[most_fractional] <= self.tol:
                # integral solution: new incumbent
                candidate = np.where(integral, np.round(x), x)
                incumbent = candidate
                incumbent_obj = float(c @ candidate)
                continue
            value = x[most_fractional]
            lo_branch_upper = upper.copy()
            lo_branch_upper[most_fractional] = math.floor(value)
            hi_branch_lower = lower.copy()
            hi_branch_lower[most_fractional] = math.ceil(value)
            heapq.heappush(heap, (res.fun, next(counter), lower, lo_branch_upper))
            heapq.heappush(heap, (res.fun, next(counter), hi_branch_lower, upper))

        if incumbent is None:
            if explored >= self.max_nodes:
                raise SolverError("node limit reached without finding a solution")
            raise InfeasibleError("no integer-feasible assignment exists")
        assignment = {name: float(incumbent[index[name]]) for name in names}
        return MilpSolution(
            assignment=assignment,
            objective=incumbent_obj + obj_const,
            nodes_explored=explored,
            optimal=not heap and explored < self.max_nodes,
        )
