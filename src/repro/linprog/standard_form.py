"""Conversion of inequality constraints to equalities with slack variables.

Implements Sec. 6.1.3 of the paper:

* a ``<=`` constraint over integers whose slack can be at most 1 gains a
  single *binary* slack variable;
* a ``<=`` constraint with a larger (possibly fractional) slack range is
  given a *discretized continuous* slack: per Eq. 40, a continuous slack
  ``csl`` with upper bound ``C`` is approximated by

  .. math:: csl = \\omega \\sum_{i=1}^{n} 2^{i-1}\\,bsl_i,
            \\qquad n = \\lfloor \\log_2(C/\\omega) \\rfloor + 1

  with precision factor :math:`\\omega = 0.1^p`.

Coefficients and right-hand sides are rounded to the precision
:math:`\\omega` (Sec. 6.1.4, "Penalty Weights"), which keeps the smallest
possible constraint violation at exactly :math:`\\omega` and makes the
penalty-weight bound :math:`A > C/\\omega^2` valid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.exceptions import ModelError
from repro.linprog.model import Constraint, LinearModel, Sense


def binary_slack_count(upper_bound: float, omega: float) -> int:
    """Number of binary variables to discretize a slack (Eq. 40/52).

    ``n = floor(log2(C / omega)) + 1`` — enough binaries for the weighted
    sum to cover the range ``[0, C]`` in steps of ``omega``.
    """
    if upper_bound <= 0:
        return 0
    if omega <= 0:
        raise ModelError("precision factor omega must be positive")
    ratio = upper_bound / omega
    if ratio < 1.0:
        return 1
    return int(math.floor(math.log2(ratio))) + 1


def discretize_slack(upper_bound: float, omega: float, prefix: str) -> Tuple[List[str], List[float]]:
    """Names and coefficients of the binary slacks approximating one
    continuous slack variable (Eq. 40).

    Returns ``(names, coefficients)`` where the approximated slack equals
    ``sum(coeff_i * bsl_i)`` with ``coeff_i = omega * 2^(i-1)``.
    """
    count = binary_slack_count(upper_bound, omega)
    names = [f"{prefix}[{i}]" for i in range(count)]
    coefficients = [omega * (2.0 ** i) for i in range(count)]
    return names, coefficients


@dataclass
class StandardFormResult:
    """Outcome of :func:`to_equality_form`.

    Attributes
    ----------
    model:
        A new :class:`LinearModel` whose constraints are all equalities.
    slack_variables:
        Names of every added slack variable (binary, in order).
    slack_of_constraint:
        Maps original constraint name → list of slack names added for it.
    """

    model: LinearModel
    slack_variables: List[str] = field(default_factory=list)
    slack_of_constraint: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def num_slack_variables(self) -> int:
        return len(self.slack_variables)


def to_equality_form(
    model: LinearModel,
    omega: float = 1.0,
    slack_bounds: Dict[str, float] | None = None,
) -> StandardFormResult:
    """Convert a BILP with inequalities into an all-equality BILP.

    Parameters
    ----------
    model:
        Source model; every variable must be binary.
    omega:
        Precision factor :math:`\\omega = 0.1^p`.  Slack upper bounds
        and constraint coefficients are rounded to multiples of it.
    slack_bounds:
        Optional per-constraint upper bound for the slack range.  When
        absent, the bound is derived from the constraint's coefficients:
        the gap between the right-hand side and the smallest achievable
        left-hand side value.

    Notes
    -----
    A ``>=`` constraint is first negated into ``<=`` form.  A ``<=``
    constraint then receives slacks so that ``lhs + slack == rhs``.
    When the maximum possible slack is at most 1 and all coefficients
    are integral, a single binary slack suffices (Sec. 6.1.3); otherwise
    the slack is discretized per Eq. 40.
    """
    if not model.is_binary_program():
        raise ModelError("to_equality_form requires a pure binary program")
    if omega <= 0:
        raise ModelError("omega must be positive")

    out = LinearModel(name=f"{model.name}_eq")
    for var in model.variables:
        out.add_variable(var.name, var.vartype, var.lower, var.upper)
    out.set_objective(model.objective)

    result = StandardFormResult(model=out)
    slack_bounds = slack_bounds or {}

    for con in model.constraints:
        coeffs = {n: _round_to(c, omega) for n, c in con.coeffs.items()}
        rhs = _round_to(con.rhs, omega)
        sense = con.sense
        if sense is Sense.GE:
            coeffs = {n: -c for n, c in coeffs.items()}
            rhs = -rhs
            sense = Sense.LE

        if sense is Sense.EQ:
            _append_equality(out, con.name, coeffs, rhs)
            result.slack_of_constraint[con.name] = []
            continue

        # sense is now LE: lhs + slack == rhs with slack in [0, gap]
        gap = slack_bounds.get(con.name)
        if gap is None:
            min_lhs = sum(c for c in coeffs.values() if c < 0)
            gap = rhs - min_lhs
        gap = max(0.0, gap)

        integral = all(abs(c - round(c)) < 1e-12 for c in coeffs.values()) and (
            abs(rhs - round(rhs)) < 1e-12
        )
        slacks: List[str] = []
        if gap <= 1.0 + 1e-12 and integral:
            name = f"sl_{con.name}"
            out.add_binary(name)
            coeffs[name] = 1.0
            slacks.append(name)
        elif gap > 0:
            names, weights = discretize_slack(gap, omega, prefix=f"sl_{con.name}")
            for slack_name, weight in zip(names, weights):
                out.add_binary(slack_name)
                coeffs[slack_name] = weight
                slacks.append(slack_name)
        _append_equality(out, con.name, coeffs, rhs)
        result.slack_variables.extend(slacks)
        result.slack_of_constraint[con.name] = slacks
    return result


def _append_equality(model: LinearModel, name: str, coeffs: Dict[str, float], rhs: float) -> None:
    constraint = Constraint(name="", coeffs=dict(coeffs), sense=Sense.EQ, rhs=rhs)
    model.add_constraint(constraint, name=name)


def _round_to(value: float, omega: float) -> float:
    """Round ``value`` to the nearest multiple of ``omega``."""
    return round(value / omega) * omega
