"""Mixed/binary integer linear programming substrate.

This package stands in for the Gurobi modelling layer the paper uses
(Sec. 6.2.1): a :class:`LinearModel` collects variables, an objective and
constraints; the coefficient matrix / vectors can be extracted for the
BILP → QUBO transformation; a branch-and-bound solver over scipy's LP
relaxation provides the classical MILP baseline.
"""

from repro.linprog.model import (
    Constraint,
    LinearExpr,
    LinearModel,
    Sense,
    VarType,
    Variable,
)
from repro.linprog.standard_form import (
    StandardFormResult,
    binary_slack_count,
    discretize_slack,
    to_equality_form,
)
from repro.linprog.branch_and_bound import BranchAndBoundSolver, MilpSolution

__all__ = [
    "Constraint",
    "LinearExpr",
    "LinearModel",
    "Sense",
    "VarType",
    "Variable",
    "StandardFormResult",
    "binary_slack_count",
    "discretize_slack",
    "to_equality_form",
    "BranchAndBoundSolver",
    "MilpSolution",
]
