"""Linear-programming model objects.

A :class:`LinearModel` plays the role of a ``gurobipy.Model`` in the
paper's pipeline (Sec. 6.2.2, steps 3–6): variables are declared, linear
constraints and a linear objective added, and finally the coefficient
matrix :math:`S`, right-hand-side vector :math:`b` and cost vector
:math:`c` are extracted for the Ising transformation of [Lucas 2014].
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ModelError, VariableError

Number = Union[int, float]


class VarType(enum.Enum):
    """Domain of a model variable."""

    BINARY = "B"
    INTEGER = "I"
    CONTINUOUS = "C"


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True)
class Variable:
    """A named decision variable.

    Supports arithmetic with numbers and other variables, producing
    :class:`LinearExpr` objects, so constraints read naturally::

        model.add_constraint(x + 2 * y <= 3, name="cap")
    """

    name: str
    vartype: VarType = VarType.BINARY
    lower: float = 0.0
    upper: float = 1.0

    def _expr(self) -> "LinearExpr":
        return LinearExpr({self.name: 1.0}, 0.0)

    def __add__(self, other) -> "LinearExpr":
        return self._expr() + other

    def __radd__(self, other) -> "LinearExpr":
        return self._expr() + other

    def __sub__(self, other) -> "LinearExpr":
        return self._expr() - other

    def __rsub__(self, other) -> "LinearExpr":
        return (-1.0 * self._expr()) + other

    def __mul__(self, other: Number) -> "LinearExpr":
        return self._expr() * other

    def __rmul__(self, other: Number) -> "LinearExpr":
        return self._expr() * other

    def __neg__(self) -> "LinearExpr":
        return self._expr() * -1.0

    def __le__(self, other) -> "Constraint":
        return self._expr() <= other

    def __ge__(self, other) -> "Constraint":
        return self._expr() >= other

    # dataclass(frozen=True) provides __eq__/__hash__ on fields; equations
    # are expressed with LinearExpr.eq() to avoid clobbering equality.
    def eq(self, other) -> "Constraint":
        """Equality constraint ``self == other``."""
        return self._expr().eq(other)


class LinearExpr:
    """An affine expression ``sum(coeff_i * var_i) + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Optional[Mapping[str, float]] = None, constant: float = 0.0):
        self.coeffs: Dict[str, float] = dict(coeffs or {})
        self.constant = float(constant)

    @staticmethod
    def _coerce(value) -> "LinearExpr":
        if isinstance(value, LinearExpr):
            return value
        if isinstance(value, Variable):
            return value._expr()
        if isinstance(value, (int, float)):
            return LinearExpr({}, float(value))
        raise ModelError(f"cannot use {value!r} in a linear expression")

    def __add__(self, other) -> "LinearExpr":
        other = self._coerce(other)
        coeffs = dict(self.coeffs)
        for name, c in other.coeffs.items():
            coeffs[name] = coeffs.get(name, 0.0) + c
        return LinearExpr(coeffs, self.constant + other.constant)

    def __radd__(self, other) -> "LinearExpr":
        return self.__add__(other)

    def __sub__(self, other) -> "LinearExpr":
        return self.__add__(self._coerce(other) * -1.0)

    def __rsub__(self, other) -> "LinearExpr":
        return (self * -1.0).__add__(other)

    def __mul__(self, factor: Number) -> "LinearExpr":
        if not isinstance(factor, (int, float)):
            raise ModelError("linear expressions can only be scaled by numbers")
        return LinearExpr(
            {name: c * factor for name, c in self.coeffs.items()},
            self.constant * factor,
        )

    def __rmul__(self, factor: Number) -> "LinearExpr":
        return self.__mul__(factor)

    def __neg__(self) -> "LinearExpr":
        return self * -1.0

    def __le__(self, other) -> "Constraint":
        return Constraint.build(self, Sense.LE, self._coerce(other))

    def __ge__(self, other) -> "Constraint":
        return Constraint.build(self, Sense.GE, self._coerce(other))

    def eq(self, other) -> "Constraint":
        """Equality constraint ``self == other``."""
        return Constraint.build(self, Sense.EQ, self._coerce(other))

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        """Value of the expression at an assignment."""
        return self.constant + sum(
            c * assignment[name] for name, c in self.coeffs.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{c:+g}*{n}" for n, c in sorted(self.coeffs.items())]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return f"LinearExpr({' '.join(parts)})"


def quicksum(terms: Iterable) -> LinearExpr:
    """Sum variables/expressions/numbers into one :class:`LinearExpr`.

    Mirrors ``gurobipy.quicksum`` so model-building code reads like the
    paper's implementation.
    """
    total = LinearExpr()
    for term in terms:
        total = total + term
    return total


@dataclass
class Constraint:
    """A normalized linear constraint ``expr (<=|>=|==) rhs``.

    Stored with all variables on the left and a numeric right-hand side.
    """

    name: str
    coeffs: Dict[str, float]
    sense: Sense
    rhs: float

    @classmethod
    def build(cls, lhs: LinearExpr, sense: Sense, rhs: LinearExpr) -> "Constraint":
        coeffs = dict(lhs.coeffs)
        for name, c in rhs.coeffs.items():
            coeffs[name] = coeffs.get(name, 0.0) - c
        return cls(
            name="",
            coeffs={n: c for n, c in coeffs.items() if c != 0.0},
            sense=sense,
            rhs=rhs.constant - lhs.constant,
        )

    def violated_by(self, assignment: Mapping[str, float], tol: float = 1e-7) -> bool:
        """Whether the assignment violates this constraint."""
        lhs = sum(c * assignment[n] for n, c in self.coeffs.items())
        if self.sense is Sense.LE:
            return lhs > self.rhs + tol
        if self.sense is Sense.GE:
            return lhs < self.rhs - tol
        return abs(lhs - self.rhs) > tol


class LinearModel:
    """A mixed-integer linear program.

    Variables are registered by name; the objective is always a
    *minimization* (the join-ordering objective, Eq. 38, is a
    minimization; callers wanting maximization negate their costs).
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: Dict[str, Variable] = {}
        self._constraints: List[Constraint] = []
        self._objective = LinearExpr()

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def add_variable(
        self,
        name: str,
        vartype: VarType = VarType.BINARY,
        lower: float = 0.0,
        upper: Optional[float] = None,
    ) -> Variable:
        """Register a variable.

        ``upper`` defaults to 1 for binaries and +inf otherwise.
        """
        if name in self._variables:
            raise VariableError(f"variable {name!r} already exists")
        if upper is None:
            upper = 1.0 if vartype is VarType.BINARY else float("inf")
        var = Variable(name=name, vartype=vartype, lower=lower, upper=upper)
        self._variables[name] = var
        return var

    def add_binary(self, name: str) -> Variable:
        """Shorthand for a 0/1 variable."""
        return self.add_variable(name, VarType.BINARY)

    def get_variable(self, name: str) -> Variable:
        """Look up a variable by name."""
        try:
            return self._variables[name]
        except KeyError:
            raise VariableError(f"unknown variable {name!r}") from None

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All variables in insertion order."""
        return tuple(self._variables.values())

    @property
    def variable_names(self) -> Tuple[str, ...]:
        """Variable names in insertion order."""
        return tuple(self._variables)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    def is_binary_program(self) -> bool:
        """True when every variable is binary (a BILP, paper Sec. 6.1.3)."""
        return all(v.vartype is VarType.BINARY for v in self._variables.values())

    # ------------------------------------------------------------------
    # Constraints and objective
    # ------------------------------------------------------------------
    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Add a constraint built with ``<=``, ``>=`` or ``.eq()``."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add_constraint expects a Constraint (use <=, >= or .eq())"
            )
        unknown = set(constraint.coeffs) - set(self._variables)
        if unknown:
            raise VariableError(f"constraint references unknown variables {sorted(unknown)}")
        constraint.name = name or f"c{len(self._constraints)}"
        self._constraints.append(constraint)
        return constraint

    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        return tuple(self._constraints)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def set_objective(self, expr: Union[LinearExpr, Variable, Number]) -> None:
        """Set the minimization objective."""
        self._objective = LinearExpr._coerce(expr)

    @property
    def objective(self) -> LinearExpr:
        return self._objective

    def objective_value(self, assignment: Mapping[str, float]) -> float:
        """Objective at an assignment."""
        return self._objective.evaluate(assignment)

    def is_feasible(self, assignment: Mapping[str, float], tol: float = 1e-7) -> bool:
        """Whether an assignment satisfies every constraint and bound."""
        for var in self._variables.values():
            value = assignment[var.name]
            if value < var.lower - tol or value > var.upper + tol:
                return False
            if var.vartype is not VarType.CONTINUOUS and abs(value - round(value)) > tol:
                return False
        return not any(c.violated_by(assignment, tol) for c in self._constraints)

    # ------------------------------------------------------------------
    # Matrix extraction (paper Sec. 6.2.2, step 6)
    # ------------------------------------------------------------------
    def to_matrices(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[str, ...]]:
        """Extract ``(S, b, c, order)``.

        ``S`` is the ``m x n`` constraint-coefficient matrix, ``b`` the
        right-hand sides and ``c`` the objective cost vector, ordered by
        ``order`` (insertion order of variables).  Senses are *not*
        encoded in the matrix — use :func:`to_equality_form` first when a
        pure equality system is required (as the Ising transformation of
        Sec. 6.1.4 does).
        """
        order = self.variable_names
        index = {n: i for i, n in enumerate(order)}
        m, n = len(self._constraints), len(order)
        s = np.zeros((m, n), dtype=float)
        b = np.zeros(m, dtype=float)
        for row, con in enumerate(self._constraints):
            for name, coeff in con.coeffs.items():
                s[row, index[name]] = coeff
            b[row] = con.rhs
        c = np.zeros(n, dtype=float)
        for name, coeff in self._objective.coeffs.items():
            c[index[name]] = coeff
        return s, b, c, order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinearModel({self.name!r}: {self.num_variables} vars, "
            f"{self.num_constraints} constraints)"
        )
