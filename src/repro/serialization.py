"""JSON (de)serialization of problem instances and models.

Lets users persist generated workloads, ship instances between
machines, and archive the exact inputs behind experiment results:

* MQO problems (queries, plans, savings),
* join-ordering query graphs (relations, predicates),
* binary quadratic models (linear/quadratic/offset/vartype),
* sample sets (records with energies and multiplicities).

Formats are versioned dictionaries; unknown versions are rejected so
future format changes fail loudly instead of misparsing.  Other
packages can plug their own payload kinds into :func:`dumps` /
:func:`loads` via :func:`register_serializer` (the service layer's
request/response models do this).
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Union

from repro.exceptions import ProblemError
from repro.annealing.sampleset import SampleRecord, SampleSet
from repro.joinorder.query_graph import Predicate, QueryGraph, Relation
from repro.mqo.problem import MqoProblem, Plan, Saving
from repro.qubo.bqm import BinaryQuadraticModel, Vartype

_FORMAT = 1


# ----------------------------------------------------------------------
# MQO problems
# ----------------------------------------------------------------------
def mqo_to_dict(problem: MqoProblem) -> Dict[str, Any]:
    """MQO instance → plain dictionary."""
    return {
        "format": _FORMAT,
        "kind": "mqo_problem",
        "plans": [
            {"plan_id": p.plan_id, "query_id": p.query_id, "cost": p.cost}
            for p in problem.plans
        ],
        "savings": [
            {"plan_a": s.plan_a, "plan_b": s.plan_b, "amount": s.amount}
            for s in problem.savings
        ],
    }


def mqo_from_dict(data: Dict[str, Any]) -> MqoProblem:
    """Dictionary → MQO instance (validates on construction)."""
    _check(data, "mqo_problem")
    return MqoProblem(
        plans=tuple(
            Plan(int(p["plan_id"]), int(p["query_id"]), float(p["cost"]))
            for p in data["plans"]
        ),
        savings=tuple(
            Saving(int(s["plan_a"]), int(s["plan_b"]), float(s["amount"]))
            for s in data["savings"]
        ),
    )


# ----------------------------------------------------------------------
# Query graphs
# ----------------------------------------------------------------------
def query_graph_to_dict(graph: QueryGraph) -> Dict[str, Any]:
    """Query graph → plain dictionary."""
    return {
        "format": _FORMAT,
        "kind": "query_graph",
        "relations": [
            {"name": r.name, "cardinality": r.cardinality} for r in graph.relations
        ],
        "predicates": [
            {"first": p.first, "second": p.second, "selectivity": p.selectivity}
            for p in graph.predicates
        ],
    }


def query_graph_from_dict(data: Dict[str, Any]) -> QueryGraph:
    """Dictionary → query graph (validates on construction)."""
    _check(data, "query_graph")
    return QueryGraph(
        relations=tuple(
            Relation(str(r["name"]), float(r["cardinality"]))
            for r in data["relations"]
        ),
        predicates=tuple(
            Predicate(str(p["first"]), str(p["second"]), float(p["selectivity"]))
            for p in data["predicates"]
        ),
    )


# ----------------------------------------------------------------------
# Binary quadratic models
# ----------------------------------------------------------------------
def bqm_to_dict(bqm: BinaryQuadraticModel) -> Dict[str, Any]:
    """BQM → plain dictionary (variable names coerced to strings)."""
    return {
        "format": _FORMAT,
        "kind": "bqm",
        "vartype": bqm.vartype.name,
        "offset": bqm.offset,
        "linear": {str(v): b for v, b in bqm.linear.items()},
        "quadratic": [
            {"u": str(u), "v": str(v), "bias": bias}
            for u, v, bias in bqm.interactions()
        ],
    }


def bqm_from_dict(data: Dict[str, Any]) -> BinaryQuadraticModel:
    """Dictionary → BQM."""
    _check(data, "bqm")
    bqm = BinaryQuadraticModel(
        vartype=Vartype[data["vartype"]], offset=float(data["offset"])
    )
    for v, bias in data["linear"].items():
        bqm.add_linear(v, float(bias))
    for term in data["quadratic"]:
        bqm.add_quadratic(term["u"], term["v"], float(term["bias"]))
    return bqm


# ----------------------------------------------------------------------
# Sample sets
# ----------------------------------------------------------------------
def sampleset_to_dict(sample_set: SampleSet) -> Dict[str, Any]:
    """Sample set → plain dictionary (variable names coerced to strings)."""
    return {
        "format": _FORMAT,
        "kind": "sample_set",
        "vartype": sample_set.vartype.name,
        "records": [
            {
                "sample": {str(v): int(value) for v, value in r.sample.items()},
                "energy": r.energy,
                "num_occurrences": r.num_occurrences,
                "chain_break_fraction": r.chain_break_fraction,
            }
            for r in sample_set.records
        ],
    }


def sampleset_from_dict(data: Dict[str, Any]) -> SampleSet:
    """Dictionary → sample set (records re-sorted on construction)."""
    _check(data, "sample_set")
    records = [
        SampleRecord(
            sample={str(v): int(value) for v, value in r["sample"].items()},
            energy=float(r["energy"]),
            num_occurrences=int(r.get("num_occurrences", 1)),
            chain_break_fraction=float(r.get("chain_break_fraction", 0.0)),
        )
        for r in data["records"]
    ]
    return SampleSet(records, Vartype[data["vartype"]])


# ----------------------------------------------------------------------
# JSON front ends
# ----------------------------------------------------------------------
_SERIALIZERS = {
    MqoProblem: mqo_to_dict,
    QueryGraph: query_graph_to_dict,
    BinaryQuadraticModel: bqm_to_dict,
    SampleSet: sampleset_to_dict,
}
_DESERIALIZERS = {
    "mqo_problem": mqo_from_dict,
    "query_graph": query_graph_from_dict,
    "bqm": bqm_from_dict,
    "sample_set": sampleset_from_dict,
}

Serializable = Union[MqoProblem, QueryGraph, BinaryQuadraticModel, SampleSet]


def register_serializer(
    cls: type,
    kind: str,
    to_dict: Callable[[Any], Dict[str, Any]],
    from_dict: Callable[[Dict[str, Any]], Any],
    replace: bool = False,
) -> None:
    """Plug a new payload kind into :func:`dumps` / :func:`loads`.

    ``to_dict`` must emit a dictionary carrying ``format`` and ``kind``
    keys (see the built-in serializers); ``from_dict`` is dispatched on
    that ``kind``.  Collisions raise unless ``replace`` is set.
    """
    if not replace and (cls in _SERIALIZERS or kind in _DESERIALIZERS):
        raise ProblemError(f"serializer for {cls.__name__}/{kind!r} already registered")
    _SERIALIZERS[cls] = to_dict
    _DESERIALIZERS[kind] = from_dict


def dumps(obj: Serializable, indent: Union[int, None] = 2) -> str:
    """Serialize a supported object to a JSON string.

    ``indent=None`` produces the compact single-line encoding the
    multi-process serving layer ships over worker pipes (same payload,
    no pretty-printing overhead).
    """
    for cls, serializer in _SERIALIZERS.items():
        if isinstance(obj, cls):
            if indent is None:
                return json.dumps(serializer(obj), separators=(",", ":"))
            return json.dumps(serializer(obj), indent=indent)
    raise ProblemError(f"cannot serialize {type(obj).__name__}")


#: payload kinds whose serializers live in packages not imported by
#: default: the first ``loads`` of such a kind imports the provider,
#: whose module-level ``register_serializer`` calls fill the registry
_LAZY_KINDS = {
    "sql_query": "repro.sql",
    "catalog": "repro.sql",
    "optimization_request": "repro.service.request",
    "optimization_result": "repro.service.request",
}


def loads(text: str) -> Serializable:
    """Deserialize any supported JSON payload (dispatch on ``kind``)."""
    data = json.loads(text)
    kind = data.get("kind")
    if kind not in _DESERIALIZERS and kind in _LAZY_KINDS:
        import importlib

        importlib.import_module(_LAZY_KINDS[kind])
    if kind not in _DESERIALIZERS:
        raise ProblemError(f"unknown payload kind {kind!r}")
    return _DESERIALIZERS[kind](data)


def save(obj: Serializable, path: str) -> None:
    """Serialize to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(obj))


def load(path: str) -> Serializable:
    """Deserialize from a file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


# ----------------------------------------------------------------------
# Generic JSON coercion (shared with the experiment-result cache)
# ----------------------------------------------------------------------
def to_jsonable(value: Any) -> Any:
    """Recursively coerce ``value`` into plain JSON types.

    Dict keys become strings, tuples/sets become lists (sets sorted for
    stability), and numpy scalars/arrays are unwrapped via ``tolist``.
    Anything else falls back to ``str``.  Round-tripping a value through
    ``to_jsonable`` + JSON therefore yields an identical object, which
    is what lets cached experiment rows compare equal to fresh ones.
    """
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((to_jsonable(v) for v in value), key=repr)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "tolist"):  # numpy scalars and arrays
        return to_jsonable(value.tolist())
    return str(value)


def _check(data: Dict[str, Any], kind: str) -> None:
    if data.get("kind") != kind:
        raise ProblemError(f"expected kind {kind!r}, got {data.get('kind')!r}")
    if data.get("format") != _FORMAT:
        raise ProblemError(f"unsupported format version {data.get('format')!r}")
