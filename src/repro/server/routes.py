"""Route table and handlers for the HTTP gateway.

One coroutine per endpoint, all with the same shape —
``handler(app, http) -> (status, payload)`` — where ``app`` is the
:class:`~repro.server.gateway.Gateway` (scheduler access, request-id
minting, uptime) and ``http`` is the parsed
:class:`HttpRequest`.  The transport layer stays ignorant of routing;
this module stays ignorant of sockets.

Endpoints
---------
``POST /optimize``
    Serve one optimization request (full serialized or compact body;
    see :mod:`repro.server.models`).  200 with the serialized result,
    400 on validation failures, 503 when admission control rejects.
``POST /sql``
    Serve raw SQL text against the built-in TPC-H-style catalog.
``GET /stats``
    The scheduler's merged metrics report (per-worker counters and
    latency reservoirs aggregated, coalescing hit counters included).
``GET /healthz``
    Liveness + readiness: ``ok`` while serving, ``draining`` during
    graceful shutdown.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, Tuple

from repro.serialization import to_jsonable
from repro.server.models import (
    ApiError,
    optimize_request_from_body,
    parse_json_body,
    result_response,
    sql_request_from_body,
)

__all__ = ["HttpRequest", "ROUTES", "resolve_route"]


@dataclass(frozen=True)
class HttpRequest:
    """One parsed HTTP request, transport details already stripped."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""


Handler = Callable[[Any, HttpRequest], Awaitable[Tuple[int, Dict[str, Any]]]]


async def _submit_and_wait(app, request) -> Tuple[int, Dict[str, Any]]:
    """Bridge the scheduler's concurrent future into the event loop."""
    future = app.scheduler.submit(request)
    result = await asyncio.wrap_future(future)
    return result_response(result)


async def handle_optimize(app, http: HttpRequest) -> Tuple[int, Dict[str, Any]]:
    data = parse_json_body(http.body)
    request = optimize_request_from_body(
        data, app.next_request_id(), app.default_deadline_ms
    )
    return await _submit_and_wait(app, request)


async def handle_sql(app, http: HttpRequest) -> Tuple[int, Dict[str, Any]]:
    data = parse_json_body(http.body)
    request = sql_request_from_body(
        data, app.next_request_id(), app.default_deadline_ms
    )
    return await _submit_and_wait(app, request)


async def handle_stats(app, http: HttpRequest) -> Tuple[int, Dict[str, Any]]:
    # process-backend stats poll every worker — keep it off the loop
    stats = await asyncio.get_running_loop().run_in_executor(None, app.scheduler.stats)
    return 200, to_jsonable(stats)


async def handle_healthz(app, http: HttpRequest) -> Tuple[int, Dict[str, Any]]:
    return 200, {
        "status": "draining" if app.draining else "ok",
        "backend": app.scheduler.backend,
        "workers": app.scheduler.workers,
        "uptime_seconds": app.uptime_seconds(),
        "requests_seen": app.requests_seen,
    }


ROUTES: Dict[Tuple[str, str], Handler] = {
    ("POST", "/optimize"): handle_optimize,
    ("POST", "/sql"): handle_sql,
    ("GET", "/stats"): handle_stats,
    ("GET", "/healthz"): handle_healthz,
}

_KNOWN_PATHS = {path for _method, path in ROUTES}


def resolve_route(method: str, path: str) -> Handler:
    """Route lookup: 404 for unknown paths, 405 for wrong methods."""
    handler = ROUTES.get((method, path))
    if handler is not None:
        return handler
    if path in _KNOWN_PATHS:
        allowed = sorted(m for m, p in ROUTES if p == path)
        raise ApiError(
            405, "method_not_allowed", f"{path} allows: {', '.join(allowed)}"
        )
    raise ApiError(404, "not_found", f"no route for {path}")
