"""Stdlib-only async HTTP gateway in front of the serving schedulers.

A thin ``asyncio.start_server`` transport speaking enough HTTP/1.1 for
a JSON API: request-line + headers + ``Content-Length`` bodies,
keep-alive connections, and JSON responses.  No third-party web
framework — the whole front door is asyncio + ``json``, matching the
repo's stdlib-or-numpy dependency rule.

The gateway owns no optimization logic.  It parses bytes into
:class:`~repro.server.routes.HttpRequest`, resolves a route, and the
handlers talk to whichever scheduler backend was injected —
:class:`~repro.service.core.BatchScheduler` (threads) or
:class:`~repro.server.pool.ProcessPoolScheduler` (processes).  Because
schedulers expose ``concurrent.futures`` futures, the event loop stays
free while solves run elsewhere: one gateway process multiplexes many
connections over N solver processes.

Graceful shutdown (:meth:`Gateway.stop`): stop accepting, let every
in-flight request finish and flush its response, drop idle keep-alive
connections, then drain the scheduler.  Backpressure is the
scheduler's admission control surfacing as HTTP 503.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import signal
import threading
import time
from typing import Any, Dict, Optional, Set

from repro.serialization import to_jsonable
from repro.server.models import ApiError, error_envelope
from repro.server.routes import HttpRequest, resolve_route

__all__ = ["Gateway", "GatewayHandle", "run_gateway", "serve_in_background"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: request-line + headers must fit well within StreamReader's buffer
_MAX_HEADER_LINES = 100


class Gateway:
    """One HTTP listener bound to one scheduler backend."""

    def __init__(
        self,
        scheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        default_deadline_ms: float = 200.0,
        max_body_bytes: int = 8 * 1024 * 1024,
        own_scheduler: bool = True,
    ) -> None:
        self.scheduler = scheduler
        self.host = host
        self._requested_port = int(port)
        self.default_deadline_ms = float(default_deadline_ms)
        self.max_body_bytes = int(max_body_bytes)
        self.own_scheduler = bool(own_scheduler)
        self.draining = False
        self.requests_seen = 0
        self._ids = itertools.count(1)
        self._started = time.perf_counter()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()
        self._active_requests = 0

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self._requested_port
        )
        self._started = time.perf_counter()

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        if self._server is None or not self._server.sockets:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def next_request_id(self) -> str:
        return f"http-{next(self._ids):06d}"

    def uptime_seconds(self) -> float:
        return time.perf_counter() - self._started

    async def stop(self, drain_timeout: float = 30.0) -> None:
        """Graceful shutdown: drain in-flight requests, then workers.

        New connections are refused immediately; requests already being
        served finish and flush their responses; idle keep-alive
        connections are dropped; finally the scheduler shuts down
        (which itself drains queued solves).
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + drain_timeout
        while self._active_requests > 0 and loop.time() < deadline:
            await asyncio.sleep(0.02)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self.own_scheduler:
            await loop.run_in_executor(None, self.scheduler.shutdown)

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while not self.draining:
                try:
                    http = await self._read_request(reader)
                except ApiError as exc:
                    await self._send(
                        writer,
                        exc.status,
                        error_envelope(exc.status, exc.code, exc.message),
                        close=True,
                    )
                    return
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    ConnectionError,
                ):
                    return
                if http is None:
                    return
                self.requests_seen += 1
                self._active_requests += 1
                try:
                    status, payload = await self._dispatch(http)
                finally:
                    self._active_requests -= 1
                close = (
                    self.draining
                    or http.headers.get("connection", "").lower() == "close"
                )
                await self._send(writer, status, payload, close=close)
                if close:
                    return
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _dispatch(self, http: HttpRequest):
        try:
            handler = resolve_route(http.method, http.path)
            return await handler(self, http)
        except ApiError as exc:
            return exc.status, error_envelope(exc.status, exc.code, exc.message)
        except Exception as exc:  # noqa: BLE001 — never leak a traceback as HTML
            return 500, error_envelope(
                500, "internal_error", f"{type(exc).__name__}: {exc}"
            )

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[HttpRequest]:
        """Parse one HTTP/1.1 request; ``None`` on clean EOF."""
        line = await reader.readline()
        if not line or not line.strip():
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ApiError(400, "bad_request_line", "malformed HTTP request line")
        method, target = parts[0].upper(), parts[1]
        path = target.split("?", 1)[0]

        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            raw = await reader.readline()
            if not raw.strip():
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise ApiError(400, "bad_header", f"malformed header line {raw!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ApiError(400, "bad_header", "too many header lines")

        try:
            content_length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ApiError(400, "bad_header", "Content-Length must be an integer")
        if content_length < 0:
            raise ApiError(400, "bad_header", "Content-Length must be non-negative")
        if content_length > self.max_body_bytes:
            raise ApiError(
                413,
                "payload_too_large",
                f"body of {content_length} bytes exceeds {self.max_body_bytes}",
            )
        body = await reader.readexactly(content_length) if content_length else b""
        return HttpRequest(method=method, path=path, headers=headers, body=body)

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        close: bool,
    ) -> None:
        body = json.dumps(to_jsonable(payload)).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


# ----------------------------------------------------------------------
# embedding helpers: foreground (CLI) and background (tests, bench)
# ----------------------------------------------------------------------
def run_gateway(
    scheduler,
    host: str = "127.0.0.1",
    port: int = 8080,
    default_deadline_ms: float = 200.0,
    ready_message: bool = True,
) -> None:
    """Run a gateway in the foreground until SIGINT/SIGTERM.

    The ``python -m repro serve`` entry point: installs signal
    handlers, prints the bound address, and performs a graceful drain
    on shutdown.
    """

    async def _main() -> None:
        gateway = Gateway(
            scheduler,
            host=host,
            port=port,
            default_deadline_ms=default_deadline_ms,
        )
        await gateway.start()
        if ready_message:
            print(
                f"serving on {gateway.url} "
                f"(backend={scheduler.backend}, workers={scheduler.workers}) — "
                f"Ctrl-C to drain and stop",
                flush=True,
            )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signame in ("SIGINT", "SIGTERM"):
            try:
                loop.add_signal_handler(getattr(signal, signame), stop.set)
            except (NotImplementedError, OSError):  # pragma: no cover — non-POSIX
                pass
        await stop.wait()
        if ready_message:
            print("draining in-flight requests ...", flush=True)
        await gateway.stop()

    asyncio.run(_main())


class GatewayHandle:
    """A gateway running on a background thread (tests, benchmarks)."""

    def __init__(self, scheduler, host: str, port: int, **gateway_kwargs: Any) -> None:
        self._scheduler = scheduler
        self._host = host
        self._gateway_kwargs = dict(gateway_kwargs)
        self._requested_port = port
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self.port: Optional[int] = None
        self._thread = threading.Thread(
            target=self._thread_main, daemon=True, name="repro-gateway"
        )
        self._thread.start()
        self._ready.wait(timeout=60.0)
        if self._error is not None:
            raise self._error
        if self.port is None:
            raise RuntimeError("gateway failed to start within 60s")

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    @property
    def address(self) -> str:
        return f"{self._host}:{self.port}"

    def stop(self) -> None:
        """Trigger graceful drain and wait for the thread to finish."""
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already closed
                pass
        self._thread.join(timeout=60.0)
        self._stopped.set()

    def __enter__(self) -> "GatewayHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 — surface to the caller
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        gateway = Gateway(
            self._scheduler,
            host=self._host,
            port=self._requested_port,
            **self._gateway_kwargs,
        )
        await gateway.start()
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.port = gateway.port
        self._ready.set()
        await self._stop_event.wait()
        await gateway.stop()


def serve_in_background(
    scheduler, host: str = "127.0.0.1", port: int = 0, **gateway_kwargs: Any
) -> GatewayHandle:
    """Start a gateway on a daemon thread; returns a stoppable handle.

    ``port=0`` binds an ephemeral port (read it off ``handle.port``).
    The handle is a context manager; leaving the block performs the
    same graceful drain as the CLI.
    """
    return GatewayHandle(scheduler, host=host, port=port, **gateway_kwargs)
