"""Multi-core serving: process pool, request coalescing, HTTP gateway.

:mod:`repro.service` made optimization *embeddable* — a thread-safe
service with deadline-aware fallback chains.  This package makes it
*deployable*:

* :mod:`~repro.server.pool` — :class:`ProcessPoolScheduler`, a
  process-per-worker backend so solver throughput scales with cores
  instead of serializing on the GIL.  Requests/results cross workers
  as :mod:`repro.serialization` JSON; per-worker caches warm at
  startup; ``stats()`` merges every worker into one report.
* request coalescing (shared with the thread backend, see
  :class:`repro.service.core.SchedulerBase`) — duplicate in-flight
  requests attach to the running solve and all receive its result.
* :mod:`~repro.server.gateway` + :mod:`~repro.server.routes` +
  :mod:`~repro.server.models` — a stdlib-only asyncio HTTP front door
  (``POST /optimize``, ``POST /sql``, ``GET /stats``,
  ``GET /healthz``) layered routes → request-model → service, with
  admission-control backpressure as 503 and graceful drain on
  shutdown.  Launch it with ``python -m repro serve``.

Backends are interchangeable behind :func:`make_scheduler`; the
determinism contract (content-derived solve seeds) guarantees the same
request stream produces bit-identical plans on either backend at any
worker count.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.server.gateway import (
    Gateway,
    GatewayHandle,
    run_gateway,
    serve_in_background,
)
from repro.server.models import ApiError
from repro.server.pool import (
    ProcessPoolScheduler,
    ServiceConfig,
    default_warmup_requests,
)
from repro.service.core import BatchScheduler, OptimizationService, SchedulerBase

__all__ = [
    "ApiError",
    "BACKENDS",
    "Gateway",
    "GatewayHandle",
    "ProcessPoolScheduler",
    "ServiceConfig",
    "default_warmup_requests",
    "make_scheduler",
    "run_gateway",
    "serve_in_background",
]

BACKENDS = ("thread", "process")


def make_scheduler(
    backend: str = "process",
    config: Optional[ServiceConfig] = None,
    workers: Optional[int] = None,
    queue_limit: Optional[int] = None,
    coalesce: bool = True,
    warmup: Optional[Sequence] = None,
) -> SchedulerBase:
    """Build a serving scheduler for either executor backend.

    ``thread`` wraps a fresh in-process :class:`OptimizationService`
    in a :class:`BatchScheduler` (GIL-bound, instant startup);
    ``process`` builds a :class:`ProcessPoolScheduler` whose workers
    each own a service built from ``config``.  Both speak the same
    ``submit`` / ``run`` / ``stats`` / ``shutdown`` protocol, so the
    gateway, CLI, and benchmarks treat them interchangeably.

    When ``warmup`` is None the process backend warms each worker with
    :func:`default_warmup_requests`; the thread backend warms its
    single shared service the same way so backend comparisons measure
    serving, not interpreter startup.
    """
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown scheduler backend {backend!r}; valid: {', '.join(BACKENDS)}"
        )
    config = config if config is not None else ServiceConfig()
    # fail at startup, not per-request inside a worker process
    from repro.hybrid.registry import solver_names

    known = set(solver_names())
    unknown = [s.solver for s in config.effective_policy() if s.solver not in known]
    if unknown:
        raise ConfigurationError(
            f"policy names unknown solver(s) {', '.join(sorted(set(unknown)))}; "
            f"registered: {', '.join(sorted(known))}"
        )
    if backend == "thread":
        service = config.build()
        warmup_requests = default_warmup_requests() if warmup is None else list(warmup)
        for request in warmup_requests:
            try:
                service.optimize(request)
            except Exception:  # noqa: BLE001 — warmup is best-effort
                pass
        service.metrics.reset()
        service.cache.reset_counters()
        return BatchScheduler(
            service, workers=workers, queue_limit=queue_limit, coalesce=coalesce
        )
    return ProcessPoolScheduler(
        config=config,
        workers=workers,
        queue_limit=queue_limit,
        coalesce=coalesce,
        warmup=warmup,
    )
