"""HTTP request models and error envelopes for the gateway.

The gateway is layered routes → request-model → service: this module
is the middle layer, turning raw JSON bodies into validated
:class:`~repro.service.request.OptimizationRequest` objects and service
results back into response payloads.  All validation failures raise
:class:`ApiError`, which the transport layer renders as a JSON error
envelope::

    {"error": {"status": 400, "code": "bad_request", "message": "..."}}

``POST /optimize`` accepts two body shapes:

* the **full serialized form** — exactly what
  :func:`repro.service.request.request_to_dict` emits
  (``{"kind": "optimization_request", ...}``), so archived requests
  replay over HTTP unchanged;
* the **compact form** — ``{"kind": "mqo"|"join_order"|"sql",
  "problem": {...}, "deadline_ms": ..., "seed": ..., "policy": ...,
  "mode": ...}`` where ``problem`` is the problem kind's own
  serialization payload.

``POST /sql`` is the ergonomic front door: ``{"sql": "SELECT ...",
"catalog_scale": 0.01, ...}`` binds against the built-in TPC-H-style
catalog server-side, so clients ship only query text.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import ConfigurationError, ProblemError
from repro.service.chain import parse_policy
from repro.service.request import (
    OptimizationRequest,
    OptimizationResult,
    problem_from_dict,
    request_from_dict,
    result_to_dict,
)

__all__ = [
    "ApiError",
    "error_envelope",
    "optimize_request_from_body",
    "parse_json_body",
    "result_response",
    "sql_request_from_body",
]


class ApiError(Exception):
    """A client-visible failure with an HTTP status and stable code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = str(code)
        self.message = str(message)


def error_envelope(status: int, code: str, message: str) -> Dict[str, Any]:
    return {"error": {"status": int(status), "code": str(code), "message": str(message)}}


def parse_json_body(body: bytes) -> Dict[str, Any]:
    """Body bytes → JSON object, or a 400 :class:`ApiError`."""
    if not body:
        raise ApiError(400, "empty_body", "request body must be a JSON object")
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ApiError(400, "malformed_json", f"body is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ApiError(
            400, "malformed_json", f"expected a JSON object, got {type(data).__name__}"
        )
    return data


def optimize_request_from_body(
    data: Dict[str, Any], request_id: str, default_deadline_ms: float
) -> OptimizationRequest:
    """``POST /optimize`` body → validated request (full or compact form)."""
    try:
        if data.get("kind") == "optimization_request":
            return request_from_dict(data)
        kind = data.get("kind")
        if not isinstance(kind, str) or not kind:
            raise ApiError(
                400, "missing_kind", "body needs a problem 'kind' (mqo, join_order, sql)"
            )
        problem_data = data.get("problem")
        if not isinstance(problem_data, dict):
            raise ApiError(
                400, "missing_problem", "body needs a 'problem' payload object"
            )
        policy = data.get("policy")
        return OptimizationRequest(
            request_id=str(data.get("request_id", request_id)),
            kind=kind,
            problem=problem_from_dict(kind, problem_data),
            deadline_ms=float(data.get("deadline_ms", default_deadline_ms)),
            seed=None if data.get("seed") is None else int(data["seed"]),
            policy=None if policy is None else parse_policy(policy),
            mode=str(data.get("mode", "first_valid")),
        )
    except (ProblemError, ConfigurationError) as exc:
        raise ApiError(400, "invalid_request", str(exc)) from exc
    except (KeyError, TypeError, ValueError) as exc:
        raise ApiError(400, "invalid_request", f"malformed request: {exc}") from exc


def sql_request_from_body(
    data: Dict[str, Any], request_id: str, default_deadline_ms: float
) -> OptimizationRequest:
    """``POST /sql`` body → a ``kind="sql"`` request bound server-side."""
    sql = data.get("sql")
    if not isinstance(sql, str) or not sql.strip():
        raise ApiError(400, "missing_sql", "body needs a non-empty 'sql' string")
    from repro.sql import SqlQuery, tpch_catalog

    try:
        catalog = tpch_catalog(scale=float(data.get("catalog_scale", 0.01)))
        policy = data.get("policy")
        return OptimizationRequest(
            request_id=str(data.get("request_id", request_id)),
            kind="sql",
            problem=SqlQuery(sql=sql, catalog=catalog),
            deadline_ms=float(data.get("deadline_ms", default_deadline_ms)),
            seed=None if data.get("seed") is None else int(data["seed"]),
            policy=None if policy is None else parse_policy(policy),
            mode=str(data.get("mode", "first_valid")),
        )
    except (ProblemError, ConfigurationError) as exc:
        raise ApiError(400, "invalid_request", str(exc)) from exc
    except (TypeError, ValueError) as exc:
        raise ApiError(400, "invalid_request", f"malformed request: {exc}") from exc


def result_response(result: OptimizationResult) -> Tuple[int, Dict[str, Any]]:
    """Service result → (HTTP status, response payload).

    Admission-control rejections surface as 503 with the saturation
    reason — the scheduler's backpressure signal, telling well-behaved
    clients to back off and retry.
    """
    if result.status == "rejected":
        payload = error_envelope(
            503, "queue_full", result.reject_reason or "admission control rejected"
        )
        payload["request_id"] = result.request_id
        return 503, payload
    return 200, result_to_dict(result)


def require_fields(data: Dict[str, Any], *names: str) -> None:
    """400 unless every named field is present."""
    missing = [name for name in names if name not in data]
    if missing:
        raise ApiError(
            400, "missing_fields", f"body is missing fields: {', '.join(missing)}"
        )


def maybe_int(value: Any, field: str) -> Optional[int]:
    if value is None:
        return None
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise ApiError(400, "invalid_request", f"{field} must be an integer") from exc
