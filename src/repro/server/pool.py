"""Process-pool serving backend: solves scale with cores, not the GIL.

:class:`BatchScheduler`'s thread pool serializes solver work on the
GIL — BENCH_service.json showed throughput *falling* as workers were
added.  :class:`ProcessPoolScheduler` is the drop-in replacement: each
worker is a separate OS process owning a full
:class:`~repro.service.core.OptimizationService` (its own compilation
and result caches, metrics, and fallback chain), so solves run truly
concurrently on multi-core hosts.

Design decisions worth knowing:

* **JSON over pipes** — requests and results cross the process
  boundary as the compact :mod:`repro.serialization` round-trip
  (``optimization_request`` / ``optimization_result`` payloads), the
  exact same encoding used for files and the HTTP gateway.  No pickle
  of live solver objects, so workers can never observe parent state.
* **Determinism across worker counts** — solve seeds derive from the
  problem's content fingerprint (service contract), so which worker
  executes a request is irrelevant: the same request stream yields
  bit-identical plans and energies at ``workers=1`` and ``workers=4``.
* **Per-worker warmup** — each worker optimizes a tiny problem of
  every registered kind before reporting ready, pulling lazy imports,
  numpy kernels, and the compile path hot so the first real request
  isn't billed for interpreter warmup; counters are zeroed afterwards.
* **Mergeable stats** — ``stats()`` polls every worker for its raw
  metric state and folds them (plus parent-side admission/coalescing
  counters) into one :meth:`OptimizationService.stats`-shaped report,
  instead of silently reporting only the parent's empty counters.
* **Round-robin dispatch over per-worker queues** — deterministic
  assignment, and a dedicated control lane for stats polls and the
  graceful-shutdown sentinel (queued work always drains first).
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import serialization
from repro.exceptions import ConfigurationError, SolverError, WorkerCrashError
from repro.service.cache import merge_cache_stats
from repro.service.chain import StageSpec, default_policy, parse_policy
from repro.service.core import OptimizationService, SchedulerBase, coalesce_key
from repro.service.metrics import merge_metric_states
from repro.service.request import OptimizationRequest, OptimizationResult

__all__ = [
    "ProcessPoolScheduler",
    "ServiceConfig",
    "default_warmup_requests",
]

#: seed namespace for warmup problems — far from any workload seed so
#: warmup content never collides with real request fingerprints
_WARMUP_SEED = 987_654_321


@dataclass(frozen=True)
class ServiceConfig:
    """JSON-able recipe for building one per-worker service instance.

    Worker processes cannot receive a live :class:`OptimizationService`
    (caches and locks don't cross ``exec`` boundaries under the spawn
    start method), so the pool ships this config and every worker
    builds its own.
    """

    policy: Optional[Tuple[StageSpec, ...]] = None
    seed: int = 0
    compiled_capacity: int = 256
    result_capacity: int = 1024
    #: enable deadline-aware routing (:mod:`repro.routing`): each
    #: worker builds its own RoutingPolicy over the effective policy's
    #: stages and learns online; ``stats()`` merges the per-worker
    #: models exactly like metrics
    routing: bool = False

    def build(self) -> OptimizationService:
        routing_policy = None
        if self.routing:
            from repro.routing import RoutingPolicy

            routing_policy = RoutingPolicy(candidates=self.effective_policy())
        return OptimizationService(
            policy=self.policy,
            seed=self.seed,
            compiled_capacity=self.compiled_capacity,
            result_capacity=self.result_capacity,
            routing=routing_policy,
        )

    def effective_policy(self) -> Tuple[StageSpec, ...]:
        return tuple(self.policy) if self.policy is not None else default_policy()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "policy": None
            if self.policy is None
            else [stage.to_dict() for stage in self.policy],
            "seed": self.seed,
            "compiled_capacity": self.compiled_capacity,
            "result_capacity": self.result_capacity,
            "routing": self.routing,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServiceConfig":
        policy = data.get("policy")
        return cls(
            policy=None if policy is None else parse_policy(policy),
            seed=int(data.get("seed", 0)),
            compiled_capacity=int(data.get("compiled_capacity", 256)),
            result_capacity=int(data.get("result_capacity", 1024)),
            routing=bool(data.get("routing", False)),
        )


def default_warmup_requests(include_sql: bool = True) -> List[OptimizationRequest]:
    """Tiny deterministic requests covering every registered kind.

    Solving these inside a fresh worker pulls the lazy imports
    (``repro.sql``), the solver registry, and the numpy kernels hot —
    the cost lands in pool startup instead of the first user request.
    """
    from repro.joinorder.generators import chain_query
    from repro.mqo.generator import random_mqo_problem

    requests = [
        OptimizationRequest(
            request_id="warmup-mqo",
            kind="mqo",
            problem=random_mqo_problem(2, 2, seed=_WARMUP_SEED),
            deadline_ms=100.0,
            seed=_WARMUP_SEED,
        ),
        OptimizationRequest(
            request_id="warmup-join",
            kind="join_order",
            problem=chain_query(3, seed=_WARMUP_SEED),
            deadline_ms=100.0,
            seed=_WARMUP_SEED,
        ),
    ]
    if include_sql:
        from repro.sql import SqlQuery, generate_query, tpch_catalog

        statement = generate_query(seed=_WARMUP_SEED, min_tables=2, max_tables=2)
        requests.append(
            OptimizationRequest(
                request_id="warmup-sql",
                kind="sql",
                problem=SqlQuery(sql=str(statement), catalog=tpch_catalog()),
                deadline_ms=100.0,
                seed=_WARMUP_SEED,
            )
        )
    return requests


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _worker_main(
    worker_index: int,
    config_data: Dict[str, Any],
    warmup_texts: Sequence[str],
    task_queue,
    result_queue,
) -> None:
    """One worker process: build a service, warm it, serve the queue."""
    service = ServiceConfig.from_dict(config_data).build()
    for text in warmup_texts:
        try:
            service.optimize(serialization.loads(text))
        except Exception:  # noqa: BLE001 — warmup is best-effort
            pass
    # warm entries stay; the serving report starts from clean counters
    service.metrics.reset()
    service.cache.reset_counters()
    result_queue.put(("ready", worker_index, os.getpid()))
    while True:
        item = task_queue.get()
        if item is None:
            result_queue.put(("bye", worker_index, None))
            return
        tag, task_id, payload = item
        if tag == "stats":
            state = service.state()
            state["worker"] = worker_index
            state["pid"] = os.getpid()
            result_queue.put(("stats", task_id, state))
            continue
        try:
            request = serialization.loads(payload)
            result = service.optimize(request)
            result_queue.put(
                ("result", task_id, serialization.dumps(result, indent=None))
            )
        except Exception as exc:  # noqa: BLE001 — ship failure, keep serving
            result_queue.put(("error", task_id, f"{type(exc).__name__}: {exc}"))


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class ProcessPoolScheduler(SchedulerBase):
    """Admission-controlled, coalescing scheduler over worker processes.

    Same front end as :class:`repro.service.BatchScheduler` (``submit``
    / ``run`` / ``stats`` / ``shutdown``, context-manager protocol) so
    the gateway, the CLI, and the bench treat backends interchangeably.

    ``start_method`` defaults to ``fork`` where available (instant
    startup, Linux) and falls back to the platform default; either way
    workers never rely on inherited state beyond the module code — all
    inputs arrive as JSON.
    """

    backend = "process"

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        workers: Optional[int] = None,
        queue_limit: Optional[int] = None,
        coalesce: bool = True,
        warmup: Optional[Sequence[OptimizationRequest]] = None,
        start_method: Optional[str] = None,
        ready_timeout: float = 120.0,
    ) -> None:
        super().__init__(workers=workers, queue_limit=queue_limit, coalesce=coalesce)
        self.config = config if config is not None else ServiceConfig()
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else methods[0]
        elif start_method not in methods:
            raise ConfigurationError(
                f"start method {start_method!r} unavailable; have: {', '.join(methods)}"
            )
        ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method

        warmup_requests = (
            default_warmup_requests() if warmup is None else list(warmup)
        )
        warmup_texts = [
            serialization.dumps(request, indent=None) for request in warmup_requests
        ]

        self._result_queue = ctx.Queue()
        self._task_queues = [ctx.Queue() for _ in range(self.workers)]
        #: task_id -> (future, target worker, serialized request, retries).
        #: The payload stays here so a request stranded on a crashed
        #: worker can be re-enqueued verbatim on a live one.
        self._pending: Dict[int, Tuple[Future, int, str, int]] = {}
        self._stats_waiters: Dict[int, Future] = {}
        self._next_task = 0
        self._round_robin = 0
        self._closed = False
        self._final_states: Optional[List[Dict[str, Any]]] = None
        self._ready = threading.Event()
        self._ready_count = 0
        self._live = self.workers
        self._said_bye = [False] * self.workers

        config_data = self.config.to_dict()
        self._processes = [
            ctx.Process(
                target=_worker_main,
                args=(
                    index,
                    config_data,
                    warmup_texts,
                    self._task_queues[index],
                    self._result_queue,
                ),
                daemon=True,
                name=f"repro-serve-{index}",
            )
            for index in range(self.workers)
        ]
        for process in self._processes:
            process.start()
        self._collector = threading.Thread(
            target=self._collect, daemon=True, name="repro-serve-collector"
        )
        self._collector.start()
        if not self._ready.wait(timeout=ready_timeout):
            self.shutdown()
            raise ConfigurationError(
                f"process pool failed to come up within {ready_timeout:g}s"
            )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """One merged report across every worker plus the parent.

        Counters sum, latency reservoirs concatenate (percentiles are
        recomputed over the union), per-worker caches aggregate, and
        the parent's admission/coalescing counters fold in — the shape
        matches :meth:`OptimizationService.stats` with an extra
        ``scheduler`` section.
        """
        states = (
            self._final_states
            if self._final_states is not None
            else self._poll_worker_states()
        )
        merged = merge_metric_states(state["metrics"] for state in states)
        merged.merge_state(self.scheduler_metrics.state())
        snapshot = merged.snapshot()
        snapshot["cache"] = merge_cache_stats(state["cache"] for state in states)
        snapshot["uptime_seconds"] = max(
            (state["uptime_seconds"] for state in states), default=0.0
        )
        if self.config.routing:
            from repro.routing import merge_router_states, routing_section

            model = merge_router_states(
                state["routing"] for state in states if state.get("routing")
            )
            snapshot["routing"] = routing_section(
                snapshot,
                model.snapshot(),
                [spec.solver for spec in self.config.effective_policy()],
            )
        section = self._scheduler_section()
        section["start_method"] = self.start_method
        section["per_worker"] = [
            {
                "worker": state.get("worker"),
                "pid": state.get("pid"),
                "requests_ok": state["metrics"]["counters"].get("requests_ok", 0),
            }
            for state in states
        ]
        snapshot["scheduler"] = section
        return snapshot

    def shutdown(self) -> None:
        """Drain gracefully: queued work finishes, then workers exit."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._ready.is_set():
            # capture final per-worker states while workers still live
            self._final_states = self._poll_worker_states()
        for task_queue in self._task_queues:
            task_queue.put(None)
        for process in self._processes:
            process.join(timeout=30.0)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover — hung worker
                process.terminate()
                process.join(timeout=5.0)
        self._collector.join(timeout=10.0)
        self._fail_outstanding("process pool shut down")

    # ------------------------------------------------------------------
    def _dispatch(self, request: OptimizationRequest) -> "Future[OptimizationResult]":
        # called under the scheduler lock (see SchedulerBase.submit)
        if self._closed:
            raise ConfigurationError("scheduler is shut down")
        future: "Future[OptimizationResult]" = Future()
        task_id = self._next_task
        self._next_task += 1
        target = self._pick_worker()
        if target is None:
            future.set_exception(
                WorkerCrashError("no live workers left in the process pool")
            )
            return future
        payload = serialization.dumps(request, indent=None)
        self._pending[task_id] = (future, target, payload, 0)
        self._task_queues[target].put(("request", task_id, payload))
        return future

    def _pick_worker(self) -> Optional[int]:
        """Next live worker in round-robin order; ``None`` if all died.

        Skipping dead workers here (rather than letting the reaper mop
        up afterwards) means a request is never parked on a queue no
        process will ever read.  Callers hold the scheduler lock.
        """
        for _ in range(self.workers):
            index = self._round_robin % self.workers
            self._round_robin += 1
            if self._processes[index].is_alive() and not self._said_bye[index]:
                return index
        return None

    def _rejected(self, request: OptimizationRequest, reason: str) -> OptimizationResult:
        # parent-side: workers never see rejected requests, so the
        # admission counters live in the scheduler metrics and merge
        # into the aggregated report alongside worker counters
        self.scheduler_metrics.incr("requests_total")
        self.scheduler_metrics.incr("requests_rejected")
        return OptimizationResult(
            request_id=request.request_id,
            kind=request.kind,
            status="rejected",
            reject_reason=reason,
        )

    def _coalesce_key(self, request: OptimizationRequest) -> str:
        return coalesce_key(
            request,
            self.config.seed,
            self.config.effective_policy(),
            routed=self.config.routing,
        )

    # ------------------------------------------------------------------
    def _collect(self) -> None:
        """Parent collector thread: route worker messages to futures."""
        while True:
            try:
                message = self._result_queue.get(timeout=0.25)
            except queue_mod.Empty:
                if self._closed and not any(p.is_alive() for p in self._processes):
                    return
                self._reap_dead_workers()
                continue
            tag, ident, payload = message
            if tag == "ready":
                self._ready_count += 1
                if self._ready_count >= self.workers:
                    self._ready.set()
            elif tag == "bye":
                self._said_bye[ident] = True
                self._live -= 1
                if self._closed and self._live <= 0:
                    return
            elif tag == "result":
                entry = self._pending.pop(ident, None)
                if entry is not None:
                    entry[0].set_result(serialization.loads(payload))
            elif tag == "error":
                entry = self._pending.pop(ident, None)
                if entry is not None:
                    entry[0].set_exception(SolverError(f"worker failed: {payload}"))
            elif tag == "stats":
                waiter = self._stats_waiters.pop(ident, None)
                if waiter is not None:
                    waiter.set_result(payload)

    def _reap_dead_workers(self) -> None:
        """Recover requests routed to a worker that died without a goodbye.

        Every stranded request — whether it was queued behind the crash
        or mid-solve when the process died — is re-enqueued once on a
        live worker (safe: solve seeds derive from request content, so
        a re-execution is bit-identical).  A request whose retry also
        crashes, or one stranded when no live worker remains, fails with
        a typed :class:`WorkerCrashError` instead of hanging forever.
        """
        for index, process in enumerate(self._processes):
            if process.is_alive() or self._said_bye[index]:
                continue
            with self._lock:
                self._said_bye[index] = True
                self._live -= 1
                stranded = [
                    (task_id, self._pending.pop(task_id))
                    for task_id, entry in list(self._pending.items())
                    if entry[1] == index
                ]
            reason = (
                f"worker {index} (pid {process.pid}) died with exit code "
                f"{process.exitcode}"
            )
            for task_id, (future, _target, payload, retries) in stranded:
                self._requeue(task_id, future, payload, retries, reason)

    def _requeue(
        self, task_id: int, future: Future, payload: str, retries: int, reason: str
    ) -> None:
        with self._lock:
            target = None if retries >= 1 else self._pick_worker()
            if target is not None:
                self._pending[task_id] = (future, target, payload, retries + 1)
        if target is None:
            future.set_exception(
                WorkerCrashError(f"request abandoned: {reason}")
            )
        else:
            self._task_queues[target].put(("request", task_id, payload))

    def _poll_worker_states(self, timeout: float = 30.0) -> List[Dict[str, Any]]:
        """Ask every live worker for its raw metric state, in order.

        Stats polls ride the same per-worker queues as requests, so a
        busy worker answers after finishing its queued solves — the
        snapshot is therefore consistent (no mid-solve counters).
        """
        waiters: List[Tuple[int, Future]] = []
        with self._lock:
            for index in range(self.workers):
                if not self._processes[index].is_alive():
                    continue
                task_id = self._next_task
                self._next_task += 1
                waiter: Future = Future()
                self._stats_waiters[task_id] = waiter
                self._task_queues[index].put(("stats", task_id, None))
                waiters.append((task_id, waiter))
        states: List[Dict[str, Any]] = []
        for task_id, waiter in waiters:
            try:
                states.append(waiter.result(timeout=timeout))
            except Exception:  # noqa: BLE001 — a dead worker just drops out
                self._stats_waiters.pop(task_id, None)
        return states

    def _fail_outstanding(self, reason: str) -> None:
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future, *_rest in pending:
            if not future.done():
                future.set_exception(SolverError(reason))
