"""Heuristic minor embedding of problem graphs onto hardware graphs.

Finding a minor embedding — mapping each *logical* variable to a
connected chain of *physical* qubits so that every logical interaction
has at least one physical coupler between the two chains — is
NP-complete, so like the paper (Sec. 3.6.2) a heuristic of the
minorminer family [Cai, Macready & Roy 2014] is used:

1. logical nodes are embedded one at a time; node ``u``'s chain is
   grown from the *root* physical qubit that minimises the summed
   (penalty-weighted) distance to the chains of ``u``'s already
   embedded neighbours, taking the union of the shortest paths to each
   such chain.  Each connection path is *split*: the half nearer the
   root joins ``u``'s chain, the far half is donated to the
   neighbour's chain (CMR's accretion rule — chains grow toward each
   other instead of one chain having to reach everybody);
2. during construction chains may *overlap*; overlapping physical
   qubits carry an exponential usage penalty, escalating every
   improvement round, so routing is progressively pushed off shared
   qubits;
3. improvement sweeps rip up one logical node at a time and re-embed
   it; an attempt succeeds when no physical qubit is shared.

Distances are computed with ``scipy.sparse.csgraph.dijkstra``
(``min_only`` multi-source mode) over a CSR matrix whose edge weights
equal the usage penalty of the head node, keeping the inner loop in C.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra



@dataclass
class EmbeddingResult:
    """A minor embedding: logical node → chain of physical qubits."""

    chains: Dict[Hashable, Tuple[int, ...]]

    @property
    def num_physical_qubits(self) -> int:
        """Total physical qubits used — the y-axis of paper Fig. 14."""
        return sum(len(c) for c in self.chains.values())

    @property
    def max_chain_length(self) -> int:
        return max((len(c) for c in self.chains.values()), default=0)

    def average_chain_length(self) -> float:
        if not self.chains:
            return 0.0
        return self.num_physical_qubits / len(self.chains)

    def is_valid(self, source: nx.Graph, target: nx.Graph) -> bool:
        """Validate chain connectivity, disjointness and edge coverage."""
        used: Set[int] = set()
        for node, chain in self.chains.items():
            if not chain:
                return False
            if used & set(chain):
                return False
            used |= set(chain)
            if not nx.is_connected(target.subgraph(chain)):
                return False
        for a, b in source.edges:
            if a == b:
                continue
            chain_a, chain_b = set(self.chains[a]), set(self.chains[b])
            if not any(target.has_edge(p, q) for p in chain_a for q in chain_b):
                return False
        return True


class _TargetIndex:
    """CSR adjacency of the target graph with mutable node penalties.

    The CSR sparsity structure is built once; only the data vector is
    rewritten per routing call (edge weight = penalty of head node).
    """

    def __init__(self, target: nx.Graph) -> None:
        self.nodes: List[int] = list(target.nodes)
        self.index: Dict[int, int] = {n: i for i, n in enumerate(self.nodes)}
        self.n = len(self.nodes)
        rows, cols = [], []
        for a, b in target.edges:
            ia, ib = self.index[a], self.index[b]
            rows.extend((ia, ib))
            cols.extend((ib, ia))
        matrix = csr_matrix(
            (np.ones(len(rows)), (np.array(rows), np.array(cols))),
            shape=(self.n, self.n),
        )
        matrix.sum_duplicates()
        self._matrix = matrix
        self._heads = matrix.indices.copy()

    def weighted_matrix(self, penalties: np.ndarray) -> csr_matrix:
        """Adjacency where traversing into node j costs ``penalties[j]``."""
        self._matrix.data = penalties[self._heads]
        return self._matrix


def find_embedding(
    source: nx.Graph,
    target: nx.Graph,
    tries: int = 3,
    improvement_rounds: int = 40,
    penalty_base: float = 8.0,
    seed: Optional[int] = None,
    max_chain_length: Optional[int] = None,
    stop_at_first: bool = False,
) -> Optional[EmbeddingResult]:
    """Embed ``source`` as a minor of ``target``.

    Returns ``None`` when every attempt fails — the condition the paper
    reports as "an embedding can no longer be reliably found"
    (Sec. 6.3.5 keeps only points where ≥50 % of attempts succeed).

    Parameters
    ----------
    source:
        The problem's interaction graph (QUBO variables + quadratic terms).
    target:
        The hardware graph (Chimera/Pegasus).
    tries:
        Independent randomized restarts.
    improvement_rounds:
        Maximum rip-up-and-reroute sweeps per restart.
    penalty_base:
        Base of the exponential overuse penalty (doubled per round).
    seed:
        Randomizes node orders and tie-breaks.
    max_chain_length:
        Optional hard cap; an attempt producing a longer chain fails.
    stop_at_first:
        Return the first valid embedding instead of the best over all
        tries (cheaper when only feasibility matters).
    """
    if source.number_of_nodes() == 0:
        return EmbeddingResult(chains={})
    if source.number_of_nodes() > target.number_of_nodes():
        return None
    rng = np.random.default_rng(seed)
    index = _TargetIndex(target)

    best: Optional[EmbeddingResult] = None
    for attempt in range(max(1, tries)):
        chains = _single_attempt(
            source, index, rng, improvement_rounds, penalty_base,
            degree_order=(attempt == 0),
        )
        if chains is None:
            continue
        result = EmbeddingResult(
            chains={
                u: tuple(index.nodes[i] for i in chain) for u, chain in chains.items()
            }
        )
        if max_chain_length is not None and result.max_chain_length > max_chain_length:
            continue
        if best is None or result.num_physical_qubits < best.num_physical_qubits:
            best = result
        if stop_at_first:
            break
    if best is None:
        best = _clique_template_fallback(source, target, max_chain_length)
    return best


def _clique_template_fallback(
    source: nx.Graph,
    target: nx.Graph,
    max_chain_length: Optional[int],
) -> Optional[EmbeddingResult]:
    """Deterministic rescue for square Chimera targets.

    When the heuristic fails but the source fits inside the target's
    native clique capacity, Choi's TRIAD template (see
    :mod:`repro.annealing.clique_embedding`) always succeeds — every
    interaction graph is a subgraph of the complete graph.
    """
    if target.graph.get("family") != "chimera":
        return None
    m = target.graph.get("rows")
    if m is None or target.graph.get("columns") != m:
        return None
    t = target.graph.get("tile", 4)
    n = source.number_of_nodes()
    if n > t * m or max_chain_length is not None and m + 1 > max_chain_length:
        return None
    from repro.annealing.clique_embedding import chimera_clique_embedding

    template = chimera_clique_embedding(n, m, t, node_labels=list(source.nodes))
    # the template assumes linear qubit labels; verify before trusting
    if not all(q in target for chain in template.chains.values() for q in chain):
        return None
    return template


def _single_attempt(
    source: nx.Graph,
    index: _TargetIndex,
    rng: np.random.Generator,
    improvement_rounds: int,
    penalty_base: float,
    degree_order: bool = True,
) -> Optional[Dict[Hashable, List[int]]]:
    """One randomized embedding attempt; chains use target *indices*."""
    usage = np.zeros(index.n, dtype=np.int32)  # physical qubit -> #chains
    chains: Dict[Hashable, Set[int]] = {}
    escalation = [penalty_base]  # grows each round to force convergence

    def penalties(exclude_chain: Sequence[int] = ()) -> np.ndarray:
        u = usage.copy()
        for i in exclude_chain:
            u[i] -= 1
        # cap the exponent and the absolute penalty: a used qubit must
        # be expensive but never unreachable, or routing dead-ends on
        # dense instances where temporary overlap is the only way out
        return np.minimum(
            np.power(escalation[0], np.minimum(u, 12).astype(float)), 1e9
        )

    def rip_up(node: Hashable) -> Set[int]:
        old = chains.get(node, set())
        for i in old:
            usage[i] -= 1
        chains[node] = set()
        return old

    def commit(node: Hashable, chain: Set[int], extensions: Dict[Hashable, Set[int]]) -> None:
        chains[node] = chain
        for i in chain:
            usage[i] += 1
        # path halves donated to neighbour chains (CMR path splitting)
        for other, extra in extensions.items():
            fresh = extra - chains[other]
            chains[other] |= fresh
            for i in fresh:
                usage[i] += 1

    if degree_order:
        nodes = sorted(source.nodes, key=lambda u: (-source.degree[u], rng.random()))
    else:
        nodes = sorted(source.nodes, key=lambda _: rng.random())

    # initial pass: paths are *split* between both endpoint chains so
    # chains grow toward each other (CMR accretion)
    for node in nodes:
        routed = _route_chain(source, index, chains, node, penalties(), rng, split=True)
        if routed is None:
            return None
        commit(node, *routed)

    # Improvement sweeps: rip up and re-route nodes, escalating the
    # overuse penalty, until no physical qubit is shared.  Two
    # re-routing modes complement each other: whole-path routing
    # (split=False) converges quickly on large sparse graphs, while
    # path-splitting (split=True) resolves dense clique-like graphs
    # where one chain cannot reach all neighbours alone.  Start with
    # whole-path routing and flip to splitting once progress stalls.
    #
    # After the first full sweep, only the *dirty* nodes — those whose
    # chains touch an overlapped qubit, plus their source neighbours —
    # are re-routed; untouched chains are already conflict-free and
    # re-routing them only burns Dijkstra time.  Every fourth round a
    # full sweep compacts the whole embedding.
    best_overlap = math.inf
    stale = 0
    split_mode = False
    for round_number in range(improvement_rounds):
        full_sweep = round_number == 0 or round_number % 4 == 3
        if full_sweep:
            worklist = list(source.nodes)
        else:
            shared = {int(i) for i in np.flatnonzero(usage > 1)}
            # keep chain-insertion order: a *set* of logical nodes would
            # iterate in string-hash order, which varies with
            # PYTHONHASHSEED and leaks into the rng tie-break draws,
            # making results differ between otherwise identical runs
            dirty = [
                node for node, chain in chains.items() if chain & shared
            ]
            worklist = list(dirty)
            for node in dirty:
                worklist.extend(source.neighbors(node))
            worklist = list(dict.fromkeys(worklist))
        for node in sorted(worklist, key=lambda _: rng.random()):
            old = rip_up(node)
            routed = _route_chain(
                source, index, chains, node, penalties(), rng, split=split_mode
            )
            if routed is None:
                routed = (old, {})  # restore
            commit(node, *routed)
            # trim after commit so donated path-halves are visible to
            # the contact checks
            trimmed = _trim_chain(source, index, chains, node, chains[node])
            for q in chains[node] - trimmed:
                usage[q] -= 1
            chains[node] = trimmed
        overlap = int(np.sum(usage > 1))
        if overlap == 0:
            break
        if overlap < best_overlap:
            best_overlap = overlap
            stale = 0
        else:
            stale += 1
            if not split_mode and stale >= 2:
                split_mode = True  # stalled: let chains grow toward each other
                stale = 0
            elif stale >= 6 and best_overlap > max(4, source.number_of_nodes() // 20):
                break  # plateaued far from a valid embedding
        # raise the stakes on shared qubits every round; the penalty
        # cap keeps even heavily-contended qubits reachable
        escalation[0] = min(escalation[0] * 2.0, 1e6)

    if np.any(usage > 1):
        return None
    return {node: sorted(chain) for node, chain in chains.items()}


def _route_chain(
    source: nx.Graph,
    index: _TargetIndex,
    chains: Dict[Hashable, Set[int]],
    node: Hashable,
    penalties: np.ndarray,
    rng: np.random.Generator,
    split: bool = True,
) -> Optional[Tuple[Set[int], Dict[Hashable, Set[int]]]]:
    """Grow a chain for ``node`` toward its embedded neighbours.

    Returns ``(chain, extensions)``.  With ``split=True`` the far half
    of each connection path is donated to the corresponding neighbour's
    chain; otherwise the whole path joins this node's chain.
    """
    embedded_neighbors = [v for v in source.neighbors(node) if chains.get(v)]
    if not embedded_neighbors:
        # no placed neighbours: put the node on the cheapest free qubit
        start = int(np.argmin(penalties + rng.random(index.n) * 1e-6))
        return {start}, {}

    matrix = index.weighted_matrix(penalties)
    dists, preds, origins = [], [], []
    for v in embedded_neighbors:
        chain = sorted(chains[v])
        dist, pred, sources = dijkstra(
            matrix,
            directed=True,
            indices=chain,
            return_predecessors=True,
            min_only=True,
        )
        dists.append(dist)
        preds.append(pred)
        origins.append(sources)

    # Total cost per candidate root: the root's own penalty is paid once
    # plus, per neighbour, the path cost *excluding* the root's entry
    # (each Dijkstra distance already charges the root entry, except for
    # roots inside the neighbour chain itself where the distance is 0).
    totals = penalties.copy()
    for dist in dists:
        totals += np.maximum(0.0, dist - penalties)
    totals += rng.random(index.n) * 1e-9  # random tie-break

    root = int(np.argmin(totals))
    if not math.isfinite(totals[root]):
        return None

    chain: Set[int] = {root}
    extensions: Dict[Hashable, Set[int]] = {}
    for v, dist, pred in zip(embedded_neighbors, dists, preds):
        if not math.isfinite(dist[root]):
            return None
        # walk predecessors from root back into the neighbour chain
        path = [root]
        current = root
        while True:
            parent = int(pred[current])
            if parent < 0:
                break
            path.append(parent)
            current = parent
        # path = [root, ..., src in chain(v)]; interior nodes are split:
        # the near half joins this chain, the far half extends v's.
        interior = [p for p in path[1:] if p not in chains[v]]
        cut = (len(interior) + 1) // 2 if split else len(interior)
        chain.update(interior[:cut])
        if interior[cut:]:
            extensions.setdefault(v, set()).update(interior[cut:])
    return chain, extensions


def _trim_chain(
    source: nx.Graph,
    index: _TargetIndex,
    chains: Dict[Hashable, Set[int]],
    node: Hashable,
    chain: Set[int],
) -> Set[int]:
    """Drop chain leaves not needed for any neighbour contact.

    A physical qubit can be removed when it is a leaf of the chain's
    induced tree and is not the *only* contact point to some embedded
    neighbour's chain.  Repeats until fixpoint.
    """
    if len(chain) <= 1:
        return chain
    # adjacency within the target restricted to the chain
    matrix = index._matrix
    indptr, cols = matrix.indptr, matrix.indices

    def target_neighbors(q: int):
        return cols[indptr[q]:indptr[q + 1]]

    neighbor_chains = [
        chains[v] for v in source.neighbors(node) if chains.get(v)
    ]
    changed = True
    while changed and len(chain) > 1:
        changed = False
        degree = {q: 0 for q in chain}
        for q in chain:
            for t in target_neighbors(q):
                if t in chain:
                    degree[q] += 1
        for q in list(chain):
            if degree[q] > 1:
                continue  # interior node: removal may disconnect
            candidate = chain - {q}
            needed = False
            for other in neighbor_chains:
                touches_via_q = any(int(t) in other for t in target_neighbors(q))
                if not touches_via_q:
                    continue
                still_touches = any(
                    int(t) in other
                    for p in candidate
                    for t in target_neighbors(p)
                )
                if not still_touches:
                    needed = True
                    break
            if not needed:
                chain = candidate
                changed = True
                break
    return chain
