"""The Pegasus hardware topology (paper Secs. 3.6.2, 6.3.5).

The Pegasus graph ``P(m)`` is the topology of the D-Wave Advantage
system (``P16``, 5640 qubits, 15 couplers per qubit).  The construction
follows the geometric description of Boothby et al., *Next-Generation
Topology of D-Wave Quantum Processors* (2020):

Each qubit is a unit-length segment on a 12m x 12m grid,

* **vertical** qubit ``(0, w, k, z)`` occupies column ``x = 12w + k``
  and rows ``y ∈ [12z + S[k], 12z + S[k] + 11]``;
* **horizontal** qubit ``(1, w, k, z)`` occupies row ``y = 12w + k``
  and columns ``x ∈ [12z + S[k], 12z + S[k] + 11]``;

with the production offset sequence
``S = (2,2,2,2, 6,6,6,6, 10,10,10,10)``.  Three coupler families:

* **internal** — a vertical and a horizontal qubit whose segments
  cross (12 per qubit);
* **external** — colinear qubits in consecutive tiles,
  ``(u,w,k,z) ~ (u,w,k,z+1)`` (≤2 per qubit);
* **odd** — parallel neighbouring qubits, ``(u,w,2j,z) ~ (u,w,2j+1,z)``
  (1 per qubit),

for a maximum degree of 15.  Boundary qubits whose segments cross no
perpendicular qubit (the ``8(m-1)`` of them) are dropped, which yields
the advertised ``24m(m-1) - 8(m-1)`` qubits — 5640 for ``P16``.
"""

from __future__ import annotations

from typing import Tuple

import networkx as nx

from repro.exceptions import ModelError

#: Pegasus coordinate: (orientation u∈{0,1}, perpendicular tile w, offset k, parallel tile z)
PegasusCoord = Tuple[int, int, int, int]

#: Production offset sequence shared by both orientations.
OFFSETS: Tuple[int, ...] = (2, 2, 2, 2, 6, 6, 6, 6, 10, 10, 10, 10)


def pegasus_graph(m: int, coordinates: bool = False) -> nx.Graph:
    """Build the Pegasus graph ``P(m)``.

    Parameters
    ----------
    m:
        Tile dimension; the D-Wave Advantage is ``m = 16``.
    coordinates:
        When True, nodes are ``(u, w, k, z)`` tuples; otherwise linear
        indices ``((u * m + w) * 12 + k) * (m - 1) + z``.

    Returns
    -------
    networkx.Graph
        With graph attributes ``family="pegasus"`` and ``rows=m``.
    """
    if m < 2:
        raise ModelError("pegasus requires m >= 2")

    span = m - 1  # number of parallel tiles

    def linear(u: int, w: int, k: int, z: int) -> int:
        return ((u * m + w) * 12 + k) * span + z

    label = (lambda *c: tuple(c)) if coordinates else (lambda *c: linear(*c))

    g = nx.Graph(family="pegasus", rows=m)

    # position index: perpendicular coordinate -> (w, k)
    # vertical qubit (0, w, k, z): column x = 12w + k, rows [12z+S[k], +11]
    # horizontal qubit (1, w, k, z): row y = 12w + k, cols [12z+S[k], +11]
    def crossing_partner(coordinate: int, offset_k: int) -> Tuple[int, int]:
        """Tile/offset of the perpendicular qubit covering ``coordinate``."""
        return divmod(coordinate, 12)

    # internal couplers: for every vertical qubit, walk the 12 grid rows
    # its segment covers and attach to the horizontal qubit crossing there.
    for w in range(m):
        for k in range(12):
            x = 12 * w + k
            for z in range(span):
                y_lo = 12 * z + OFFSETS[k]
                for y in range(y_lo, y_lo + 12):
                    wh, kh = divmod(y, 12)
                    if wh >= m:
                        continue
                    # horizontal qubit at row y covering column x needs
                    # z' with 12 z' + S[kh] <= x < 12 z' + S[kh] + 12
                    zh, rem = divmod(x - OFFSETS[kh], 12)
                    if 0 <= zh < span:
                        g.add_edge(label(0, w, k, z), label(1, wh, kh, zh))

    # external couplers: colinear qubits in consecutive parallel tiles
    for u in range(2):
        for w in range(m):
            for k in range(12):
                for z in range(span - 1):
                    a, b = label(u, w, k, z), label(u, w, k, z + 1)
                    if g.has_node(a) and g.has_node(b):
                        g.add_edge(a, b)

    # odd couplers: parallel neighbours within the same tile
    for u in range(2):
        for w in range(m):
            for j in range(6):
                for z in range(span):
                    a, b = label(u, w, 2 * j, z), label(u, w, 2 * j + 1, z)
                    if g.has_node(a) and g.has_node(b):
                        g.add_edge(a, b)

    # drop boundary qubits with no internal couplers (fabric trimming):
    # vertical k∈{0,1} at w=0, vertical k∈{10,11} at w=m-1, and the
    # horizontal mirror images.
    fabricless = []
    for u in range(2):
        for k in (0, 1):
            for z in range(span):
                fabricless.append(label(u, 0, k, z))
        for k in (10, 11):
            for z in range(span):
                fabricless.append(label(u, m - 1, k, z))
    g.remove_nodes_from(fabricless)
    return g


def advantage_graph() -> nx.Graph:
    """The P16 topology of the D-Wave Advantage (5640 qubits)."""
    return pegasus_graph(16)


def pegasus_node_count(m: int) -> int:
    """Closed-form fabric size: ``24m(m-1) - 8(m-1)``."""
    return 24 * m * (m - 1) - 8 * (m - 1)
