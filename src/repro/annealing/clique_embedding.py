"""Deterministic native clique embeddings for Chimera (Choi's TRIAD).

The paper notes (Sec. 7) that better embedding algorithms than the
minorminer heuristic are an active research topic.  For *complete*
source graphs, Chimera admits a closed-form embedding [Choi 2011]:
``C(m, m, t)`` hosts :math:`K_{tm}` with every chain exactly
``m + 1`` physical qubits long.

Construction — logical node ``(b, k)`` with block ``b < m`` and offset
``k < t`` owns the L-shaped chain

* vertical qubits ``(row r, col b, shore 0, k)`` for ``r = 0..b``, and
* horizontal qubits ``(row b, col c, shore 1, k)`` for ``c = b..m-1``;

the two arms meet inside cell ``(b, b)`` through the intra-cell
coupler.  Chains ``(b, k)`` and ``(b', k')`` with ``b <= b'`` always
meet in cell ``(b, b')`` where a horizontal qubit of the former faces
a vertical qubit of the latter.

Because every QUBO interaction graph is a subgraph of the complete
graph, this gives a *guaranteed* embedding whenever the variable count
is at most ``t·m`` — a useful fallback, and the baseline the
``ablation_embedding`` benchmark compares the heuristic against:
heuristics beat the clique template on sparse problems (shorter
chains) but can fail where the template cannot.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

from repro.exceptions import EmbeddingError
from repro.annealing.embedding import EmbeddingResult


def chimera_linear_index(row: int, col: int, shore: int, offset: int, n: int, t: int) -> int:
    """Row-major linear index matching :func:`chimera_graph`."""
    return ((row * n + col) * 2 + shore) * t + offset


def chimera_clique_embedding(
    num_nodes: int,
    m: int,
    t: int = 4,
    node_labels: Optional[Sequence[Hashable]] = None,
) -> EmbeddingResult:
    """Embed :math:`K_{num\\_nodes}` into ``C(m, m, t)``.

    Parameters
    ----------
    num_nodes:
        Clique size; must satisfy ``num_nodes <= t * m``.
    m, t:
        Chimera grid size and shore size.
    node_labels:
        Optional logical node names (defaults to ``0..num_nodes-1``).

    Returns
    -------
    EmbeddingResult
        Chains over linear qubit indices of ``chimera_graph(m, m, t)``.

    Raises
    ------
    EmbeddingError
        If the clique does not fit (``num_nodes > t * m``).
    """
    capacity = t * m
    if num_nodes < 1:
        raise EmbeddingError("clique must have at least one node")
    if num_nodes > capacity:
        raise EmbeddingError(
            f"K_{num_nodes} does not fit natively in C({m},{m},{t}) "
            f"(capacity {capacity})"
        )
    if node_labels is not None and len(node_labels) != num_nodes:
        raise EmbeddingError("node_labels length must equal num_nodes")
    labels = list(node_labels) if node_labels is not None else list(range(num_nodes))

    chains = {}
    for i, label in enumerate(labels):
        block, offset = divmod(i, t)
        vertical = [
            chimera_linear_index(r, block, 0, offset, m, t) for r in range(block + 1)
        ]
        horizontal = [
            chimera_linear_index(block, c, 1, offset, m, t) for c in range(block, m)
        ]
        chains[label] = tuple(vertical + horizontal)
    return EmbeddingResult(chains=chains)


def max_native_clique(m: int, t: int = 4) -> int:
    """The largest clique this construction hosts on ``C(m, m, t)``."""
    return t * m
