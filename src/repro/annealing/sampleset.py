"""Sample sets: collections of solver samples with energies.

A light-weight analogue of ``dimod.SampleSet``: an ordered collection
of (assignment, energy, occurrences) records shared by every sampler in
the package (simulated annealing, exact, composites, and the
sampler-style interface of the brute-force QUBO solver).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Sequence

import numpy as np

from repro.exceptions import SolverError
from repro.qubo.bqm import Vartype


@dataclass(frozen=True)
class SampleRecord:
    """One sample with its energy and multiplicity."""

    sample: Dict[Hashable, int]
    energy: float
    num_occurrences: int = 1
    #: fraction of chains broken during unembedding (composites only)
    chain_break_fraction: float = 0.0


def _record_sort_key(record: SampleRecord) -> tuple:
    """Energy first, then the sample's sorted items lexicographically.

    Energy ties are common (degenerate ground states, repeated reads),
    and Python's stable sort would otherwise leave their order at the
    mercy of sampler read order — making ``SampleSet.first`` depend on
    irrelevant details like ``num_reads``.
    """
    items = sorted(record.sample.items(), key=lambda kv: str(kv[0]))
    return (record.energy, [(str(k), v) for k, v in items])


class SampleSet:
    """An energy-sorted collection of samples.

    Records are ordered by energy, ties broken by the lexicographically
    smallest sample, so :attr:`first` is a deterministic function of the
    records regardless of insertion order.
    """

    def __init__(self, records: Sequence[SampleRecord], vartype: Vartype) -> None:
        self._records: List[SampleRecord] = sorted(records, key=_record_sort_key)
        self.vartype = vartype

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[Dict[Hashable, int]],
        energies: Sequence[float],
        vartype: Vartype,
        num_occurrences: Optional[Sequence[int]] = None,
        chain_break_fractions: Optional[Sequence[float]] = None,
        aggregate: bool = False,
    ) -> "SampleSet":
        """Build a sample set from parallel sequences.

        ``aggregate=True`` merges duplicate samples into one record with
        summed ``num_occurrences`` (see :meth:`aggregate`) — batched
        samplers use it so repeated reads of the same minimum don't
        inflate the record list.
        """
        if len(samples) != len(energies):
            raise SolverError("samples and energies must have equal length")
        occurrences = num_occurrences or [1] * len(samples)
        breaks = chain_break_fractions or [0.0] * len(samples)
        records = [
            SampleRecord(dict(s), float(e), int(o), float(b))
            for s, e, o, b in zip(samples, energies, occurrences, breaks)
        ]
        result = cls(records, vartype)
        return result.aggregate() if aggregate else result

    # ------------------------------------------------------------------
    @property
    def first(self) -> SampleRecord:
        """The lowest-energy record (ties: lexicographically smallest sample)."""
        if not self._records:
            raise SolverError("sample set is empty")
        return self._records[0]

    @property
    def records(self) -> List[SampleRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SampleRecord]:
        return iter(self._records)

    def energies(self) -> np.ndarray:
        """All energies, ascending."""
        return np.array([r.energy for r in self._records], dtype=float)

    def lowest(self, atol: float = 1e-9) -> "SampleSet":
        """The subset of records tied with the minimum energy."""
        if not self._records:
            return SampleSet([], self.vartype)
        best = self._records[0].energy
        ties = [r for r in self._records if r.energy <= best + atol]
        return SampleSet(ties, self.vartype)

    def aggregate(self) -> "SampleSet":
        """Merge duplicate samples, summing occurrences."""
        seen: Dict[tuple, SampleRecord] = {}
        for r in self._records:
            key = tuple(sorted(r.sample.items(), key=lambda kv: str(kv[0])))
            if key in seen:
                prev = seen[key]
                seen[key] = SampleRecord(
                    prev.sample,
                    prev.energy,
                    prev.num_occurrences + r.num_occurrences,
                    max(prev.chain_break_fraction, r.chain_break_fraction),
                )
            else:
                seen[key] = r
        return SampleSet(list(seen.values()), self.vartype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._records:
            return "SampleSet(empty)"
        return (
            f"SampleSet({len(self._records)} records, "
            f"best energy {self._records[0].energy:g}, {self.vartype.name})"
        )
