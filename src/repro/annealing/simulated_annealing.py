"""Simulated-annealing sampler for binary quadratic models.

The classical solver standing in for ``dwave-neal`` (paper Sec. 6.2.1):
Metropolis sweeps over an Ising spin glass under a geometric inverse-
temperature schedule.  All reads are annealed *in parallel* as numpy
vectors, so one sweep is ``n`` vectorised updates rather than
``n * num_reads`` scalar ones.

The sweep kernel runs over the compiled array form of the model
(:mod:`repro.qubo.compiled`): pass ``compiled=`` to :meth:`sample` to
skip the per-call compilation entirely (the service's compilation
cache does), and the final per-read energies are evaluated as one
vectorized pass instead of a dict walk per read.  RNG draw order and
the per-term float accumulation order are preserved exactly, so
results are bit-identical to the dict-backed seed implementation —
``tests/test_golden_seed_compat.py`` pins that.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import SolverError
from repro.annealing.sampleset import SampleSet
from repro.qubo.bqm import BinaryQuadraticModel, Vartype
from repro.qubo.compiled import CompiledBQM, compile_bqm


class SimulatedAnnealingSampler:
    """Metropolis simulated annealing over the Ising form of a BQM."""

    def __init__(
        self,
        num_sweeps: int = 200,
        beta_range: Optional[Tuple[float, float]] = None,
        seed: Optional[int] = None,
        greedy_postprocess: bool = True,
    ) -> None:
        if num_sweeps < 1:
            raise SolverError("need at least one sweep")
        self.num_sweeps = num_sweeps
        self.beta_range = beta_range
        self.seed = seed
        #: run zero-temperature descent sweeps after annealing until no
        #: single flip improves — snaps reads into exact local minima,
        #: which matters for constraint-heavy QUBOs whose valid states
        #: are isolated (the join-ordering encoding in particular)
        self.greedy_postprocess = greedy_postprocess

    # ------------------------------------------------------------------
    def sample(
        self,
        bqm: BinaryQuadraticModel,
        num_reads: int = 10,
        seed: Optional[int] = None,
        compiled: Optional[CompiledBQM] = None,
    ) -> SampleSet:
        """Anneal ``num_reads`` independent replicas.

        ``compiled`` reuses a pre-compiled form of ``bqm`` (it must be
        ``compile_bqm(bqm)`` of this exact model); when omitted the
        model is compiled on the fly.  Returns a :class:`SampleSet` in
        the vartype of the input model, with duplicate reads merged
        into ``num_occurrences``.
        """
        if num_reads < 1:
            raise SolverError("num_reads must be positive")
        if bqm.num_variables == 0:
            return SampleSet.from_samples([{}], [bqm.offset], vartype=bqm.vartype)

        cbqm = compiled if compiled is not None else compile_bqm(bqm)
        spin = cbqm.spin
        n = spin.num_variables
        h = spin.linear
        neighbors = spin.neighbor_index
        couplings = spin.neighbor_bias

        rng = np.random.default_rng(self.seed if seed is None else seed)
        beta_lo, beta_hi = self._beta_schedule_bounds(spin)
        betas = np.geomspace(max(beta_lo, 1e-9), beta_hi, self.num_sweeps)

        # spins: (num_reads, n) in {-1, +1}
        spins = rng.choice((-1.0, 1.0), size=(num_reads, n))
        for beta in betas:
            for i in rng.permutation(n):
                if len(neighbors[i]):
                    field = h[i] + spins[:, neighbors[i]] @ couplings[i]
                else:
                    field = np.full(num_reads, h[i])
                # flipping s_i changes energy by ΔE = -2 * (-s_i) * field
                delta = 2.0 * spins[:, i] * field * -1.0
                # accept if ΔE < 0 or with Metropolis probability
                accept = (delta < 0) | (
                    rng.random(num_reads) < np.exp(-beta * np.clip(delta, 0, 700))
                )
                spins[accept, i] *= -1.0

        if self.greedy_postprocess:
            for _ in range(4 * n):
                improved = False
                for i in rng.permutation(n):
                    if len(neighbors[i]):
                        field = h[i] + spins[:, neighbors[i]] @ couplings[i]
                    else:
                        field = np.full(num_reads, h[i])
                    delta = -2.0 * spins[:, i] * field
                    accept = delta < -1e-12
                    if accept.any():
                        spins[accept, i] *= -1.0
                        improved = True
                if not improved:
                    break

        if bqm.vartype is Vartype.BINARY:
            states = (spins + 1.0) / 2.0  # exact: ±1 → {0, 1}
            return SampleSet.from_samples(
                cbqm.states_to_samples(states),
                cbqm.energies_compat(states),
                vartype=Vartype.BINARY,
                aggregate=True,
            )
        return SampleSet.from_samples(
            spin.states_to_samples(spins),
            spin.energies_compat(spins),
            vartype=Vartype.SPIN,
            aggregate=True,
        )

    # ------------------------------------------------------------------
    def _beta_schedule_bounds(self, spin: CompiledBQM) -> Tuple[float, float]:
        """Default β range from the bias magnitudes (neal's heuristic).

        The hot temperature makes the largest single-spin flip likely;
        the cold temperature makes the smallest flip unlikely.  The
        per-variable magnitude totals are precomputed at compile time
        (:attr:`CompiledBQM.abs_totals`) in the accumulation order the
        dict implementation used.
        """
        if self.beta_range is not None:
            return self.beta_range
        totals = spin.abs_totals
        magnitudes = totals[totals > 0]
        if not magnitudes.size:
            return (0.1, 1.0)
        hot = 2.0 * float(magnitudes.max())
        cold = float(magnitudes.min())
        return (np.log(2.0) / hot, np.log(100.0) / max(cold, 1e-9))
