"""Simulated-annealing sampler for binary quadratic models.

The classical solver standing in for ``dwave-neal`` (paper Sec. 6.2.1):
Metropolis sweeps over an Ising spin glass under a geometric inverse-
temperature schedule.  All reads are annealed *in parallel* as numpy
vectors, so one sweep is ``n`` vectorised updates rather than
``n * num_reads`` scalar ones.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.exceptions import SolverError
from repro.annealing.sampleset import SampleSet
from repro.qubo.bqm import BinaryQuadraticModel, Vartype


class SimulatedAnnealingSampler:
    """Metropolis simulated annealing over the Ising form of a BQM."""

    def __init__(
        self,
        num_sweeps: int = 200,
        beta_range: Optional[Tuple[float, float]] = None,
        seed: Optional[int] = None,
        greedy_postprocess: bool = True,
    ) -> None:
        if num_sweeps < 1:
            raise SolverError("need at least one sweep")
        self.num_sweeps = num_sweeps
        self.beta_range = beta_range
        self.seed = seed
        #: run zero-temperature descent sweeps after annealing until no
        #: single flip improves — snaps reads into exact local minima,
        #: which matters for constraint-heavy QUBOs whose valid states
        #: are isolated (the join-ordering encoding in particular)
        self.greedy_postprocess = greedy_postprocess

    # ------------------------------------------------------------------
    def sample(
        self,
        bqm: BinaryQuadraticModel,
        num_reads: int = 10,
        seed: Optional[int] = None,
    ) -> SampleSet:
        """Anneal ``num_reads`` independent replicas.

        Returns a :class:`SampleSet` in the vartype of the input model.
        """
        if num_reads < 1:
            raise SolverError("num_reads must be positive")
        if bqm.num_variables == 0:
            return SampleSet.from_samples([{}], [bqm.offset], vartype=bqm.vartype)

        spin = bqm.change_vartype(Vartype.SPIN)
        order: List[Hashable] = list(spin.variables)
        index = {v: i for i, v in enumerate(order)}
        n = len(order)

        h = np.zeros(n)
        for v, bias in spin.linear.items():
            h[index[v]] = bias
        neighbors: List[np.ndarray] = [np.empty(0, dtype=np.intp)] * n
        couplings: List[np.ndarray] = [np.empty(0)] * n
        adjacency: Dict[int, List[Tuple[int, float]]] = {i: [] for i in range(n)}
        for u, v, bias in spin.interactions():
            adjacency[index[u]].append((index[v], bias))
            adjacency[index[v]].append((index[u], bias))
        for i, pairs in adjacency.items():
            if pairs:
                neighbors[i] = np.array([p[0] for p in pairs], dtype=np.intp)
                couplings[i] = np.array([p[1] for p in pairs], dtype=float)

        rng = np.random.default_rng(self.seed if seed is None else seed)
        beta_lo, beta_hi = self._beta_schedule_bounds(h, spin)
        betas = np.geomspace(max(beta_lo, 1e-9), beta_hi, self.num_sweeps)

        # spins: (num_reads, n) in {-1, +1}
        spins = rng.choice((-1.0, 1.0), size=(num_reads, n))
        for beta in betas:
            for i in rng.permutation(n):
                if len(neighbors[i]):
                    field = h[i] + spins[:, neighbors[i]] @ couplings[i]
                else:
                    field = np.full(num_reads, h[i])
                # flipping s_i changes energy by ΔE = -2 * (-s_i) * field
                delta = 2.0 * spins[:, i] * field * -1.0
                # accept if ΔE < 0 or with Metropolis probability
                accept = (delta < 0) | (
                    rng.random(num_reads) < np.exp(-beta * np.clip(delta, 0, 700))
                )
                spins[accept, i] *= -1.0

        if self.greedy_postprocess:
            for _ in range(4 * n):
                improved = False
                for i in rng.permutation(n):
                    if len(neighbors[i]):
                        field = h[i] + spins[:, neighbors[i]] @ couplings[i]
                    else:
                        field = np.full(num_reads, h[i])
                    delta = -2.0 * spins[:, i] * field
                    accept = delta < -1e-12
                    if accept.any():
                        spins[accept, i] *= -1.0
                        improved = True
                if not improved:
                    break

        samples = []
        energies = []
        for read in range(num_reads):
            assignment = {order[i]: int(spins[read, i]) for i in range(n)}
            samples.append(assignment)
            energies.append(spin.energy(assignment))
        sample_set = SampleSet.from_samples(samples, energies, vartype=Vartype.SPIN)
        if bqm.vartype is Vartype.BINARY:
            return _spin_set_to_binary(sample_set, bqm)
        return sample_set

    # ------------------------------------------------------------------
    def _beta_schedule_bounds(
        self, h: np.ndarray, spin: BinaryQuadraticModel
    ) -> Tuple[float, float]:
        """Default β range from the bias magnitudes (neal's heuristic).

        The hot temperature makes the largest single-spin flip likely;
        the cold temperature makes the smallest flip unlikely.
        """
        if self.beta_range is not None:
            return self.beta_range
        max_field = np.abs(h).astype(float)
        totals = {v: abs(b) for v, b in spin.linear.items()}
        for u, v, bias in spin.interactions():
            totals[u] = totals.get(u, 0.0) + abs(bias)
            totals[v] = totals.get(v, 0.0) + abs(bias)
        magnitudes = [t for t in totals.values() if t > 0]
        if not magnitudes:
            return (0.1, 1.0)
        hot = 2.0 * max(magnitudes)
        cold = min(magnitudes)
        return (np.log(2.0) / hot, np.log(100.0) / max(cold, 1e-9))


def _spin_set_to_binary(sample_set: SampleSet, bqm: BinaryQuadraticModel) -> SampleSet:
    """Convert spin samples back to the binary domain of ``bqm``."""
    samples = []
    energies = []
    for record in sample_set:
        binary_sample = {v: (s + 1) // 2 for v, s in record.sample.items()}
        samples.append(binary_sample)
        energies.append(bqm.energy(binary_sample))
    return SampleSet.from_samples(samples, energies, vartype=Vartype.BINARY)
