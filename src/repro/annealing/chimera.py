"""The Chimera hardware topology (paper Sec. 3.6.2, Fig. 5).

A Chimera graph ``C(m, n, t)`` tiles an ``m x n`` grid of unit cells;
each cell is a complete bipartite graph :math:`K_{t,t}` between ``t``
*vertical* and ``t`` *horizontal* qubits.  Vertical qubits couple to
the vertically adjacent cell's vertical qubits, horizontal qubits to
the horizontally adjacent cell's — so each qubit has at most ``t + 2``
couplers (6 for the production ``t = 4``, exactly as the paper states).

The D-Wave 2X used for the MQO study in [Trummer & Koch 2016] is a
``C(12, 12, 4)`` (1152 qubits).
"""

from __future__ import annotations

from typing import Tuple

import networkx as nx

from repro.exceptions import ModelError

#: Chimera coordinate: (row, column, orientation u∈{0,1}, offset k)
ChimeraCoord = Tuple[int, int, int, int]


def chimera_graph(m: int, n: int = None, t: int = 4, coordinates: bool = False) -> nx.Graph:
    """Build the Chimera graph ``C(m, n, t)``.

    Parameters
    ----------
    m, n:
        Grid dimensions (``n`` defaults to ``m``).
    t:
        Shore size of each :math:`K_{t,t}` cell (production value 4).
    coordinates:
        When True, nodes are ``(row, col, u, k)`` tuples; otherwise
        linear indices in row-major order (matching dwave_networkx).

    Returns
    -------
    networkx.Graph
        With graph attributes ``family="chimera"``, ``rows``,
        ``columns`` and ``tile``.
    """
    if n is None:
        n = m
    if m < 1 or n < 1 or t < 1:
        raise ModelError("chimera dimensions must be positive")

    g = nx.Graph(family="chimera", rows=m, columns=n, tile=t)

    def linear(i: int, j: int, u: int, k: int) -> int:
        return ((i * n + j) * 2 + u) * t + k

    label = (lambda *c: tuple(c)) if coordinates else (lambda *c: linear(*c))

    for i in range(m):
        for j in range(n):
            # intra-cell K_{t,t}
            for k0 in range(t):
                for k1 in range(t):
                    g.add_edge(label(i, j, 0, k0), label(i, j, 1, k1))
            # inter-cell couplers
            if i + 1 < m:
                for k in range(t):
                    g.add_edge(label(i, j, 0, k), label(i + 1, j, 0, k))
            if j + 1 < n:
                for k in range(t):
                    g.add_edge(label(i, j, 1, k), label(i, j + 1, 1, k))
    return g


def dwave_2x_graph() -> nx.Graph:
    """The C(12,12,4) topology of the D-Wave 2X used in [9]."""
    return chimera_graph(12, 12, 4)
