"""Quantum-annealing substrate (D-Wave Ocean analogue).

Provides the pieces of the Ocean SDK the paper's join-ordering
evaluation uses (Sec. 6.2.1, 6.3.5):

* exact generators for the **Chimera** and **Pegasus** hardware
  topologies (dwave_networkx analogue);
* a **minorminer-style heuristic embedder** mapping a problem's
  interaction graph onto a hardware graph via chains of physical
  qubits;
* a **simulated-annealing sampler** (neal analogue) plus an exact
  sampler for small models;
* **composites** that embed a model, sample it on a structured solver
  and resolve broken chains.
"""

from repro.annealing.sampleset import SampleSet
from repro.annealing.chimera import chimera_graph
from repro.annealing.pegasus import pegasus_graph
from repro.annealing.simulated_annealing import SimulatedAnnealingSampler
from repro.annealing.exact_sampler import ExactSampler
from repro.annealing.embedding import EmbeddingResult, find_embedding
from repro.annealing.composites import EmbeddingComposite, StructureComposite

__all__ = [
    "SampleSet",
    "chimera_graph",
    "pegasus_graph",
    "SimulatedAnnealingSampler",
    "ExactSampler",
    "EmbeddingResult",
    "find_embedding",
    "EmbeddingComposite",
    "StructureComposite",
]
