"""Ocean-style composites: structured solvers and automatic embedding.

Reproduces the workflow of paper Sec. 6.2.2:

* :class:`StructureComposite` wraps any sampler with a hardware graph
  and *rejects* models whose interactions are not native edges — it
  behaves like a topology-faithful quantum annealer simulator;
* :class:`EmbeddingComposite` heuristically embeds an arbitrary model
  onto the structured solver's graph (chains of physical qubits, chain
  strength, unembedding with majority-vote chain-break resolution).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

import networkx as nx

from repro.exceptions import EmbeddingError, SolverError
from repro.annealing.embedding import EmbeddingResult, find_embedding
from repro.annealing.sampleset import SampleSet
from repro.qubo.bqm import BinaryQuadraticModel, Vartype


class StructureComposite:
    """Restrict a sampler to a fixed hardware graph."""

    def __init__(self, sampler, graph: nx.Graph) -> None:
        self.sampler = sampler
        self.graph = graph

    @property
    def nodes(self):
        return self.graph.nodes

    @property
    def edges(self):
        return self.graph.edges

    def sample(self, bqm: BinaryQuadraticModel, **kwargs) -> SampleSet:
        """Sample a model whose structure matches the hardware graph."""
        for v in bqm.variables:
            if v not in self.graph:
                raise SolverError(f"variable {v!r} is not a hardware qubit")
        for u, v, _ in bqm.interactions():
            if not self.graph.has_edge(u, v):
                raise SolverError(
                    f"interaction ({u!r}, {v!r}) is not a hardware coupler"
                )
        return self.sampler.sample(bqm, **kwargs)


def default_chain_strength(bqm: BinaryQuadraticModel) -> float:
    """Uniform-torque-style chain strength heuristic.

    Strong enough that chains rarely break: 1.5 x the largest absolute
    Ising coefficient (with a floor of 1).
    """
    h, j, _ = bqm.to_ising()
    magnitudes = [abs(b) for b in h.values()] + [abs(b) for b in j.values()]
    peak = max(magnitudes, default=1.0)
    return max(1.0, 1.5 * peak)


def embed_bqm(
    bqm: BinaryQuadraticModel,
    embedding: EmbeddingResult,
    target: nx.Graph,
    chain_strength: Optional[float] = None,
) -> BinaryQuadraticModel:
    """Embed a model onto hardware qubits (Ising-level embedding).

    Linear biases are spread uniformly over each chain; each logical
    coupling is placed on every available physical coupler (split
    evenly); intra-chain couplers get a ferromagnetic ``-chain_strength``
    bias so the chain acts as one logical spin.
    """
    strength = chain_strength if chain_strength is not None else default_chain_strength(bqm)
    h, j, offset = bqm.to_ising()
    embedded = BinaryQuadraticModel(vartype=Vartype.SPIN, offset=offset)

    for v, chain in embedding.chains.items():
        bias = h.get(v, 0.0) / len(chain)
        for q in chain:
            embedded.add_linear(q, bias)
        # ferromagnetic chain couplers over a spanning set of edges
        chain_edges = [
            (a, b) for a in chain for b in chain if a < b and target.has_edge(a, b)
        ]
        for a, b in chain_edges:
            embedded.add_quadratic(a, b, -strength)
            embedded.offset += strength  # keep ground energy aligned

    for (u, v), bias in j.items():
        couplers = [
            (a, b)
            for a in embedding.chains[u]
            for b in embedding.chains[v]
            if target.has_edge(a, b)
        ]
        if not couplers:
            raise EmbeddingError(f"no coupler available for interaction ({u!r}, {v!r})")
        split = bias / len(couplers)
        for a, b in couplers:
            embedded.add_quadratic(a, b, split)
    return embedded


def unembed_sample(
    physical_sample: Dict[int, int],
    embedding: EmbeddingResult,
) -> Tuple[Dict[Hashable, int], float]:
    """Collapse chains back to logical spins by majority vote.

    Returns the logical (spin) sample and the fraction of chains whose
    qubits disagreed (the *chain break fraction*).
    """
    logical: Dict[Hashable, int] = {}
    broken = 0
    for v, chain in embedding.chains.items():
        values = [physical_sample[q] for q in chain]
        total = sum(values)
        if abs(total) != len(values):
            broken += 1
        logical[v] = 1 if total >= 0 else -1
    fraction = broken / len(embedding.chains) if embedding.chains else 0.0
    return logical, fraction


class EmbeddingComposite:
    """Automatically embed, sample and unembed a model."""

    def __init__(
        self,
        structured: StructureComposite,
        tries: int = 3,
        seed: Optional[int] = None,
    ) -> None:
        self.structured = structured
        self.tries = tries
        self.seed = seed
        #: embedding of the most recent sample() call
        self.last_embedding: Optional[EmbeddingResult] = None

    def sample(
        self,
        bqm: BinaryQuadraticModel,
        num_reads: int = 10,
        chain_strength: Optional[float] = None,
        **kwargs,
    ) -> SampleSet:
        """Embed onto the structured solver's graph and sample.

        Raises
        ------
        EmbeddingError
            When the heuristic finds no embedding (the failure mode
            bounding the solvable problem sizes in paper Fig. 14).
        """
        source = bqm.interaction_graph()
        embedding = find_embedding(
            source, self.structured.graph, tries=self.tries, seed=self.seed
        )
        if embedding is None:
            raise EmbeddingError(
                f"no embedding found for {source.number_of_nodes()} variables / "
                f"{source.number_of_edges()} interactions"
            )
        self.last_embedding = embedding

        embedded = embed_bqm(bqm, embedding, self.structured.graph, chain_strength)
        raw = self.structured.sample(embedded, num_reads=num_reads, **kwargs)

        spin_bqm = bqm.change_vartype(Vartype.SPIN)
        samples, energies, breaks, occurrences = [], [], [], []
        for record in raw:
            logical, fraction = unembed_sample(record.sample, embedding)
            samples.append(logical)
            energies.append(spin_bqm.energy(logical))
            breaks.append(fraction)
            # the structured sampler returns deduped records; keep the
            # read multiplicities so occurrence totals still sum to
            # num_reads after unembedding
            occurrences.append(record.num_occurrences)
        result = SampleSet.from_samples(
            samples,
            energies,
            vartype=Vartype.SPIN,
            num_occurrences=occurrences,
            chain_break_fractions=breaks,
        )
        if bqm.vartype is Vartype.BINARY:
            binary_samples = [
                {v: (s + 1) // 2 for v, s in r.sample.items()} for r in result
            ]
            binary_energies = [bqm.energy(s) for s in binary_samples]
            result = SampleSet.from_samples(
                binary_samples,
                binary_energies,
                vartype=Vartype.BINARY,
                num_occurrences=[r.num_occurrences for r in result],
                chain_break_fractions=[r.chain_break_fraction for r in result],
            )
        return result
