"""Exhaustive sampler for small binary quadratic models.

The Ocean ``ExactSolver`` analogue: enumerates every assignment so the
full energy spectrum is available.  Useful to validate the QUBO
encodings (e.g. that every MQO plan-selection constraint is honoured by
*all* low-energy states, not just the ground state).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import SolverError
from repro.annealing.sampleset import SampleSet
from repro.qubo.bqm import BinaryQuadraticModel

_MAX_EXACT_VARIABLES = 22


class ExactSampler:
    """Enumerate all assignments of a BQM (≤ 22 variables)."""

    def sample(
        self,
        bqm: BinaryQuadraticModel,
        num_reads: Optional[int] = None,
        **_: object,
    ) -> SampleSet:
        """Return every assignment with its energy, sorted ascending.

        ``num_reads`` truncates the returned set to the lowest-energy
        assignments (all of them when None).
        """
        n = bqm.num_variables
        if n == 0:
            return SampleSet.from_samples([{}], [bqm.offset], vartype=bqm.vartype)
        if n > _MAX_EXACT_VARIABLES:
            raise SolverError(
                f"exact sampling over {n} variables is infeasible "
                f"(limit {_MAX_EXACT_VARIABLES})"
            )
        q, offset, order = bqm.to_numpy_matrix()
        count = 1 << n
        indices = np.arange(count, dtype=np.uint32)
        bits = ((indices[:, None] >> np.arange(n, dtype=np.uint32)[None, :]) & 1).astype(
            float
        )
        energies = np.einsum("ij,jk,ik->i", bits, q, bits) + offset
        ranking = np.argsort(energies, kind="stable")
        if num_reads is not None:
            ranking = ranking[:num_reads]
        lo, hi = bqm.vartype.values
        samples = []
        for row_index in ranking:
            row = bits[row_index]
            samples.append({v: (hi if row[i] else lo) for i, v in enumerate(order)})
        return SampleSet.from_samples(
            samples, [float(energies[r]) for r in ranking], vartype=bqm.vartype
        )
