"""Multi-annealer fleet: topology-constrained devices + concurrent dispatch.

The paper's capacity ceiling (one simulated Chimera/Pegasus device) is
what the hybrid decomposer works around; this package supplies the
scale-out half: :class:`AnnealerDevice` models one annealer with an
embedding-aware admission check, and :class:`AnnealerFleet` dispatches
independent sub-QUBOs across N of them concurrently with deterministic
per-(device spec, subproblem) seeds, so fleet results are bit-identical
regardless of fleet size or dispatch order.

See ``docs/api_guide.md`` ("Sharding across annealers & replaying
workloads") for usage; :class:`repro.hybrid.DecomposingSolver` accepts a
fleet via its ``fleet=`` option (registry name ``"fleet"``).
"""

from .device import AnnealerDevice, bqm_fingerprint, graph_fingerprint
from .fleet import AnnealerFleet

__all__ = [
    "AnnealerDevice",
    "AnnealerFleet",
    "bqm_fingerprint",
    "graph_fingerprint",
]
