"""A fleet of simulated annealer devices with concurrent dispatch.

Trummer & Koch (arXiv 1510.06437) solve large MQO instances by cutting
them into annealer-sized sub-QUBOs; once the cut exists, the shards are
independent and nothing forces them through one device.
:class:`AnnealerFleet` is that scale-out layer: it holds N
:class:`~repro.annealers.device.AnnealerDevice` instances and dispatches
a batch of independent sub-QUBOs across them with a thread pool.

Determinism: each device derives its solve seed from its *spec key* and
the subproblem's content fingerprint (see
:meth:`AnnealerDevice.solve_seed`), so on a homogeneous fleet the answer
for a given shard is the same no matter which device runs it, how many
devices exist, or in which order shards complete.  :meth:`dispatch`
returns results in submission order regardless of completion order.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.qubo.bqm import BinaryQuadraticModel

from .device import AnnealerDevice

__all__ = ["AnnealerFleet"]


class AnnealerFleet:
    """N simulated annealers behind one concurrent dispatch surface.

    Use :meth:`homogeneous` for the common case of identical devices
    (the configuration under which fleet-mode decomposition is
    bit-identical across fleet sizes).  Heterogeneous fleets are
    allowed; capacity-sensitive callers should size subproblems to
    :meth:`min_capacity`.
    """

    def __init__(self, devices: Sequence[AnnealerDevice]) -> None:
        if not devices:
            raise ConfigurationError("a fleet needs at least one device")
        self.devices: Tuple[AnnealerDevice, ...] = tuple(devices)
        self._lock = threading.Lock()
        self._next = 0
        self.batches = 0
        self.subproblems = 0
        self.dispatch_seconds = 0.0

    @classmethod
    def homogeneous(
        cls,
        size: int,
        family: str = "chimera",
        m: int = 4,
        t: int = 4,
        num_sweeps: int = 200,
        beta_range: Optional[Tuple[float, float]] = None,
    ) -> "AnnealerFleet":
        """``size`` identical devices (``fleet-0`` ... ``fleet-{N-1}``)."""
        if size < 1:
            raise ConfigurationError("fleet size must be at least 1")
        return cls(
            [
                AnnealerDevice(
                    name=f"fleet-{i}",
                    family=family,
                    m=m,
                    t=t,
                    num_sweeps=num_sweeps,
                    beta_range=beta_range,
                )
                for i in range(size)
            ]
        )

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.devices)

    def min_capacity(self) -> int:
        """Largest subproblem guaranteed to fit on *every* device."""
        return min(d.clique_capacity for d in self.devices)

    def is_homogeneous(self) -> bool:
        keys = {d.spec_key() for d in self.devices}
        return len(keys) == 1

    def device_for(self, bqm: BinaryQuadraticModel) -> Optional[AnnealerDevice]:
        """Round-robin over devices that admit this subproblem.

        Round-robin spreads load; correctness does not depend on the
        choice because homogeneous devices share a spec key (and for a
        heterogeneous fleet the caller opted out of bit-identity
        anyway).
        """
        n = len(self.devices)
        with self._lock:
            start = self._next
            self._next = (self._next + 1) % n
        for step in range(n):
            device = self.devices[(start + step) % n]
            if device.fits(bqm):
                return device
        return None

    # ------------------------------------------------------------------
    def dispatch(
        self,
        subproblems: Sequence[BinaryQuadraticModel],
        root_seed: int,
        num_reads: int = 5,
    ) -> List[Tuple[dict, float]]:
        """Anneal independent sub-QUBOs concurrently across the fleet.

        Returns ``(sample, energy)`` pairs **in submission order**; the
        completion order never leaks into the result.  Subproblems that
        fit no device raise :class:`~repro.exceptions.EmbeddingError`
        from the owning device's :meth:`sample` via the fit check in
        :meth:`device_for` returning ``None``.
        """
        if not subproblems:
            return []
        start = time.perf_counter()
        assignments: List[AnnealerDevice] = []
        for sub in subproblems:
            device = self.device_for(sub)
            if device is None:
                # Delegate the error message to the most capable device.
                device = max(self.devices, key=lambda d: d.clique_capacity)
            assignments.append(device)
        if len(subproblems) == 1:
            results = [
                assignments[0].sample(subproblems[0], num_reads, root_seed)
            ]
        else:
            with ThreadPoolExecutor(max_workers=len(self.devices)) as pool:
                futures = [
                    pool.submit(dev.sample, sub, num_reads, root_seed)
                    for dev, sub in zip(assignments, subproblems)
                ]
                results = [f.result() for f in futures]
        elapsed = time.perf_counter() - start
        with self._lock:
            self.batches += 1
            self.subproblems += len(subproblems)
            self.dispatch_seconds += elapsed
        return results

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Dispatch accounting — feeds fleet experiments and reporting."""
        with self._lock:
            summary = {
                "size": self.size,
                "min_capacity": self.min_capacity(),
                "homogeneous": self.is_homogeneous(),
                "batches": self.batches,
                "subproblems": self.subproblems,
                "dispatch_seconds": self.dispatch_seconds,
            }
        summary["devices"] = [d.describe() for d in self.devices]
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AnnealerFleet(size={self.size}, min_capacity={self.min_capacity()})"
