"""One simulated annealer device with a topology-constrained capacity.

The paper's central practical limit is annealer capacity (Secs. 6.2,
6.3.5): an instance is solvable only if its interaction graph *minor-
embeds* on the hardware working graph, and the usable clique size grows
far slower than the raw qubit count.  :class:`AnnealerDevice` models
exactly that for a *simulated* annealer: it owns a Chimera or Pegasus
working graph (the generators from :mod:`repro.annealing`), answers
"does this subproblem fit?" with embedding-aware checks, and anneals
admitted subproblems with a :class:`SimulatedAnnealingSampler`.

Capacity checks, cheapest first:

1. more variables than ``clique_capacity`` plus a failed heuristic
   embedding → does not fit;
2. at most ``clique_capacity`` variables → always fits: every
   interaction graph is a subgraph of the complete graph, and Chimera
   hosts :math:`K_{tm}` natively (Choi's TRIAD,
   :func:`repro.annealing.clique_embedding.chimera_clique_embedding`);
   for Pegasus the bound is the native-clique size ``12 m - 10``
   [Boothby et al. 2020];
3. otherwise the CMR-style minor-embedding heuristic
   (:func:`repro.annealing.embedding.find_embedding`) gets one
   deterministic attempt on the working graph.

Verdicts are cached per interaction-graph fingerprint, so the
decomposition loop pays the embedding check once per distinct block
shape, not once per round.

The anneal itself runs on the *logical* model (an idealized, chain-
break-free simulation): embedding gates admission, exactly like the
capacity experiments in :mod:`repro.experiments.mqo_annealer`, but the
sample quality is that of the logical SA sweep — which is what keeps
fleet-mode results comparable (and pinnable bit-identical) against the
plain hybrid solver.

Determinism contract: :meth:`AnnealerDevice.solve_seed` derives the
per-(device, subproblem) seed from the device *spec* (family, size,
sweep count — not its index or name) and the subproblem's content
fingerprint via the harness SHA-256 scheme.  Two homogeneous devices
therefore assign the same seed to the same subproblem, which is what
makes fleet results bit-identical regardless of fleet size or dispatch
order.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Dict, Optional, Tuple

import networkx as nx

from repro.annealing.chimera import chimera_graph
from repro.annealing.clique_embedding import max_native_clique
from repro.annealing.embedding import find_embedding
from repro.annealing.pegasus import pegasus_graph
from repro.annealing.simulated_annealing import SimulatedAnnealingSampler
from repro.exceptions import ConfigurationError, EmbeddingError
from repro.harness import derive_seed
from repro.qubo.bqm import BinaryQuadraticModel

__all__ = ["AnnealerDevice", "bqm_fingerprint", "graph_fingerprint"]

_FAMILIES = ("chimera", "pegasus")


def bqm_fingerprint(bqm: BinaryQuadraticModel) -> str:
    """Content hash of a model (vartype, offset, biases; exact floats).

    Stable across processes and ``PYTHONHASHSEED`` — orderings
    tie-break on ``str(variable)`` like everything else in the
    decomposition stack.
    """
    linear = sorted((str(v), repr(bias)) for v, bias in bqm.linear.items())
    quadratic = sorted(
        (*sorted((str(u), str(v))), repr(bias))
        for u, v, bias in bqm.interactions()
    )
    material = f"{bqm.vartype.name}|{bqm.offset!r}|{linear!r}|{quadratic!r}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def graph_fingerprint(graph: nx.Graph) -> str:
    """Content hash of an interaction graph (nodes + edges only)."""
    nodes = sorted(str(v) for v in graph.nodes)
    edges = sorted(tuple(sorted((str(u), str(v)))) for u, v in graph.edges)
    material = f"{nodes!r}|{edges!r}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class AnnealerDevice:
    """A simulated annealer bound to one hardware working graph.

    Parameters
    ----------
    name:
        Display name (``fleet-0``, ...).  Not part of the seed
        derivation — see :meth:`spec_key`.
    family:
        ``"chimera"`` (``C(m, m, t)``) or ``"pegasus"`` (``P(m)``).
    m, t:
        Topology size; ``t`` is the Chimera shore size (ignored for
        Pegasus).
    num_sweeps, beta_range:
        Annealing schedule of the device's sampler.
    embed_tries, embed_rounds:
        Effort knobs of the minor-embedding fallback check.
    """

    def __init__(
        self,
        name: str = "annealer",
        family: str = "chimera",
        m: int = 4,
        t: int = 4,
        num_sweeps: int = 200,
        beta_range: Optional[Tuple[float, float]] = None,
        embed_tries: int = 1,
        embed_rounds: int = 15,
    ) -> None:
        if family not in _FAMILIES:
            raise ConfigurationError(
                f"unknown device family {family!r}; expected one of {_FAMILIES}"
            )
        if m < 1 or (family == "pegasus" and m < 2):
            raise ConfigurationError(f"device size m={m} is too small for {family}")
        if t < 1:
            raise ConfigurationError("shore size t must be positive")
        self.name = str(name)
        self.family = family
        self.m = int(m)
        self.t = int(t)
        self.num_sweeps = int(num_sweeps)
        self.beta_range = beta_range
        self.embed_tries = int(embed_tries)
        self.embed_rounds = int(embed_rounds)
        self.sampler = SimulatedAnnealingSampler(
            num_sweeps=num_sweeps, beta_range=beta_range
        )
        self._working_graph: Optional[nx.Graph] = None
        self._fit_cache: Dict[str, bool] = {}
        self._lock = threading.Lock()
        # dispatch accounting (fed into fleet stats / the routing model)
        self.dispatches = 0
        self.busy_seconds = 0.0

    # ------------------------------------------------------------------
    def spec_key(self) -> str:
        """Canonical device-*model* identity used for seed derivation.

        Deliberately excludes the device name/index: homogeneous
        devices share the key, so which of them runs a subproblem
        cannot change the result.
        """
        return (
            f"{self.family}-{self.m}-{self.t}-"
            f"{self.num_sweeps}-{self.beta_range!r}"
        )

    @property
    def clique_capacity(self) -> int:
        """Largest variable count guaranteed to embed (native clique)."""
        if self.family == "chimera":
            return max_native_clique(self.m, self.t)
        # Pegasus P(m) hosts K_{12m-10} natively [Boothby et al. 2020]
        return 12 * self.m - 10

    def working_graph(self) -> nx.Graph:
        """The device's hardware graph (built lazily, then cached)."""
        if self._working_graph is None:
            if self.family == "chimera":
                self._working_graph = chimera_graph(self.m, self.m, self.t)
            else:
                self._working_graph = pegasus_graph(self.m)
        return self._working_graph

    @property
    def num_qubits(self) -> int:
        return self.working_graph().number_of_nodes()

    # ------------------------------------------------------------------
    def fits(self, bqm: BinaryQuadraticModel) -> bool:
        """Embedding-aware admission: does this subproblem fit here?

        Subgraphs of the native clique always fit; anything larger gets
        one deterministic minor-embedding attempt on the working graph.
        Verdicts are memoized per interaction-graph fingerprint.
        """
        n = bqm.num_variables
        if n == 0:
            return True
        if n <= self.clique_capacity:
            return True
        if n > self.num_qubits:
            return False
        source = bqm.interaction_graph()
        source.remove_edges_from(nx.selfloop_edges(source))
        key = graph_fingerprint(source)
        with self._lock:
            cached = self._fit_cache.get(key)
        if cached is not None:
            return cached
        embedding = find_embedding(
            source,
            self.working_graph(),
            tries=self.embed_tries,
            improvement_rounds=self.embed_rounds,
            seed=derive_seed(0, "repro.annealers.embed", {"graph": key}),
            stop_at_first=True,
        )
        verdict = embedding is not None
        with self._lock:
            self._fit_cache[key] = verdict
        return verdict

    def solve_seed(self, root_seed: int, fingerprint: str) -> int:
        """The deterministic per-(device spec, subproblem) solve seed."""
        return derive_seed(
            int(root_seed),
            "repro.annealers.dispatch",
            {"device": self.spec_key(), "subproblem": fingerprint},
        )

    def sample(
        self,
        bqm: BinaryQuadraticModel,
        num_reads: int,
        root_seed: int,
        compiled=None,
    ) -> tuple:
        """Anneal one admitted subproblem; returns ``(sample, energy)``.

        Raises :class:`~repro.exceptions.EmbeddingError` when the
        subproblem does not embed on this device — sizing subproblems
        to capacity is the dispatcher's job, so reaching this is a bug
        in the caller, not a degradation path.
        """
        if bqm.num_variables == 0:
            return {}, float(bqm.offset)
        if not self.fits(bqm):
            raise EmbeddingError(
                f"subproblem with {bqm.num_variables} variables does not embed "
                f"on device {self.name!r} ({self.family} m={self.m} t={self.t}, "
                f"clique capacity {self.clique_capacity})"
            )
        seed = self.solve_seed(root_seed, bqm_fingerprint(bqm))
        start = time.perf_counter()
        extra = {} if compiled is None else {"compiled": compiled}
        sample_set = self.sampler.sample(
            bqm, num_reads=num_reads, seed=seed, **extra
        )
        elapsed = time.perf_counter() - start
        with self._lock:
            self.dispatches += 1
            self.busy_seconds += elapsed
        best = sample_set.first
        return dict(best.sample), float(best.energy)

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "family": self.family,
            "m": self.m,
            "t": self.t,
            "num_qubits": self.num_qubits,
            "clique_capacity": self.clique_capacity,
            "num_sweeps": self.num_sweeps,
            "dispatches": self.dispatches,
            "busy_seconds": self.busy_seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AnnealerDevice({self.name!r}, {self.family}, m={self.m}, "
            f"t={self.t}, capacity={self.clique_capacity})"
        )
