#!/usr/bin/env python
"""Quickstart: solve both of the paper's query-optimization problems
on every solver path the library offers.

Covers, in miniature, the whole reproduction:

1. the worked MQO example of paper Tables 1/2, solved classically and
   through the QUBO of Sec. 5.1 with QAOA and simulated annealing;
2. the worked join-ordering example of Sec. 6.1.2, pushed through the
   full MILP → BILP → QUBO pipeline (Fig. 10) and solved by annealing;
3. the resource questions the paper actually evaluates: how many
   qubits does each formulation need, how dense is the QUBO, and does
   the QAOA circuit fit within a real device's coherence window?

Run:  python examples/quickstart.py
"""

from repro.analysis.coherence import max_reliable_depth
from repro.analysis.depth import measure_qaoa_depth
from repro.gate.backend import fake_mumbai
from repro.joinorder import JoinOrderQuantumPipeline, solve_dp_left_deep
from repro.joinorder.generators import milp_example_graph
from repro.mqo import (
    MqoQuboBuilder,
    paper_example_problem,
    solve_exhaustive,
    solve_greedy_local,
    solve_with_annealer,
    solve_with_minimum_eigen,
)
from repro.variational import QAOA, Cobyla


def mqo_demo() -> None:
    print("=" * 64)
    print("1. Multi query optimization (paper Tables 1/2)")
    print("=" * 64)
    problem = paper_example_problem()
    print(f"instance: {problem.num_queries} queries, {problem.num_plans} plans")

    greedy = solve_greedy_local(problem)
    print(f"locally optimal plans {greedy.selected_plans} -> cost {greedy.cost:g}")

    optimal = solve_exhaustive(problem)
    print(f"globally optimal plans {optimal.selected_plans} -> cost {optimal.cost:g}")

    builder = MqoQuboBuilder(problem)
    bqm = builder.build()
    print(
        f"QUBO: {bqm.num_variables} qubits (one per plan), "
        f"{bqm.num_interactions} quadratic terms"
    )

    annealed = solve_with_annealer(problem, seed=0)
    print(f"simulated annealing -> plans {annealed.selected_plans}, cost {annealed.cost:g}")

    qaoa = solve_with_minimum_eigen(
        problem, QAOA(optimizer=Cobyla(maxiter=120), seed=0)
    )
    print(f"QAOA (p=1, statevector) -> plans {qaoa.selected_plans}, cost {qaoa.cost:g}")


def join_order_demo() -> None:
    print()
    print("=" * 64)
    print("2. Join ordering (paper Sec. 6.1.2 example)")
    print("=" * 64)
    graph = milp_example_graph()
    print(
        f"query graph: {graph.num_relations} relations, "
        f"{graph.num_predicates} predicate(s)"
    )

    reference = solve_dp_left_deep(graph)
    print(f"DP optimum: {' ⋈ '.join(reference.order)} (C_out = {reference.cost:g})")

    pipeline = JoinOrderQuantumPipeline(graph, thresholds=[10.0])
    report = pipeline.report()
    print(
        f"quantum formulation: {report.num_qubits} qubits "
        f"({report.variable_counts}), "
        f"{report.num_quadratic_terms} quadratic terms, ω = {report.omega:g}"
    )

    solution = pipeline.solve_with_annealer(num_reads=60, seed=1)
    print(
        f"QUBO + simulated annealing: {' ⋈ '.join(solution.order)} "
        f"(C_out = {solution.cost:g})"
    )


def applicability_demo() -> None:
    print()
    print("=" * 64)
    print("3. Applicability on a real device (paper Secs. 5.3 / 6.3)")
    print("=" * 64)
    backend = fake_mumbai()
    d_max = max_reliable_depth(backend.properties)
    print(f"IBM-Q Mumbai coherence threshold: d_max = {d_max} (paper: 248)")

    graph = milp_example_graph()
    pipeline = JoinOrderQuantumPipeline(graph, thresholds=[10.0])
    measurement = measure_qaoa_depth(
        pipeline.bqm, backend.coupling_map, samples=3, seed=4
    )
    depth = measurement.mean_transpiled_depth
    verdict = "fits" if depth <= d_max else "exceeds"
    print(
        f"QAOA circuit for the join-ordering example: "
        f"{measurement.num_qubits} qubits, mean transpiled depth "
        f"{depth:.0f} -> {verdict} the coherence window"
    )


if __name__ == "__main__":
    mqo_demo()
    join_order_demo()
    applicability_demo()
