#!/usr/bin/env python
"""Domain example: planning a star-schema warehouse join, classically
and on the quantum pipeline.

Scenario (the motivation of paper Sec. 4.2): a warehouse query joins a
large fact table against several dimension tables.  Join order makes
orders-of-magnitude difference in intermediate result sizes, which is
exactly what the C_out cost model charges.

The script

1. builds a star query (fact table + 4 dimensions, realistic
   cardinalities and selectivities),
2. compares classical algorithms (optimal DP, greedy, genetic,
   permutation annealing) on solution quality,
3. runs the paper's two-step reformulation (MILP → BILP → QUBO,
   Fig. 10) and solves the QUBO with simulated annealing,
4. sizes the problem for both hardware families: logical qubits and
   QAOA depth for IBM-Q, physical qubits after minor embedding onto a
   (small) Pegasus for D-Wave.

Run:  python examples/warehouse_join_planner.py
"""

from repro.analysis.depth import measure_qaoa_depth
from repro.annealing import find_embedding, pegasus_graph
from repro.gate.backend import fake_brooklyn
from repro.analysis.coherence import max_reliable_depth
from repro.joinorder import (
    JoinOrderQuantumPipeline,
    Predicate,
    QueryGraph,
    Relation,
    cout_cost,
    solve_dp_left_deep,
    solve_genetic,
    solve_greedy,
    solve_simulated_annealing,
)


def build_warehouse_query() -> QueryGraph:
    """SALES fact table star-joined with 4 dimensions."""
    return QueryGraph(
        relations=(
            Relation("sales", 1_000_000),
            Relation("customer", 5_000),
            Relation("product", 800),
            Relation("store", 50),
            Relation("date", 365),
        ),
        predicates=(
            Predicate("sales", "customer", 1 / 5_000),
            Predicate("sales", "product", 1 / 800),
            Predicate("sales", "store", 1 / 50),
            Predicate("sales", "date", 1 / 365),
        ),
    )


def main() -> None:
    graph = build_warehouse_query()
    print(f"query: {graph.num_relations} relations, "
          f"{graph.num_predicates} predicates (star shape)")

    worst = cout_cost(graph, ["customer", "product", "store", "date", "sales"])
    print(f"worst naive order (all cross products first): C_out = {worst:,.0f}")

    reference = solve_dp_left_deep(graph)
    print(f"DP optimum: {' ⋈ '.join(reference.order)}  C_out = {reference.cost:,.0f}")
    for solver, label in (
        (solve_greedy, "greedy"),
        (lambda g: solve_genetic(g, seed=3), "genetic"),
        (lambda g: solve_simulated_annealing(g, seed=3), "perm. annealing"),
    ):
        result = solver(graph)
        print(f"{label:>16}: {' ⋈ '.join(result.order)}  "
              f"C_out = {result.cost:,.0f} ({result.cost / reference.cost:.2f}x)")

    # --- quantum pipeline -------------------------------------------
    print()
    pipeline = JoinOrderQuantumPipeline(
        graph,
        thresholds=[1_000, 100_000, 10_000_000],
        precision_exponent=0,
    )
    report = pipeline.report()
    print(f"quantum formulation: {report.num_qubits} logical qubits "
          f"({report.variable_counts}), {report.num_quadratic_terms} quadratic terms")

    solution = pipeline.solve_with_annealer(num_reads=120, seed=7)
    print(f"QUBO + annealing: {' ⋈ '.join(solution.order)}  "
          f"C_out = {solution.cost:,.0f} ({solution.cost / reference.cost:.2f}x optimum)")

    # --- hardware sizing --------------------------------------------
    print()
    backend = fake_brooklyn()
    if report.num_qubits <= backend.num_qubits:
        measurement = measure_qaoa_depth(
            pipeline.bqm, backend.coupling_map, samples=3, seed=9
        )
        d_max = max_reliable_depth(backend.properties)
        print(f"IBM-Q Brooklyn: QAOA depth {measurement.mean_transpiled_depth:.0f} "
              f"vs d_max {d_max} -> "
              f"{'reliable' if measurement.mean_transpiled_depth <= d_max else 'decoherence-limited'}")
    else:
        print(f"IBM-Q Brooklyn: needs {report.num_qubits} qubits "
              f"> {backend.num_qubits} available -> not solvable (paper Sec. 6.3.4)")

    target = pegasus_graph(6)  # small Advantage-style patch
    embedding = find_embedding(pipeline.bqm.interaction_graph(), target, seed=11)
    if embedding is None:
        print("Pegasus P6 patch: no embedding found")
    else:
        print(f"Pegasus P6 patch: {embedding.num_physical_qubits} physical qubits "
              f"for {report.num_qubits} logical "
              f"(avg chain {embedding.average_chain_length():.1f})")


if __name__ == "__main__":
    main()
