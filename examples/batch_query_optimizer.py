#!/usr/bin/env python
"""Domain example: a reporting workload optimised as one MQO batch.

Scenario (the motivation of paper Sec. 4.1): a nightly reporting job
fires several analytical queries that share scans and subexpressions —
e.g. multiple dashboards aggregating the same orders/lineitem join.
Each query has alternative physical plans; executing compatible plans
together lets materialised subexpressions be reused.

The script

1. models the batch as an MQO instance with realistic sharing
   structure (plans over the same base join share a saving),
2. compares the per-query-optimal strategy against global MQO
   optimization (classical exhaustive + genetic),
3. solves the same instance through the paper's QUBO on simulated
   annealing restricted to a D-Wave-style Chimera topology, embedding
   chains and all — the full quantum-annealing workflow of [9],
4. reports what a gate-model device could handle: qubit needs and the
   QAOA depth vs. the Mumbai coherence threshold.

Run:  python examples/batch_query_optimizer.py
"""

from repro.analysis.coherence import max_reliable_depth
from repro.analysis.depth import measure_qaoa_depth
from repro.annealing import (
    EmbeddingComposite,
    SimulatedAnnealingSampler,
    StructureComposite,
    chimera_graph,
)
from repro.gate.backend import fake_mumbai
from repro.mqo import (
    MqoProblem,
    MqoQuboBuilder,
    Plan,
    Saving,
    solve_exhaustive,
    solve_genetic,
    solve_greedy_local,
)


def build_reporting_batch() -> MqoProblem:
    """Three dashboard queries with overlapping join subexpressions.

    Plan cost model (arbitrary units ~ I/O pages):

    * query 1 (daily revenue): scan-heavy plan vs. index plan vs. a
      plan that materialises orders ⋈ lineitem;
    * query 2 (top customers): hash-join plan vs. a plan reusing the
      same orders ⋈ lineitem materialisation;
    * query 3 (region rollup): star plan vs. a plan reusing a shared
      customer-dimension scan.
    """
    plans = (
        Plan(1, 1, 120.0),   # q1: full scan
        Plan(2, 1, 150.0),   # q1: materialises orders⋈lineitem
        Plan(3, 1, 135.0),   # q1: index-driven
        Plan(4, 2, 90.0),    # q2: independent hash join
        Plan(5, 2, 110.0),   # q2: reuses orders⋈lineitem
        Plan(6, 3, 70.0),    # q3: star plan
        Plan(7, 3, 85.0),    # q3: reuses customer scan
    )
    savings = (
        Saving(2, 5, 70.0),  # shared orders⋈lineitem materialisation
        Saving(2, 7, 20.0),  # shared customer scan feed
        Saving(3, 7, 15.0),  # shared index pages
    )
    return MqoProblem(plans=plans, savings=savings)


def main() -> None:
    problem = build_reporting_batch()
    print(f"batch: {problem.num_queries} queries, {problem.num_plans} plans, "
          f"{len(problem.savings)} sharing opportunities")

    greedy = solve_greedy_local(problem)
    optimal = solve_exhaustive(problem)
    genetic = solve_genetic(problem, seed=0)
    print(f"per-query optimal : plans {greedy.selected_plans}  cost {greedy.cost:g}")
    print(f"global optimum    : plans {optimal.selected_plans}  cost {optimal.cost:g}")
    print(f"genetic algorithm : plans {genetic.selected_plans}  cost {genetic.cost:g}")
    saved = greedy.cost - optimal.cost
    print(f"--> MQO saves {saved:g} units ({100 * saved / greedy.cost:.1f}%)\n")

    # --- quantum annealing path (paper Chapter 5 / [9]) -------------
    builder = MqoQuboBuilder(problem)
    bqm = builder.build()
    print(f"QUBO: {bqm.num_variables} logical qubits, "
          f"{bqm.num_interactions} quadratic terms")

    hardware = chimera_graph(2, 2, 4)  # a 32-qubit Chimera patch
    composite = EmbeddingComposite(
        StructureComposite(SimulatedAnnealingSampler(num_sweeps=300, seed=1), hardware),
        seed=1,
    )
    sample_set = composite.sample(bqm, num_reads=50)
    embedding = composite.last_embedding
    solution = builder.decode(sample_set.first.sample, method="annealer")
    print(f"Chimera embedding: {embedding.num_physical_qubits} physical qubits "
          f"(max chain {embedding.max_chain_length})")
    print(f"annealer solution : plans {solution.selected_plans}  cost {solution.cost:g} "
          f"(valid={solution.valid})\n")

    # --- gate-model applicability (paper Sec. 5.3) ------------------
    backend = fake_mumbai()
    measurement = measure_qaoa_depth(bqm, backend.coupling_map, samples=3, seed=2)
    d_max = max_reliable_depth(backend.properties)
    print(f"QAOA on IBM-Q Mumbai: mean transpiled depth "
          f"{measurement.mean_transpiled_depth:.0f} vs d_max {d_max} -> "
          f"{'reliable' if measurement.mean_transpiled_depth <= d_max else 'decoherence-limited'}")


if __name__ == "__main__":
    main()
