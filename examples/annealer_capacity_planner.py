#!/usr/bin/env python
"""Domain example: how large a join-ordering problem fits on a quantum
annealer?  (The question paper Sec. 6.3.5 / Fig. 14 answers.)

A DBA evaluating a D-Wave Advantage for query optimization needs to
know, before buying machine time, which query shapes even *embed* on
the hardware.  This script sweeps query sizes and configurations and
reports, per configuration:

* logical qubits of the BILP/QUBO encoding (Sec. 6.3.1 formulas),
* the QUBO's quadratic-term count (embedding difficulty driver),
* physical qubits after heuristic minor embedding onto Pegasus,
* whether the embedding is *reliable* (≥50 % of attempts succeed —
  the paper's criterion).

A small Pegasus (P8) keeps the demo fast; pass ``--p16`` for the real
Advantage topology.

Run:  python examples/annealer_capacity_planner.py [--p16]
"""

import sys

import numpy as np

from repro.annealing import find_embedding, pegasus_graph
from repro.joinorder import JoinOrderQuantumPipeline
from repro.joinorder.generators import uniform_query


def sweep(target, target_name: str, samples: int = 2) -> None:
    print(f"target topology: {target_name} "
          f"({target.number_of_nodes()} qubits, "
          f"{target.number_of_edges()} couplers)")
    print()
    header = (
        f"{'relations':>9}  {'predicates':>10}  {'logical':>7}  "
        f"{'quad terms':>10}  {'physical (mean)':>15}  {'reliable':>8}"
    )
    print(header)
    print("-" * len(header))

    rng = np.random.default_rng(0)
    for relations in (4, 5, 6, 7, 8):
        predicates = relations - 1  # P = J, the practical minimum
        graph = uniform_query(relations, predicates, cardinality=10.0, seed=0)
        pipeline = JoinOrderQuantumPipeline(
            graph, thresholds=[10.0], precision_exponent=0, prune_thresholds=False
        )
        report = pipeline.report()
        source = pipeline.bqm.interaction_graph()

        physical = []
        for _ in range(samples):
            result = find_embedding(
                source, target, tries=2, seed=int(rng.integers(0, 2**31))
            )
            if result is not None:
                physical.append(result.num_physical_qubits)
        reliable = len(physical) >= max(1, samples // 2)
        mean_physical = f"{np.mean(physical):.0f}" if physical else "-"
        print(
            f"{relations:>9}  {predicates:>10}  {report.num_qubits:>7}  "
            f"{report.num_quadratic_terms:>10}  {mean_physical:>15}  "
            f"{'yes' if reliable else 'NO':>8}"
        )
        if not physical:
            print(f"{'':>9}  -> capacity limit reached below {relations} relations")
            break

    print()
    print("Reading: 'physical/logical' is the chain overhead the paper "
          "highlights — D-Wave's qubit counts cannot be compared 1:1 "
          "with gate-model qubit counts.")


if __name__ == "__main__":
    if "--p16" in sys.argv:
        sweep(pegasus_graph(16), "Pegasus P16 (D-Wave Advantage)")
    else:
        sweep(pegasus_graph(8), "Pegasus P8 (demo-sized patch)")
