"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.mqo.generator import paper_example_problem
from repro.joinorder.generators import milp_example_graph, paper_example_graph


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def mqo_example():
    """The paper's Tables 1/2 MQO instance."""
    return paper_example_problem()


@pytest.fixture
def rst_graph():
    """The paper's Fig. 6 / Table 3 query graph."""
    return paper_example_graph()


@pytest.fixture
def abc_graph():
    """The paper's Sec. 6.1.2 MILP example graph."""
    return milp_example_graph()
