"""Tests for the stdlib HTTP gateway (repro.server.gateway/routes/models).

The gateway runs on a background thread against the cheap thread-pool
backend — every HTTP behavior under test (routing, validation, error
envelopes, backpressure, graceful drain) is backend-independent, and
:mod:`tests.test_server_pool` already proves the backends agree on
results.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.mqo.generator import random_mqo_problem
from repro.server import ServiceConfig, make_scheduler, serve_in_background
from repro.service import request_to_dict
from repro.service.request import OptimizationRequest, problem_to_dict


def call(url, body=None, method=None, timeout=60):
    """One HTTP exchange; returns (status, parsed JSON body)."""
    data = body if isinstance(body, (bytes, type(None))) else json.dumps(body).encode()
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method=method or ("POST" if data is not None else "GET"),
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


@pytest.fixture(scope="module")
def gateway():
    scheduler = make_scheduler(
        "thread", config=ServiceConfig(seed=5), workers=2, warmup=[]
    )
    with serve_in_background(scheduler, default_deadline_ms=500.0) as handle:
        yield handle


def compact_mqo_body(seed=5, **extra):
    body = {
        "kind": "mqo",
        "problem": problem_to_dict("mqo", random_mqo_problem(3, 2, seed=seed)),
        "deadline_ms": 500.0,
    }
    body.update(extra)
    return body


class TestRouting:
    def test_unknown_path_404(self, gateway):
        status, body = call(f"{gateway.url}/nope")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_wrong_method_405_lists_allowed(self, gateway):
        status, body = call(f"{gateway.url}/optimize")  # GET on a POST route
        assert status == 405
        assert "POST" in body["error"]["message"]

    def test_healthz_reports_backend(self, gateway):
        status, body = call(f"{gateway.url}/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["backend"] == "thread"
        assert body["workers"] == 2

    def test_stats_shape(self, gateway):
        status, body = call(f"{gateway.url}/stats")
        assert status == 200
        assert {"counters", "histograms", "cache", "scheduler"} <= set(body)


class TestValidation:
    def test_empty_body_400(self, gateway):
        status, body = call(f"{gateway.url}/optimize", body=b"", method="POST")
        assert status == 400
        assert body["error"]["code"] == "empty_body"

    def test_malformed_json_400(self, gateway):
        status, body = call(f"{gateway.url}/optimize", body=b"{not json")
        assert status == 400
        assert body["error"]["code"] == "malformed_json"

    def test_non_object_json_400(self, gateway):
        status, body = call(f"{gateway.url}/optimize", body=b"[1, 2]")
        assert status == 400
        assert body["error"]["code"] == "malformed_json"

    def test_missing_kind_400(self, gateway):
        status, body = call(f"{gateway.url}/optimize", body={"problem": {}})
        assert status == 400
        assert body["error"]["code"] == "missing_kind"

    def test_unknown_kind_400(self, gateway):
        status, body = call(
            f"{gateway.url}/optimize", body=compact_mqo_body(kind="teleport")
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_request"

    def test_sql_without_text_400(self, gateway):
        status, body = call(f"{gateway.url}/sql", body={"catalog_scale": 0.01})
        assert status == 400
        assert body["error"]["code"] == "missing_sql"

    def test_bad_policy_400(self, gateway):
        status, body = call(
            f"{gateway.url}/optimize", body=compact_mqo_body(policy="")
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_request"


class TestServing:
    def test_optimize_compact_form(self, gateway):
        status, body = call(f"{gateway.url}/optimize", body=compact_mqo_body())
        assert status == 200
        assert body["status"] == "ok"
        assert body["valid"] is True
        assert body["kind"] == "optimization_result"

    def test_optimize_full_serialized_form(self, gateway):
        request = OptimizationRequest(
            request_id="replayed-001",
            kind="mqo",
            problem=random_mqo_problem(3, 2, seed=5),
            deadline_ms=500.0,
        )
        status, body = call(
            f"{gateway.url}/optimize", body=request_to_dict(request)
        )
        assert status == 200
        assert body["request_id"] == "replayed-001"
        assert body["valid"] is True

    def test_sql_front_door(self, gateway):
        status, body = call(
            f"{gateway.url}/sql",
            body={
                "sql": "SELECT * FROM lineitem, orders "
                "WHERE lineitem.l_orderkey = orders.o_orderkey",
                "deadline_ms": 500.0,
            },
        )
        assert status == 200
        assert body["valid"] is True
        assert body["problem_kind"] == "sql"

    def test_compact_and_full_forms_agree(self, gateway):
        _, compact = call(f"{gateway.url}/optimize", body=compact_mqo_body(seed=5))
        request = OptimizationRequest(
            request_id="x",
            kind="mqo",
            problem=random_mqo_problem(3, 2, seed=5),
            deadline_ms=500.0,
        )
        _, full = call(f"{gateway.url}/optimize", body=request_to_dict(request))
        assert compact["plan"] == full["plan"]
        assert compact["cost"] == full["cost"]
        assert compact["energy"] == full["energy"]


class TestBackpressure:
    def test_queue_full_503(self):
        scheduler = make_scheduler(
            "thread",
            config=ServiceConfig(seed=5),
            workers=1,
            queue_limit=1,
            coalesce=False,
            warmup=[],
        )
        with serve_in_background(scheduler, default_deadline_ms=500.0) as handle:
            url = f"{handle.url}/optimize"
            # distinct slow-ish problems posted concurrently: one is in
            # flight, the surplus must bounce off admission control
            responses = []
            lock = threading.Lock()

            def post(seed):
                body = compact_mqo_body(seed=seed)
                body["problem"] = problem_to_dict(
                    "mqo", random_mqo_problem(6, 4, seed=seed)
                )
                response = call(url, body=body)
                with lock:
                    responses.append(response)

            threads = [
                threading.Thread(target=post, args=(seed,)) for seed in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        statuses = sorted(status for status, _body in responses)
        assert 200 in statuses
        assert 503 in statuses
        rejected = [body for status, body in responses if status == 503]
        assert all(body["error"]["code"] == "queue_full" for body in rejected)
        assert all("saturated" in body["error"]["message"] for body in rejected)
        assert all(body["request_id"] for body in rejected)

    def test_coalesced_duplicates_identical_fields_over_http(self):
        scheduler = make_scheduler(
            "thread", config=ServiceConfig(seed=5), workers=2, warmup=[]
        )
        with serve_in_background(scheduler, default_deadline_ms=500.0) as handle:
            url = f"{handle.url}/optimize"
            body = compact_mqo_body(seed=77)
            responses = []
            lock = threading.Lock()

            def post():
                response = call(url, body=body)
                with lock:
                    responses.append(response)

            threads = [threading.Thread(target=post) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = scheduler.stats()
        assert all(status == 200 for status, _body in responses)
        plans = {json.dumps(body["plan"], sort_keys=True) for _s, body in responses}
        costs = {body["cost"] for _s, body in responses}
        assert len(plans) == 1 and len(costs) == 1
        # at least one duplicate must have attached to the in-flight solve
        assert stats["scheduler"]["coalesce"]["hits"] >= 1
        # each response still carries its own request id
        ids = {body["request_id"] for _s, body in responses}
        assert len(ids) == 4


class TestGracefulShutdown:
    def test_in_flight_request_drains_before_stop(self):
        scheduler = make_scheduler(
            "thread", config=ServiceConfig(seed=5), workers=1, warmup=[]
        )
        handle = serve_in_background(scheduler, default_deadline_ms=500.0)
        url = f"{handle.url}/optimize"
        outcome = {}

        def post():
            outcome["response"] = call(
                url, body=compact_mqo_body(seed=123), timeout=30
            )

        poster = threading.Thread(target=post)
        poster.start()
        time.sleep(0.01)  # let the request reach the gateway
        handle.stop()  # must drain, not sever, the in-flight request
        poster.join(timeout=30)
        assert not poster.is_alive()
        status, body = outcome["response"]
        assert status == 200
        assert body["valid"] is True

    def test_stopped_gateway_refuses_connections(self):
        scheduler = make_scheduler(
            "thread", config=ServiceConfig(seed=5), workers=1, warmup=[]
        )
        handle = serve_in_background(scheduler)
        handle.stop()
        with pytest.raises(OSError):
            call(f"{handle.url}/healthz", timeout=2)


class TestRoutedGateway:
    """Gateway stress under deadline-aware routing.

    Concurrent mixed-kind bursts with duplicate payloads must keep the
    serving invariants intact when every request additionally walks the
    router: duplicates still coalesce (the routed coalesce key marks,
    but does not break, deduplication), admission control still sheds
    load with 503s, and the merged /stats routing section stays
    arithmetically consistent.
    """

    def _burst(self, url, bodies):
        responses = []
        lock = threading.Lock()

        def post(body):
            response = call(url, body=body)
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=post, args=(b,)) for b in bodies]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return responses

    def test_mixed_burst_with_duplicates_coalesces_and_reports(self):
        from repro.joinorder.generators import star_query

        scheduler = make_scheduler(
            "thread",
            config=ServiceConfig(seed=5, routing=True),
            workers=2,
            warmup=[],
        )
        with serve_in_background(scheduler, default_deadline_ms=500.0) as handle:
            url = f"{handle.url}/optimize"
            mqo_body = compact_mqo_body(seed=91)
            join_body = {
                "kind": "join_order",
                "problem": problem_to_dict("join_order", star_query(5, seed=91)),
                "deadline_ms": 500.0,
            }
            # duplicates of both kinds interleaved in one burst
            responses = self._burst(url, [mqo_body, join_body] * 3)
            status, stats = call(f"{handle.url}/stats")
        assert status == 200
        assert all(s == 200 for s, _b in responses)
        # duplicates of the same content must agree on the plan (the
        # response envelope's "kind" is the serialization marker, so
        # group by the plan shape: MQO selects plans, joins order)
        by_shape = {}
        for _s, body in responses:
            shape = "mqo" if "selected_plans" in body["plan"] else "join"
            by_shape.setdefault(shape, set()).add(
                json.dumps(body["plan"], sort_keys=True)
            )
        assert set(by_shape) == {"mqo", "join"}
        assert all(len(plans) == 1 for plans in by_shape.values())
        coalesce = stats["scheduler"]["coalesce"]
        assert coalesce["hits"] + stats["counters"]["requests_total"] == 6
        routing = stats["routing"]
        assert routing["enabled"]
        assert 0 < routing["requests"] <= 6
        assert routing["deadline_miss"] <= routing["requests"]
        assert 0.0 <= routing["deadline_miss_rate"] <= 1.0
        assert set(routing["candidates"]) == {"hybrid", "tabu", "sa", "greedy"}

    def test_backpressure_503_still_enforced_under_routing(self):
        scheduler = make_scheduler(
            "thread",
            config=ServiceConfig(seed=5, routing=True),
            workers=1,
            queue_limit=1,
            coalesce=False,
            warmup=[],
        )
        with serve_in_background(scheduler, default_deadline_ms=500.0) as handle:
            url = f"{handle.url}/optimize"
            bodies = []
            for seed in range(8):
                body = compact_mqo_body(seed=seed)
                body["problem"] = problem_to_dict(
                    "mqo", random_mqo_problem(6, 4, seed=seed)
                )
                bodies.append(body)
            responses = self._burst(url, bodies)
        statuses = sorted(status for status, _body in responses)
        assert 200 in statuses
        assert 503 in statuses
        assert all(
            body["error"]["code"] == "queue_full"
            for status, body in responses
            if status == 503
        )
