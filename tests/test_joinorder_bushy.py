"""Tests for the bushy-tree DP baseline."""

import pytest

from repro.exceptions import SolverError
from repro.joinorder import solve_dp_left_deep
from repro.joinorder.bushy import left_deep_penalty, solve_dp_bushy
from repro.joinorder.generators import (
    chain_query,
    clique_query,
    cycle_query,
    random_query,
    star_query,
)


class TestBushyDp:
    def test_bushy_never_worse_than_left_deep(self):
        """Left-deep trees are a subset of bushy trees."""
        for maker, seed in (
            (chain_query, 1),
            (star_query, 2),
            (cycle_query, 3),
            (clique_query, 4),
        ):
            graph = maker(6, seed=seed)
            bushy = solve_dp_bushy(graph)
            left_deep = solve_dp_left_deep(graph)
            assert bushy.cost <= left_deep.cost + 1e-6

    def test_paper_example(self, rst_graph):
        """3 relations: every bushy tree is left-deep, costs agree."""
        bushy = solve_dp_bushy(rst_graph)
        assert bushy.cost == pytest.approx(51_000.0)
        assert sorted(bushy.leaves()) == ["R", "S", "T"]

    def test_tree_structure_is_well_formed(self):
        graph = random_query(5, 6, seed=7)
        result = solve_dp_bushy(graph)
        assert sorted(result.leaves()) == sorted(graph.relation_names)
        rendered = result.render()
        assert rendered.count("⋈") == graph.num_joins

    def test_cost_reconstruction(self):
        """The DP cost equals the recomputed cost of its own tree."""
        from repro.joinorder.cost import join_result_cardinality

        graph = random_query(6, 9, seed=11)
        result = solve_dp_bushy(graph)

        def tree_cost(node):
            if isinstance(node, str):
                return 0.0, [node]
            lc, ln = tree_cost(node[0])
            rc, rn = tree_cost(node[1])
            names = ln + rn
            return lc + rc + join_result_cardinality(graph, names), names

        cost, _ = tree_cost(result.tree)
        assert cost == pytest.approx(result.cost)

    def test_size_limit(self):
        graph = chain_query(6, seed=1)
        with pytest.raises(SolverError):
            solve_dp_bushy(graph, max_relations=5)

    def test_left_deep_penalty_at_least_one(self):
        for seed in range(3):
            graph = random_query(6, 8, seed=40 + seed)
            assert left_deep_penalty(graph) >= 1.0 - 1e-9

    def test_bushy_beats_left_deep_somewhere(self):
        """There exist queries where bushy strictly wins — the cost of
        the paper's left-deep restriction is real."""
        found = False
        for seed in range(20):
            graph = random_query(7, 9, seed=100 + seed)
            if left_deep_penalty(graph) > 1.0 + 1e-6:
                found = True
                break
        assert found
