"""Tests for the binary quadratic model core."""

import numpy as np
import pytest

from repro.exceptions import ModelError, VariableError
from repro.qubo import BinaryQuadraticModel, Vartype
from repro.qubo.bqm import all_assignments


class TestConstruction:
    def test_empty_model(self):
        bqm = BinaryQuadraticModel()
        assert bqm.num_variables == 0
        assert bqm.num_interactions == 0
        assert bqm.energy({}) == 0.0

    def test_linear_accumulates(self):
        bqm = BinaryQuadraticModel()
        bqm.add_linear("a", 1.0)
        bqm.add_linear("a", 2.5)
        assert bqm.get_linear("a") == pytest.approx(3.5)

    def test_quadratic_symmetric_accumulation(self):
        bqm = BinaryQuadraticModel()
        bqm.add_quadratic("a", "b", 1.0)
        bqm.add_quadratic("b", "a", 2.0)
        assert bqm.get_quadratic("a", "b") == pytest.approx(3.0)
        assert bqm.get_quadratic("b", "a") == pytest.approx(3.0)
        assert bqm.num_interactions == 1

    def test_self_loop_binary_becomes_linear(self):
        bqm = BinaryQuadraticModel(vartype=Vartype.BINARY)
        bqm.add_quadratic("a", "a", 2.0)
        assert bqm.get_linear("a") == pytest.approx(2.0)
        assert bqm.num_interactions == 0

    def test_self_loop_spin_becomes_offset(self):
        bqm = BinaryQuadraticModel(vartype=Vartype.SPIN)
        bqm.add_quadratic("a", "a", 2.0)
        assert bqm.offset == pytest.approx(2.0)

    def test_bad_vartype_rejected(self):
        with pytest.raises(ModelError):
            BinaryQuadraticModel(vartype="BINARY")

    def test_unknown_variable_raises(self):
        bqm = BinaryQuadraticModel({"a": 1.0})
        with pytest.raises(VariableError):
            bqm.get_linear("zzz")

    def test_degree(self):
        bqm = BinaryQuadraticModel(
            {"a": 0, "b": 0, "c": 0}, {("a", "b"): 1, ("a", "c"): 1}
        )
        assert bqm.degree("a") == 2
        assert bqm.degree("b") == 1


class TestEnergy:
    def test_energy_binary(self):
        bqm = BinaryQuadraticModel({"a": 1, "b": -2}, {("a", "b"): 3}, offset=0.5)
        assert bqm.energy({"a": 1, "b": 1}) == pytest.approx(1 - 2 + 3 + 0.5)
        assert bqm.energy({"a": 0, "b": 1}) == pytest.approx(-2 + 0.5)

    def test_energy_missing_variable(self):
        bqm = BinaryQuadraticModel({"a": 1})
        with pytest.raises(VariableError):
            bqm.energy({})

    def test_energies_vector(self):
        bqm = BinaryQuadraticModel({"a": 1.0})
        values = bqm.energies([{"a": 0}, {"a": 1}])
        assert list(values) == [0.0, 1.0]


class TestConversions:
    def test_vartype_round_trip_preserves_energy(self, rng):
        bqm = BinaryQuadraticModel()
        names = [f"x{i}" for i in range(5)]
        for n in names:
            bqm.add_linear(n, rng.uniform(-2, 2))
        for i in range(5):
            for j in range(i + 1, 5):
                bqm.add_quadratic(names[i], names[j], rng.uniform(-2, 2))
        bqm.offset = 0.7
        spin = bqm.change_vartype(Vartype.SPIN)
        back = spin.change_vartype(Vartype.BINARY)
        for sample in all_assignments(bqm.variables, Vartype.BINARY):
            spin_sample = {v: 2 * x - 1 for v, x in sample.items()}
            assert spin.energy(spin_sample) == pytest.approx(bqm.energy(sample))
            assert back.energy(sample) == pytest.approx(bqm.energy(sample))

    def test_to_qubo_diagonal_holds_linear(self):
        bqm = BinaryQuadraticModel({"a": 1.5}, {("a", "b"): -1})
        q, offset = bqm.to_qubo()
        assert q[("a", "a")] == pytest.approx(1.5)
        assert offset == 0.0

    def test_from_qubo_diagonal(self):
        bqm = BinaryQuadraticModel.from_qubo({("a", "a"): 2.0, ("a", "b"): 1.0})
        assert bqm.get_linear("a") == pytest.approx(2.0)
        assert bqm.get_quadratic("a", "b") == pytest.approx(1.0)

    def test_ising_round_trip(self):
        bqm = BinaryQuadraticModel({"a": 1, "b": -1}, {("a", "b"): 0.5})
        h, j, offset = bqm.to_ising()
        rebuilt = BinaryQuadraticModel.from_ising(h, j, offset)
        binary = rebuilt.change_vartype(Vartype.BINARY)
        for sample in all_assignments(("a", "b"), Vartype.BINARY):
            assert binary.energy(sample) == pytest.approx(bqm.energy(sample))

    def test_numpy_matrix_energy_agreement(self, rng):
        bqm = BinaryQuadraticModel(
            {"a": 1.0, "b": -0.5, "c": 2.0}, {("a", "c"): -1.5}, offset=3.0
        )
        q, offset, order = bqm.to_numpy_matrix()
        for sample in all_assignments(bqm.variables, Vartype.BINARY):
            x = np.array([sample[v] for v in order], dtype=float)
            assert x @ q @ x + offset == pytest.approx(bqm.energy(sample))

    def test_numpy_matrix_missing_order_raises(self):
        bqm = BinaryQuadraticModel({"a": 1, "b": 1})
        with pytest.raises(VariableError):
            bqm.to_numpy_matrix(variable_order=["a"])


class TestMutation:
    def test_fix_variable(self):
        bqm = BinaryQuadraticModel({"a": 1, "b": 2}, {("a", "b"): 5})
        bqm.fix_variable("a", 1)
        assert "a" not in bqm
        assert bqm.energy({"b": 0}) == pytest.approx(1.0)
        assert bqm.energy({"b": 1}) == pytest.approx(1 + 2 + 5)

    def test_fix_variable_bad_value(self):
        bqm = BinaryQuadraticModel({"a": 1})
        with pytest.raises(ModelError):
            bqm.fix_variable("a", 2)

    def test_scale(self):
        bqm = BinaryQuadraticModel({"a": 1}, {("a", "b"): 2}, offset=3)
        bqm.scale(2.0)
        assert bqm.get_linear("a") == 2.0
        assert bqm.get_quadratic("a", "b") == 4.0
        assert bqm.offset == 6.0

    def test_update_merges_models(self):
        a = BinaryQuadraticModel({"x": 1}, {("x", "y"): 1})
        b = BinaryQuadraticModel({"x": 2, "z": 1})
        a.update(b, scale=2.0)
        assert a.get_linear("x") == pytest.approx(5.0)
        assert a.get_linear("z") == pytest.approx(2.0)

    def test_update_cross_vartype(self):
        binary = BinaryQuadraticModel({"x": 1.0})
        spin = BinaryQuadraticModel({"x": 1.0}, vartype=Vartype.SPIN)
        binary.update(spin)
        # spin x = 2b - 1 -> adds 2b - 1
        assert binary.energy({"x": 1}) == pytest.approx(1 + 2 - 1)

    def test_copy_is_independent(self):
        bqm = BinaryQuadraticModel({"a": 1})
        clone = bqm.copy()
        clone.add_linear("a", 5)
        assert bqm.get_linear("a") == 1

    def test_remove_interaction(self):
        bqm = BinaryQuadraticModel({}, {("a", "b"): 2})
        bqm.remove_interaction("a", "b")
        assert bqm.num_interactions == 0


class TestInteractionGraph:
    def test_graph_matches_terms(self):
        bqm = BinaryQuadraticModel(
            {"a": 0, "b": 0, "c": 0}, {("a", "b"): 1, ("b", "c"): -1}
        )
        g = bqm.interaction_graph()
        assert set(g.nodes) == {"a", "b", "c"}
        assert g.number_of_edges() == 2
        assert g.has_edge("a", "b") and g.has_edge("b", "c")
